// Copyright (c) 2026 The tsq Authors.
//
// Distance metrics between points and rectangles used for nearest-neighbor
// pruning: MINDIST and MINMAXDIST of Roussopoulos, Kelley & Vincent
// ([RKV95], cited by the paper for NN query processing). Plus the 2-D
// point/segment helper needed by the polar feature-space metric in
// src/core.

#ifndef TSQ_SPATIAL_METRICS_H_
#define TSQ_SPATIAL_METRICS_H_

#include "spatial/point.h"
#include "spatial/rect.h"

namespace tsq {
namespace spatial {

/// MINDIST^2(p, R): squared Euclidean distance from p to the nearest point
/// of R; 0 when p is inside R. Lower-bounds the distance from p to every
/// object enclosed by R — the admissible pruning bound for NN search.
double MinDistSquared(const Point& p, const Rect& r);

/// MINMAXDIST^2(p, R): the minimum over faces of the maximum distance to
/// the "nearest face's farthest corner" ([RKV95] Eq. MM). Upper-bounds the
/// distance from p to the nearest *object* inside R, assuming R is a
/// minimum bounding rectangle (every face touches an object).
double MinMaxDistSquared(const Point& p, const Rect& r);

/// Squared distance from 2-D point (px, py) to segment (ax, ay)-(bx, by).
double PointSegmentDistSquared(double px, double py, double ax, double ay,
                               double bx, double by);

/// Squared Euclidean distance between points of equal dimension.
double PointDistSquared(const Point& a, const Point& b);

}  // namespace spatial
}  // namespace tsq

#endif  // TSQ_SPATIAL_METRICS_H_
