// Copyright (c) 2026 The tsq Authors.
//
// Spatial primitives. tsq views every object as a point in a low-dimensional
// feature space (paper Sec. 3); the spatial layer is deliberately ignorant
// of what the dimensions mean — feature semantics (complex coefficients,
// polar coordinates) live in src/core.

#ifndef TSQ_SPATIAL_POINT_H_
#define TSQ_SPATIAL_POINT_H_

#include <vector>

namespace tsq {
namespace spatial {

/// A point in R^d. Dimensionality is dynamic (the paper's index is 6-D by
/// default but k is a tuning knob).
using Point = std::vector<double>;

}  // namespace spatial
}  // namespace tsq

#endif  // TSQ_SPATIAL_POINT_H_
