// Copyright (c) 2026 The tsq Authors.

#include "spatial/affine_map.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace tsq {
namespace spatial {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

double WrapAngle(double theta) {
  // Reduce to (-pi, pi]. fmod gives (-2pi, 2pi); two conditional shifts
  // finish the job without loops.
  double t = std::fmod(theta, kTwoPi);
  if (t <= -kPi) t += kTwoPi;
  if (t > kPi) t -= kTwoPi;
  return t;
}

AffineMap::AffineMap(std::vector<double> scale, std::vector<double> offset,
                     std::vector<bool> angular)
    : scale_(std::move(scale)),
      offset_(std::move(offset)),
      angular_(std::move(angular)) {
  TSQ_CHECK_MSG(scale_.size() == offset_.size(),
                "AffineMap scale/offset dims differ: %zu vs %zu",
                scale_.size(), offset_.size());
  TSQ_CHECK_MSG(scale_.size() == angular_.size(),
                "AffineMap scale/angular dims differ: %zu vs %zu",
                scale_.size(), angular_.size());
  for (size_t d = 0; d < scale_.size(); ++d) {
    if (angular_[d]) {
      TSQ_CHECK_MSG(scale_[d] == 1.0,
                    "angular dim %zu must have scale 1 (Theorem 3)", d);
    }
  }
}

AffineMap::AffineMap(std::vector<double> scale, std::vector<double> offset)
    : scale_(std::move(scale)), offset_(std::move(offset)) {
  TSQ_CHECK_MSG(scale_.size() == offset_.size(),
                "AffineMap scale/offset dims differ: %zu vs %zu",
                scale_.size(), offset_.size());
  angular_.assign(scale_.size(), false);
}

AffineMap AffineMap::Identity(size_t dims) {
  return AffineMap(std::vector<double>(dims, 1.0),
                   std::vector<double>(dims, 0.0),
                   std::vector<bool>(dims, false));
}

bool AffineMap::IsIdentity() const {
  for (size_t d = 0; d < dims(); ++d) {
    if (scale_[d] != 1.0 || offset_[d] != 0.0) return false;
  }
  return true;
}

Point AffineMap::Apply(const Point& p) const {
  TSQ_CHECK_MSG(p.size() == dims(), "point dims %zu != map dims %zu", p.size(),
                dims());
  Point out(p.size());
  for (size_t d = 0; d < p.size(); ++d) {
    const double v = scale_[d] * p[d] + offset_[d];
    out[d] = angular_[d] ? WrapAngle(v) : v;
  }
  return out;
}

Rect AffineMap::Apply(const Rect& r) const {
  TSQ_CHECK_MSG(r.dims() == dims(), "rect dims %zu != map dims %zu", r.dims(),
                dims());
  Rect out = r;
  for (size_t d = 0; d < dims(); ++d) {
    double lo = scale_[d] * r.lo(d) + offset_[d];
    double hi = scale_[d] * r.hi(d) + offset_[d];
    if (lo > hi) std::swap(lo, hi);  // negative scale flips the interval
    if (angular_[d]) {
      // Pure rotation (scale 1). If the rotated interval fits inside the
      // canonical circle parametrization, wrap it; otherwise widen.
      if (hi - lo >= kTwoPi) {
        lo = -kPi;
        hi = kPi;
      } else {
        const double wlo = WrapAngle(lo);
        const double whi = WrapAngle(hi);
        if (wlo <= whi) {
          lo = wlo;
          hi = whi;
        } else {
          // The interval crosses the +-pi cut; a plain [lo, hi] interval
          // cannot represent it, so cover the whole circle (conservative:
          // superset => no false dismissals).
          lo = -kPi;
          hi = kPi;
        }
      }
    }
    out.SetDim(d, lo, hi);
  }
  return out;
}

AffineMap AffineMap::Compose(const AffineMap& other) const {
  TSQ_CHECK_MSG(dims() == other.dims(),
                "Compose: dims differ (%zu vs %zu)", dims(), other.dims());
  std::vector<double> scale(dims());
  std::vector<double> offset(dims());
  std::vector<bool> angular(dims());
  for (size_t d = 0; d < dims(); ++d) {
    TSQ_CHECK_MSG(angular_[d] == other.angular_[d],
                  "Compose: angular mask differs in dim %zu", d);
    // this(other(x)) = s1*(s2*x + o2) + o1.
    scale[d] = scale_[d] * other.scale_[d];
    offset[d] = scale_[d] * other.offset_[d] + offset_[d];
    angular[d] = angular_[d];
  }
  return AffineMap(std::move(scale), std::move(offset), std::move(angular));
}

}  // namespace spatial
}  // namespace tsq
