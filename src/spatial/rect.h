// Copyright (c) 2026 The tsq Authors.
//
// Axis-aligned hyper-rectangles (MBRs) and the geometry predicates the
// R-tree family needs: area, margin, overlap, containment, enlargement
// (Guttman / Beckmann split heuristics all reduce to these).

#ifndef TSQ_SPATIAL_RECT_H_
#define TSQ_SPATIAL_RECT_H_

#include <cstddef>
#include <string>

#include "common/macros.h"
#include "spatial/point.h"

namespace tsq {
namespace spatial {

/// An axis-aligned rectangle [lo, hi] in R^d (closed on both sides, the
/// convention for R-tree MBRs). A default-constructed Rect has zero
/// dimensions and is invalid; `Rect::Empty(d)` produces the canonical empty
/// rectangle whose Union with anything is that thing.
class Rect {
 public:
  Rect() = default;

  /// Degenerate rectangle at a single point.
  static Rect FromPoint(const Point& p);

  /// Rectangle from explicit corners. Requires lo.size() == hi.size() and
  /// lo[i] <= hi[i] for all i.
  Rect(Point lo, Point hi);

  /// The canonical empty rectangle in d dimensions (lo = +inf, hi = -inf).
  static Rect Empty(size_t dims);

  /// Dimensionality.
  size_t dims() const { return lo_.size(); }

  /// True iff this rect is the canonical empty rect (or default-constructed).
  bool IsEmpty() const;

  double lo(size_t d) const {
    TSQ_DCHECK(d < lo_.size());
    return lo_[d];
  }
  double hi(size_t d) const {
    TSQ_DCHECK(d < hi_.size());
    return hi_[d];
  }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// Overwrites one dimension's interval. Requires lo <= hi.
  void SetDim(size_t d, double lo, double hi);

  /// Side length along dimension d (0 for empty rects).
  double Extent(size_t d) const;

  /// Product of extents. Zero-extent dimensions make the area 0, as usual
  /// for point data; split heuristics fall back to margin in that case.
  double Area() const;

  /// Sum of extents (the L1 "margin" of [BKSS90]).
  double Margin() const;

  /// Geometric center.
  Point Center() const;

  /// True iff this and `other` intersect (closed-interval test).
  bool Intersects(const Rect& other) const;

  /// True iff `p` lies inside this rect (closed).
  bool Contains(const Point& p) const;

  /// True iff `other` lies fully inside this rect.
  bool ContainsRect(const Rect& other) const;

  /// Smallest rect covering this and `other`.
  Rect UnionWith(const Rect& other) const;

  /// Extends this rect in place to cover `other`.
  void ExpandToInclude(const Rect& other);
  void ExpandToInclude(const Point& p);

  /// Area of the intersection (0 when disjoint).
  double IntersectionArea(const Rect& other) const;

  /// Area increase needed to absorb `other` — Guttman's insertion metric.
  double Enlargement(const Rect& other) const;

  /// This rect grown by `eps` on every side (the epsilon-range box around a
  /// query point, Sec. 3.1 rectangular case).
  Rect Grown(double eps) const;

  bool operator==(const Rect& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_;
  }
  bool operator!=(const Rect& other) const { return !(*this == other); }

  /// "[lo0,hi0]x[lo1,hi1]..." for logs and test output.
  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace spatial
}  // namespace tsq

#endif  // TSQ_SPATIAL_RECT_H_
