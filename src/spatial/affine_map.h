// Copyright (c) 2026 The tsq Authors.
//
// Per-dimension affine maps on feature space — the geometric core of the
// paper's Algorithm 1. Theorems 1-3 reduce every *safe* transformation
// T = (a, b) on complex feature vectors to a real affine map
//     x_d -> scale_d * x_d + offset_d
// per real index dimension, and a safe map sends rectangles to rectangles.
// Applying an AffineMap to every MBR while descending the R-tree *is* the
// on-the-fly construction of the transformed index I' = T(I).
//
// Angular dimensions (the phase dims of the polar space Spol) need special
// care: values live on the circle (-pi, pi]. Theorem 3 guarantees their
// scale is exactly 1 (a pure rotation); after adding the offset an interval
// may cross the +-pi branch cut. Since the R-tree stores plain intervals,
// a crossing interval is conservatively widened to the full circle — this
// keeps the transformed MBR a superset of the transformed points, so
// Lemma 1's no-false-dismissal property is preserved (at the cost of a few
// extra candidates, which postprocessing removes).

#ifndef TSQ_SPATIAL_AFFINE_MAP_H_
#define TSQ_SPATIAL_AFFINE_MAP_H_

#include <vector>

#include "spatial/point.h"
#include "spatial/rect.h"

namespace tsq {
namespace spatial {

/// A per-dimension affine transformation of R^d with optional angular
/// (circle-valued) dimensions.
class AffineMap {
 public:
  AffineMap() = default;

  /// Constructs from per-dimension scales and offsets. `angular[d]` marks
  /// circle-valued dims; for those the scale must be 1.0 (Theorem 3).
  AffineMap(std::vector<double> scale, std::vector<double> offset,
            std::vector<bool> angular);

  /// Convenience: no angular dimensions.
  AffineMap(std::vector<double> scale, std::vector<double> offset);

  /// The identity map on d dimensions.
  static AffineMap Identity(size_t dims);

  /// Dimensionality.
  size_t dims() const { return scale_.size(); }

  /// True iff every dimension is scale 1, offset 0.
  bool IsIdentity() const;

  double scale(size_t d) const { return scale_[d]; }
  double offset(size_t d) const { return offset_[d]; }
  bool angular(size_t d) const { return angular_[d]; }

  /// Applies the map to a point. Angular dims are wrapped back to
  /// (-pi, pi].
  Point Apply(const Point& p) const;

  /// Applies the map to a rectangle. Negative scales swap interval
  /// endpoints; angular intervals that cross the branch cut after rotation
  /// are widened to the full circle (see file comment).
  Rect Apply(const Rect& r) const;

  /// Function composition: (this ∘ other)(x) = this(other(x)). Both maps
  /// must agree on dimensionality and angular mask; the composed scale on
  /// angular dims stays 1.
  AffineMap Compose(const AffineMap& other) const;

 private:
  std::vector<double> scale_;
  std::vector<double> offset_;
  std::vector<bool> angular_;
};

/// Wraps an angle to the canonical interval (-pi, pi].
double WrapAngle(double theta);

}  // namespace spatial
}  // namespace tsq

#endif  // TSQ_SPATIAL_AFFINE_MAP_H_
