// Copyright (c) 2026 The tsq Authors.

#include "spatial/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "simd/simd.h"

namespace tsq {
namespace spatial {

double MinDistSquared(const Point& p, const Rect& r) {
  TSQ_DCHECK(p.size() == r.dims());
  return simd::MinDistSquared(p.data(), r.lo().data(), r.hi().data(),
                              p.size());
}

double MinMaxDistSquared(const Point& p, const Rect& r) {
  TSQ_DCHECK(p.size() == r.dims());
  const size_t dims = p.size();

  // rm_k: the nearer hyperplane in dim k; rM_k: the farther corner in dim k.
  // MINMAXDIST^2 = min over k of (p_k - rm_k)^2 + sum_{i != k} (p_i - rM_i)^2.
  double total_far = 0.0;
  std::vector<double> far_sq(dims);
  for (size_t d = 0; d < dims; ++d) {
    const double mid = 0.5 * (r.lo(d) + r.hi(d));
    const double far = (p[d] >= mid) ? r.lo(d) : r.hi(d);
    far_sq[d] = (p[d] - far) * (p[d] - far);
    total_far += far_sq[d];
  }

  double best = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < dims; ++k) {
    const double mid = 0.5 * (r.lo(k) + r.hi(k));
    const double near = (p[k] <= mid) ? r.lo(k) : r.hi(k);
    const double near_sq = (p[k] - near) * (p[k] - near);
    best = std::min(best, total_far - far_sq[k] + near_sq);
  }
  return best;
}

double PointSegmentDistSquared(double px, double py, double ax, double ay,
                               double bx, double by) {
  const double abx = bx - ax;
  const double aby = by - ay;
  const double apx = px - ax;
  const double apy = py - ay;
  const double ab_len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (ab_len_sq > 0.0) {
    t = std::clamp((apx * abx + apy * aby) / ab_len_sq, 0.0, 1.0);
  }
  const double cx = ax + t * abx;
  const double cy = ay + t * aby;
  return (px - cx) * (px - cx) + (py - cy) * (py - cy);
}

double PointDistSquared(const Point& a, const Point& b) {
  TSQ_DCHECK(a.size() == b.size());
  return simd::SumSquaredDiff(a.data(), b.data(), a.size());
}

}  // namespace spatial
}  // namespace tsq
