// Copyright (c) 2026 The tsq Authors.

#include "spatial/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace tsq {
namespace spatial {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Rect Rect::FromPoint(const Point& p) { return Rect(p, p); }

Rect::Rect(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  TSQ_CHECK_MSG(lo_.size() == hi_.size(), "corner dims differ: %zu vs %zu",
                lo_.size(), hi_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    TSQ_CHECK_MSG(lo_[d] <= hi_[d], "inverted interval in dim %zu", d);
  }
}

Rect Rect::Empty(size_t dims) {
  Rect r;
  r.lo_.assign(dims, kInf);
  r.hi_.assign(dims, -kInf);
  return r;
}

bool Rect::IsEmpty() const {
  if (lo_.empty()) return true;
  for (size_t d = 0; d < dims(); ++d) {
    if (lo_[d] > hi_[d]) return true;
  }
  return false;
}

void Rect::SetDim(size_t d, double lo, double hi) {
  TSQ_CHECK(d < dims());
  TSQ_CHECK_MSG(lo <= hi, "inverted interval in dim %zu", d);
  lo_[d] = lo;
  hi_[d] = hi;
}

double Rect::Extent(size_t d) const {
  TSQ_DCHECK(d < dims());
  return std::max(0.0, hi_[d] - lo_[d]);
}

double Rect::Area() const {
  if (IsEmpty()) return 0.0;
  double area = 1.0;
  for (size_t d = 0; d < dims(); ++d) area *= Extent(d);
  return area;
}

double Rect::Margin() const {
  if (IsEmpty()) return 0.0;
  double margin = 0.0;
  for (size_t d = 0; d < dims(); ++d) margin += Extent(d);
  return margin;
}

Point Rect::Center() const {
  Point c(dims());
  for (size_t d = 0; d < dims(); ++d) c[d] = 0.5 * (lo_[d] + hi_[d]);
  return c;
}

bool Rect::Intersects(const Rect& other) const {
  TSQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < dims(); ++d) {
    if (lo_[d] > other.hi_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

bool Rect::Contains(const Point& p) const {
  TSQ_DCHECK(dims() == p.size());
  for (size_t d = 0; d < dims(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& other) const {
  TSQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < dims(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

Rect Rect::UnionWith(const Rect& other) const {
  Rect out = *this;
  out.ExpandToInclude(other);
  return out;
}

void Rect::ExpandToInclude(const Rect& other) {
  TSQ_DCHECK(dims() == other.dims());
  for (size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

void Rect::ExpandToInclude(const Point& p) {
  TSQ_DCHECK(dims() == p.size());
  for (size_t d = 0; d < dims(); ++d) {
    lo_[d] = std::min(lo_[d], p[d]);
    hi_[d] = std::max(hi_[d], p[d]);
  }
}

double Rect::IntersectionArea(const Rect& other) const {
  TSQ_DCHECK(dims() == other.dims());
  double area = 1.0;
  for (size_t d = 0; d < dims(); ++d) {
    const double lo = std::max(lo_[d], other.lo_[d]);
    const double hi = std::min(hi_[d], other.hi_[d]);
    if (lo > hi) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Rect::Enlargement(const Rect& other) const {
  return UnionWith(other).Area() - Area();
}

Rect Rect::Grown(double eps) const {
  TSQ_CHECK_MSG(eps >= 0.0, "Grown() requires non-negative eps");
  Rect out = *this;
  for (size_t d = 0; d < out.dims(); ++d) {
    out.lo_[d] -= eps;
    out.hi_[d] += eps;
  }
  return out;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  for (size_t d = 0; d < dims(); ++d) {
    os << (d == 0 ? "" : "x") << "[" << lo_[d] << "," << hi_[d] << "]";
  }
  return os.str();
}

}  // namespace spatial
}  // namespace tsq
