// Copyright (c) 2026 The tsq Authors.
//
// Kernel implementations. Every level implements the lane-reduction
// contract documented in simd.h; the scalar level is the executable
// specification the SIMD levels are tested bit-identical against. This
// translation unit is compiled with -ffp-contract=off (see CMakeLists)
// so the scalar mul-then-add sequences cannot be fused into FMAs that
// would round differently from the intrinsic levels, and — on x86 —
// with auto-vectorization disabled, so the scalar level stays literally
// scalar: the per-level numbers in BENCH_kernels.json then measure real
// hardware speedup, not "hand intrinsics vs whatever the compiler
// vectorized the reference into". The dispatcher never picks the scalar
// level on x86 (SSE2 is baseline), so production code pays nothing.

#include "simd/simd.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#define TSQ_SIMD_X86 1
#include <immintrin.h>
#else
#define TSQ_SIMD_X86 0
#endif

namespace tsq {
namespace simd {
namespace {

// Hardware max semantics (MAXPD): second operand wins on NaN.
inline double MaxPd(double a, double b) { return a > b ? a : b; }

// ---------------------------------------------------------------------------
// Scalar level — the executable form of the lane contract.
// ---------------------------------------------------------------------------

// Reduces the 16-lane accumulator array of the long-reduction kernels:
// V_j = (A_j + A_{j+8}) + (A_{j+4} + A_{j+12}) for j in 0..3 — exactly
// the vector adds (Y0 + Y2) + (Y1 + Y3) of the four AVX2 accumulators —
// then the 4-lane reduce (V0 + V2) + (V1 + V3).
inline double ReduceLanes16(const double lane[16]) {
  double v[4];
  for (int j = 0; j < 4; ++j) {
    v[j] = (lane[j] + lane[j + 8]) + (lane[j + 4] + lane[j + 12]);
  }
  return (v[0] + v[2]) + (v[1] + v[3]);
}

double SumSquaredDiffScalar(const double* x, const double* y, size_t n) {
  double lane[16] = {0.0};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (size_t j = 0; j < 16; ++j) {
      const double d = px[j] - py[j];
      lane[j] += d * d;
    }
  }
  for (size_t i = 16 * nblk; i < n; ++i) {
    const double d = x[i] - y[i];
    lane[i - 16 * nblk] += d * d;
  }
  return ReduceLanes16(lane);
}

double SumSquaredDiffEaScalar(const double* x, const double* y, size_t n,
                              double limit) {
  double lane[16] = {0.0};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (size_t j = 0; j < 16; ++j) {
      const double d = px[j] - py[j];
      lane[j] += d * d;
    }
    // Checkpoint: after every full 16-element block.
    const double partial = ReduceLanes16(lane);
    if (partial > limit) return partial;
  }
  for (size_t i = 16 * nblk; i < n; ++i) {
    const double d = x[i] - y[i];
    lane[i - 16 * nblk] += d * d;
  }
  return ReduceLanes16(lane);
}

double MinDistSquaredScalar(const double* p, const double* lo,
                            const double* hi, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const size_t nblk = n / 4;
  for (size_t b = 0; b < nblk; ++b) {
    const size_t i = 4 * b;
    const double g0 = MaxPd(MaxPd(lo[i + 0] - p[i + 0], p[i + 0] - hi[i + 0]), 0.0);
    const double g1 = MaxPd(MaxPd(lo[i + 1] - p[i + 1], p[i + 1] - hi[i + 1]), 0.0);
    const double g2 = MaxPd(MaxPd(lo[i + 2] - p[i + 2], p[i + 2] - hi[i + 2]), 0.0);
    const double g3 = MaxPd(MaxPd(lo[i + 3] - p[i + 3], p[i + 3] - hi[i + 3]), 0.0);
    a0 += g0 * g0;
    a1 += g1 * g1;
    a2 += g2 * g2;
    a3 += g3 * g3;
  }
  double lane[4] = {a0, a1, a2, a3};
  for (size_t i = 4 * nblk; i < n; ++i) {
    const double g = MaxPd(MaxPd(lo[i] - p[i], p[i] - hi[i]), 0.0);
    lane[i - 4 * nblk] += g * g;
  }
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void MinDistSquaredBatchScalar(const double* p, const double* const* los,
                               const double* const* his, size_t count,
                               size_t n, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = MinDistSquaredScalar(p, los[i], his[i], n);
  }
}

double SumScalar(const double* x, size_t n) {
  double lane[16] = {0.0};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (size_t j = 0; j < 16; ++j) lane[j] += px[j];
  }
  for (size_t i = 16 * nblk; i < n; ++i) lane[i - 16 * nblk] += x[i];
  return ReduceLanes16(lane);
}

double CenteredSumSquaresScalar(const double* x, size_t n, double mean) {
  double lane[16] = {0.0};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (size_t j = 0; j < 16; ++j) {
      const double d = px[j] - mean;
      lane[j] += d * d;
    }
  }
  for (size_t i = 16 * nblk; i < n; ++i) {
    const double d = x[i] - mean;
    lane[i - 16 * nblk] += d * d;
  }
  return ReduceLanes16(lane);
}

void ScaleShiftScalar(const double* x, size_t n, double sub, double mul,
                      double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (x[i] - sub) * mul;
}

void ScaleInPlaceScalar(double* x, size_t n, double s) {
  for (size_t i = 0; i < n; ++i) x[i] *= s;
}

void WidenToComplexScalar(const double* src, size_t n, double* dst) {
  for (size_t i = 0; i < n; ++i) {
    dst[2 * i] = src[i];
    dst[2 * i + 1] = 0.0;
  }
}

constexpr KernelTable kScalarTable = {
    &SumSquaredDiffScalar,    &SumSquaredDiffEaScalar,
    &MinDistSquaredScalar,    &MinDistSquaredBatchScalar,
    &SumScalar,               &CenteredSumSquaresScalar,
    &ScaleShiftScalar,        &ScaleInPlaceScalar,
    &WidenToComplexScalar,
};

#if TSQ_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 level. Long-reduction kernels: eight __m128d accumulators X_k
// holding lanes {2k, 2k+1} — eight independent add chains. MinDist (tiny
// n, feature dims): two accumulators {A0,A1}, {A2,A3} on the 4-lane
// contract. x86-64 baseline, so no target attribute needed.
// ---------------------------------------------------------------------------

// Reduces {A0,A1} + {A2,A3} to (A0 + A2) + (A1 + A3).
inline double Reduce128(__m128d acc01, __m128d acc23) {
  const __m128d s = _mm_add_pd(acc01, acc23);  // [A0+A2, A1+A3]
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// The 16-lane reduce: V01/V23 hold {V0,V1}/{V2,V3} with
// V_j = (A_j + A_{j+8}) + (A_{j+4} + A_{j+12}), then the 4-lane reduce.
inline double Reduce128x8(const __m128d acc[8]) {
  const __m128d v01 = _mm_add_pd(_mm_add_pd(acc[0], acc[4]),
                                 _mm_add_pd(acc[2], acc[6]));
  const __m128d v23 = _mm_add_pd(_mm_add_pd(acc[1], acc[5]),
                                 _mm_add_pd(acc[3], acc[7]));
  return Reduce128(v01, v23);
}

// Folds the <16-element tail into the stored lanes and reduces.
inline double TailReduceDiff(const __m128d acc[8], const double* x,
                             const double* y, size_t base, size_t n) {
  double lane[16];
  for (int k = 0; k < 8; ++k) _mm_storeu_pd(lane + 2 * k, acc[k]);
  for (size_t i = base; i < n; ++i) {
    const double d = x[i] - y[i];
    lane[i - base] += d * d;
  }
  return ReduceLanes16(lane);
}

double SumSquaredDiffSse2(const double* x, const double* y, size_t n) {
  __m128d acc[8] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (int k = 0; k < 8; ++k) {
      const __m128d d =
          _mm_sub_pd(_mm_loadu_pd(px + 2 * k), _mm_loadu_pd(py + 2 * k));
      acc[k] = _mm_add_pd(acc[k], _mm_mul_pd(d, d));
    }
  }
  return TailReduceDiff(acc, x, y, 16 * nblk, n);
}

double SumSquaredDiffEaSse2(const double* x, const double* y, size_t n,
                            double limit) {
  __m128d acc[8] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (int k = 0; k < 8; ++k) {
      const __m128d d =
          _mm_sub_pd(_mm_loadu_pd(px + 2 * k), _mm_loadu_pd(py + 2 * k));
      acc[k] = _mm_add_pd(acc[k], _mm_mul_pd(d, d));
    }
    const double partial = Reduce128x8(acc);
    if (partial > limit) return partial;
  }
  return TailReduceDiff(acc, x, y, 16 * nblk, n);
}

double MinDistSquaredSse2(const double* p, const double* lo, const double* hi,
                          size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  const __m128d zero = _mm_setzero_pd();
  const size_t nblk = n / 4;
  for (size_t b = 0; b < nblk; ++b) {
    const size_t i = 4 * b;
    const __m128d p01 = _mm_loadu_pd(p + i), p23 = _mm_loadu_pd(p + i + 2);
    const __m128d g01 = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(lo + i), p01),
                   _mm_sub_pd(p01, _mm_loadu_pd(hi + i))),
        zero);
    const __m128d g23 = _mm_max_pd(
        _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(lo + i + 2), p23),
                   _mm_sub_pd(p23, _mm_loadu_pd(hi + i + 2))),
        zero);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(g01, g01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(g23, g23));
  }
  double lane[4];
  _mm_storeu_pd(lane + 0, acc01);
  _mm_storeu_pd(lane + 2, acc23);
  for (size_t i = 4 * nblk; i < n; ++i) {
    const double g = MaxPd(MaxPd(lo[i] - p[i], p[i] - hi[i]), 0.0);
    lane[i - 4 * nblk] += g * g;
  }
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

void MinDistSquaredBatchSse2(const double* p, const double* const* los,
                             const double* const* his, size_t count, size_t n,
                             double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = MinDistSquaredSse2(p, los[i], his[i], n);
  }
}

double SumSse2(const double* x, size_t n) {
  __m128d acc[8] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (int k = 0; k < 8; ++k) {
      acc[k] = _mm_add_pd(acc[k], _mm_loadu_pd(px + 2 * k));
    }
  }
  double lane[16];
  for (int k = 0; k < 8; ++k) _mm_storeu_pd(lane + 2 * k, acc[k]);
  for (size_t i = 16 * nblk; i < n; ++i) lane[i - 16 * nblk] += x[i];
  return ReduceLanes16(lane);
}

double CenteredSumSquaresSse2(const double* x, size_t n, double mean) {
  __m128d acc[8] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd(), _mm_setzero_pd()};
  const __m128d m = _mm_set1_pd(mean);
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (int k = 0; k < 8; ++k) {
      const __m128d d = _mm_sub_pd(_mm_loadu_pd(px + 2 * k), m);
      acc[k] = _mm_add_pd(acc[k], _mm_mul_pd(d, d));
    }
  }
  double lane[16];
  for (int k = 0; k < 8; ++k) _mm_storeu_pd(lane + 2 * k, acc[k]);
  for (size_t i = 16 * nblk; i < n; ++i) {
    const double d = x[i] - mean;
    lane[i - 16 * nblk] += d * d;
  }
  return ReduceLanes16(lane);
}

void ScaleShiftSse2(const double* x, size_t n, double sub, double mul,
                    double* out) {
  const __m128d s = _mm_set1_pd(sub);
  const __m128d m = _mm_set1_pd(mul);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(out + i,
                  _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(x + i), s), m));
  }
  for (; i < n; ++i) out[i] = (x[i] - sub) * mul;
}

void ScaleInPlaceSse2(double* x, size_t n, double s) {
  const __m128d f = _mm_set1_pd(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_mul_pd(_mm_loadu_pd(x + i), f));
  }
  for (; i < n; ++i) x[i] *= s;
}

void WidenToComplexSse2(const double* src, size_t n, double* dst) {
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(src + i);
    _mm_storeu_pd(dst + 2 * i, _mm_unpacklo_pd(v, zero));
    _mm_storeu_pd(dst + 2 * i + 2, _mm_unpackhi_pd(v, zero));
  }
  for (; i < n; ++i) {
    dst[2 * i] = src[i];
    dst[2 * i + 1] = 0.0;
  }
}

constexpr KernelTable kSse2Table = {
    &SumSquaredDiffSse2,    &SumSquaredDiffEaSse2,
    &MinDistSquaredSse2,    &MinDistSquaredBatchSse2,
    &SumSse2,               &CenteredSumSquaresSse2,
    &ScaleShiftSse2,        &ScaleInPlaceSse2,
    &WidenToComplexSse2,
};

// ---------------------------------------------------------------------------
// AVX2 level. Long-reduction kernels: four __m256d accumulators Y0..Y3
// (Y_q holds lanes {4q .. 4q+3}) — four independent add chains, so the
// loop is load-throughput bound instead of serialized on vaddpd latency.
// MinDist: one __m256d whose lanes ARE the 4-lane contract's {A0..A3}.
// Compiled via per-function target attributes so the rest of the binary
// stays baseline.
// ---------------------------------------------------------------------------

#define TSQ_AVX2 __attribute__((target("avx2")))

// add(low128, high128) = [A0+A2, A1+A3], then horizontal add.
TSQ_AVX2 inline double Reduce256(__m256d acc) {
  const __m128d s =
      _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

// The 16-lane reduce: V = (Y0 + Y2) + (Y1 + Y3) holds {V0..V3}, then the
// 4-lane reduce of V.
TSQ_AVX2 inline double Reduce256x4(const __m256d acc[4]) {
  const __m256d v = _mm256_add_pd(_mm256_add_pd(acc[0], acc[2]),
                                  _mm256_add_pd(acc[1], acc[3]));
  return Reduce256(v);
}

TSQ_AVX2 inline double TailReduceDiff256(const __m256d acc[4],
                                         const double* x, const double* y,
                                         size_t base, size_t n) {
  double lane[16];
  for (int q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (size_t i = base; i < n; ++i) {
    const double d = x[i] - y[i];
    lane[i - base] += d * d;
  }
  return ReduceLanes16(lane);
}

TSQ_AVX2 double SumSquaredDiffAvx2(const double* x, const double* y,
                                   size_t n) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (int q = 0; q < 4; ++q) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(px + 4 * q),
                                      _mm256_loadu_pd(py + 4 * q));
      acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(d, d));
    }
  }
  return TailReduceDiff256(acc, x, y, 16 * nblk, n);
}

TSQ_AVX2 double SumSquaredDiffEaAvx2(const double* x, const double* y,
                                     size_t n, double limit) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    const double* py = y + 16 * b;
    for (int q = 0; q < 4; ++q) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(px + 4 * q),
                                      _mm256_loadu_pd(py + 4 * q));
      acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(d, d));
    }
    const double partial = Reduce256x4(acc);
    if (partial > limit) return partial;
  }
  return TailReduceDiff256(acc, x, y, 16 * nblk, n);
}

TSQ_AVX2 double MinDistSquaredAvx2(const double* p, const double* lo,
                                   const double* hi, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const __m256d zero = _mm256_setzero_pd();
  const size_t nblk = n / 4;
  for (size_t b = 0; b < nblk; ++b) {
    const size_t i = 4 * b;
    const __m256d pv = _mm256_loadu_pd(p + i);
    const __m256d g = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(lo + i), pv),
                      _mm256_sub_pd(pv, _mm256_loadu_pd(hi + i))),
        zero);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(g, g));
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (size_t i = 4 * nblk; i < n; ++i) {
    const double g = MaxPd(MaxPd(lo[i] - p[i], p[i] - hi[i]), 0.0);
    lane[i - 4 * nblk] += g * g;
  }
  return (lane[0] + lane[2]) + (lane[1] + lane[3]);
}

TSQ_AVX2 void MinDistSquaredBatchAvx2(const double* p,
                                      const double* const* los,
                                      const double* const* his, size_t count,
                                      size_t n, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = MinDistSquaredAvx2(p, los[i], his[i], n);
  }
}

TSQ_AVX2 double SumAvx2(const double* x, size_t n) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (int q = 0; q < 4; ++q) {
      acc[q] = _mm256_add_pd(acc[q], _mm256_loadu_pd(px + 4 * q));
    }
  }
  double lane[16];
  for (int q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (size_t i = 16 * nblk; i < n; ++i) lane[i - 16 * nblk] += x[i];
  return ReduceLanes16(lane);
}

TSQ_AVX2 double CenteredSumSquaresAvx2(const double* x, size_t n,
                                       double mean) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  const __m256d m = _mm256_set1_pd(mean);
  const size_t nblk = n / 16;
  for (size_t b = 0; b < nblk; ++b) {
    const double* px = x + 16 * b;
    for (int q = 0; q < 4; ++q) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(px + 4 * q), m);
      acc[q] = _mm256_add_pd(acc[q], _mm256_mul_pd(d, d));
    }
  }
  double lane[16];
  for (int q = 0; q < 4; ++q) _mm256_storeu_pd(lane + 4 * q, acc[q]);
  for (size_t i = 16 * nblk; i < n; ++i) {
    const double d = x[i] - mean;
    lane[i - 16 * nblk] += d * d;
  }
  return ReduceLanes16(lane);
}

TSQ_AVX2 void ScaleShiftAvx2(const double* x, size_t n, double sub,
                             double mul, double* out) {
  const __m256d s = _mm256_set1_pd(sub);
  const __m256d m = _mm256_set1_pd(mul);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), s),
                                   m));
  }
  for (; i < n; ++i) out[i] = (x[i] - sub) * mul;
}

TSQ_AVX2 void ScaleInPlaceAvx2(double* x, size_t n, double s) {
  const __m256d f = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), f));
  }
  for (; i < n; ++i) x[i] *= s;
}

constexpr KernelTable kAvx2Table = {
    &SumSquaredDiffAvx2,    &SumSquaredDiffEaAvx2,
    &MinDistSquaredAvx2,    &MinDistSquaredBatchAvx2,
    &SumAvx2,               &CenteredSumSquaresAvx2,
    &ScaleShiftAvx2,        &ScaleInPlaceAvx2,
    &WidenToComplexSse2,  // interleave is memory-bound; SSE2 form suffices
};

#endif  // TSQ_SIMD_X86

const KernelTable* TableFor(Level level) {
  switch (level) {
#if TSQ_SIMD_X86
    case Level::kSse2:
      return &kSse2Table;
    case Level::kAvx2:
      return &kAvx2Table;
#endif
    default:
      return &kScalarTable;
  }
}

Level DetectBest() {
#if TSQ_SIMD_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

Level DetectInitial() {
  const Level best = DetectBest();
  const char* env = std::getenv("TSQ_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::optional<Level> parsed = ParseLevel(env);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "tsq: ignoring unknown TSQ_SIMD value '%s' "
                   "(expected scalar|sse2|avx2)\n",
                   env);
    } else if (*parsed > best) {
      std::fprintf(stderr,
                   "tsq: TSQ_SIMD=%s not supported on this CPU; using %s\n",
                   env, LevelName(best));
    } else {
      return *parsed;
    }
  }
  return best;
}

// -1 = not yet initialized; otherwise the int value of the active Level.
std::atomic<int> g_active_level{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::optional<Level> ParseLevel(std::string_view name) {
  char buf[8] = {0};
  if (name.size() >= sizeof(buf)) return std::nullopt;
  for (size_t i = 0; i < name.size(); ++i) {
    buf[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[i])));
  }
  if (std::strcmp(buf, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(buf, "sse2") == 0) return Level::kSse2;
  if (std::strcmp(buf, "avx2") == 0) return Level::kAvx2;
  return std::nullopt;
}

Level BestSupportedLevel() {
  static const Level best = DetectBest();
  return best;
}

Level ActiveLevel() {
  int v = g_active_level.load(std::memory_order_acquire);
  if (v < 0) {
    const Level detected = DetectInitial();
    int expected = -1;
    g_active_level.compare_exchange_strong(expected,
                                           static_cast<int>(detected),
                                           std::memory_order_acq_rel);
    v = g_active_level.load(std::memory_order_acquire);
  }
  return static_cast<Level>(v);
}

bool SetLevelForTesting(Level level) {
  if (level > BestSupportedLevel()) return false;
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
  return true;
}

const KernelTable& Kernels() { return *TableFor(ActiveLevel()); }

const KernelTable& KernelsFor(Level level) {
  if (level > BestSupportedLevel()) {
    std::fprintf(stderr, "tsq: simd level %s not supported on this CPU\n",
                 LevelName(level));
    std::abort();
  }
  return *TableFor(level);
}

double SumSquaredDiff(const double* x, const double* y, size_t n) {
  return Kernels().sum_squared_diff(x, y, n);
}

double SumSquaredDiffEarlyAbandon(const double* x, const double* y, size_t n,
                                  double limit) {
  return Kernels().sum_squared_diff_ea(x, y, n, limit);
}

double MinDistSquared(const double* p, const double* lo, const double* hi,
                      size_t n) {
  return Kernels().min_dist_squared(p, lo, hi, n);
}

double Sum(const double* x, size_t n) { return Kernels().sum(x, n); }

double CenteredSumSquares(const double* x, size_t n, double mean) {
  return Kernels().centered_sum_squares(x, n, mean);
}

double SumSquares(const double* x, size_t n) {
  return Kernels().centered_sum_squares(x, n, 0.0);
}

}  // namespace simd
}  // namespace tsq
