// Copyright (c) 2026 The tsq Authors.
//
// Runtime-dispatched vector kernels for the hot numeric loops: squared
// Euclidean distance (with and without early abandoning), point-vs-rect
// MinDist lower bounds, the moments pass of normalization, and the
// elementwise scale/widen steps of the DFT feature projection.
//
// Lane-reduction determinism contract
// -----------------------------------
// Every reduction kernel — at every dispatch level, scalar included —
// accumulates into the SAME conceptual lanes and reduces them in the
// SAME order, so scalar, SSE2 and AVX2 produce bit-identical doubles.
//
// Long-reduction kernels (sum_squared_diff[_ea], sum,
// centered_sum_squares — n is a series length) use SIXTEEN lanes:
//
//   * element i accumulates into lane (i mod 16), blocks of sixteen
//     elements processed in increasing order, the <16 tail elements
//     last. Sixteen lanes are four independent AVX2 accumulators
//     Y0..Y3 (Y_q = lanes {4q .. 4q+3}), so the hot loop is bound by
//     load throughput, not serialized on vaddpd latency; SSE2 splits
//     the same lanes over eight __m128d accumulators.
//   * no FMA contraction: every term is rounded as mul-then-add (the
//     build pins -ffp-contract=off for this translation unit);
//   * the final reduce is first V = (Y0 + Y2) + (Y1 + Y3) — vector
//     adds, i.e. V_j = (A_j + A_{j+8}) + (A_{j+4} + A_{j+12}) — then
//     the 4-lane reduce (V0 + V2) + (V1 + V3) via add(low128, high128)
//     and a horizontal add.
//
// MinDist kernels traverse feature-space rects (n = a handful of
// dimensions, too short for 16-element blocks to ever engage), so they
// keep a FOUR-lane contract: element i -> lane (i mod 4), final reduce
// (A0 + A2) + (A1 + A3).
//
// Early-abandoning kernels additionally pin WHERE the running sum is
// compared against the limit: after every full 16-element block, never
// inside the tail. On abandon they return the checkpoint partial
// (> limit); otherwise the exact full sum. Because partial sums of
// squares are monotone for finite inputs, "result > limit" is
// equivalent to "full sum > limit" — only the constant factor of work
// saved differs from a per-element check.
//
// MinDist kernels use hardware max semantics: max(a, b) = a > b ? a : b
// (the second operand wins on NaN, matching MAXPD), applied as
// gap = max(max(lo - p, p - hi), 0).
//
// Dispatch
// --------
// The active level is picked once per process: the TSQ_SIMD environment
// variable ("scalar" | "sse2" | "avx2", case-insensitive) if set and
// supported, else the best level the CPU supports. Tests and benches may
// override it at runtime with SetLevelForTesting. Non-x86 builds compile
// the scalar level only.

#ifndef TSQ_SIMD_SIMD_H_
#define TSQ_SIMD_SIMD_H_

#include <cstddef>
#include <optional>
#include <string_view>

namespace tsq {
namespace simd {

/// Dispatch levels, ordered from portable to widest.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Short lowercase name ("scalar" / "sse2" / "avx2").
const char* LevelName(Level level);

/// Parses a level name (case-insensitive); nullopt on unknown input.
std::optional<Level> ParseLevel(std::string_view name);

/// Best level this CPU supports (kScalar on non-x86 builds).
Level BestSupportedLevel();

/// The level kernels dispatch to: TSQ_SIMD override if valid, else
/// BestSupportedLevel(), unless SetLevelForTesting changed it.
Level ActiveLevel();

/// Forces the active level (clamped semantics: returns false and leaves
/// the level unchanged if `level` exceeds BestSupportedLevel()). For
/// tests and benches; takes effect process-wide.
bool SetLevelForTesting(Level level);

/// The per-level kernel implementations. Callers on a hot path may cache
/// `const KernelTable& k = simd::Kernels();` once and invoke members
/// directly; the table itself is immutable.
struct KernelTable {
  /// sum_i (x[i] - y[i])^2.
  double (*sum_squared_diff)(const double* x, const double* y, size_t n);
  /// Early-abandoning sum of squared diffs; returns a checkpoint partial
  /// (> limit) on abandon, the exact full sum otherwise.
  double (*sum_squared_diff_ea)(const double* x, const double* y, size_t n,
                                double limit);
  /// sum_d max(max(lo[d] - p[d], p[d] - hi[d]), 0)^2 — the R*-tree
  /// MINDIST lower bound, squared.
  double (*min_dist_squared)(const double* p, const double* lo,
                             const double* hi, size_t n);
  /// out[i] = min_dist_squared(p, los[i], his[i], n) for i < count. The
  /// batched form the tree descent feeds a whole node through at once.
  void (*min_dist_squared_batch)(const double* p, const double* const* los,
                                 const double* const* his, size_t count,
                                 size_t n, double* out);
  /// sum_i x[i].
  double (*sum)(const double* x, size_t n);
  /// sum_i (x[i] - mean)^2. With mean == 0.0 this is the energy kernel
  /// (x - 0.0 is bit-identical to x for every double).
  double (*centered_sum_squares)(const double* x, size_t n, double mean);
  /// out[i] = (x[i] - sub) * mul — the normalize step. Elementwise, so
  /// results are level-independent by construction.
  void (*scale_shift)(const double* x, size_t n, double sub, double mul,
                      double* out);
  /// x[i] *= s in place — the DFT 1/sqrt(n) projection scaling.
  void (*scale_inplace)(double* x, size_t n, double s);
  /// dst[2i] = src[i], dst[2i+1] = 0 — real-to-complex widening.
  void (*widen_to_complex)(const double* src, size_t n, double* dst);
};

/// The table for ActiveLevel(). Re-reads the active level on each call;
/// cache the reference when calling in a loop.
const KernelTable& Kernels();

/// The table for an explicit level (for cross-level equality tests).
/// Aborts if the level is not compiled in / not supported by the CPU.
const KernelTable& KernelsFor(Level level);

/// Convenience wrappers through the active table.
double SumSquaredDiff(const double* x, const double* y, size_t n);
double SumSquaredDiffEarlyAbandon(const double* x, const double* y, size_t n,
                                  double limit);
double MinDistSquared(const double* p, const double* lo, const double* hi,
                      size_t n);
double Sum(const double* x, size_t n);
double CenteredSumSquares(const double* x, size_t n, double mean);
double SumSquares(const double* x, size_t n);

}  // namespace simd
}  // namespace tsq

#endif  // TSQ_SIMD_SIMD_H_
