// Copyright (c) 2026 The tsq Authors.
//
// Sharded page cache over a PageFile with a lock-free hit path. The R-tree
// performs all page access through the pool; its hit/miss/eviction counters
// are how tsq measures the "number of disk accesses" the paper reports for
// index traversals.

#ifndef TSQ_STORAGE_BUFFER_POOL_H_
#define TSQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace tsq {

/// Cache counters. disk_reads/disk_writes mirror the underlying PageFile
/// activity caused by this pool. Counters are relaxed atomics so snapshots
/// taken by concurrent readers (per-query measurement) are race-free; the
/// struct copies by value like a plain aggregate. BufferPool keeps one of
/// these per shard and merges them on read.
struct BufferPoolStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> disk_reads{0};
  std::atomic<uint64_t> disk_writes{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& other) { *this = other; }
  BufferPoolStats& operator=(const BufferPoolStats& other) {
    hits = other.hits.load(std::memory_order_relaxed);
    misses = other.misses.load(std::memory_order_relaxed);
    evictions = other.evictions.load(std::memory_order_relaxed);
    disk_reads = other.disk_reads.load(std::memory_order_relaxed);
    disk_writes = other.disk_writes.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Per-thread buffer-pool counters (plain integers, no synchronization —
/// each thread owns its own instance). Every pool operation bumps these
/// alongside the owning shard's shared counters, so a query can measure
/// exactly its own I/O by snapshotting ThisThreadPoolCounters() before and
/// after on the thread it runs on — concurrent queries on other threads
/// never leak into the delta. Counters are cumulative across all pools a
/// thread touches; only deltas are meaningful. Exactness survives the v3
/// optimistic hit path: a Fetch classifies itself as hit or miss exactly
/// once no matter how many optimistic retries it takes.
struct ThreadPoolCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
};

/// This thread's cumulative pool counters (monotonic; snapshot to diff).
const ThreadPoolCounters& ThisThreadPoolCounters();

/// One cache frame (internal to BufferPool; exposed at namespace scope only
/// so PageHandle can operate on it without reaching through the pool).
///
/// `state` packs [version:48 | pins:16] into one atomic word. The version
/// is seqlock-style: an *odd* version (bit 16 set) means the frame is in
/// transition — being loaded from disk, evicted, or recycled — and its
/// identity/bytes must not be trusted; an even version means the frame
/// stably holds page `id`. Pinning is a CAS on the whole word conditioned
/// on an even version, so a successful pin proves the frame was not
/// repurposed between lookup and pin. Unpinning is a plain fetch_sub: while
/// pins > 0 the version cannot change (eviction claims require pins == 0),
/// so the decrement can never race a transition. `id` changes only while
/// the version is odd. `referenced` is the clock/second-chance bit, set on
/// every hit and cleared by the sweep.
struct BufferFrame {
  static constexpr uint64_t kPinMask = (uint64_t{1} << 16) - 1;
  static constexpr uint64_t kVersionInc = uint64_t{1} << 16;

  std::atomic<uint64_t> state{0};  // even version, zero pins
  std::atomic<PageId> id{kInvalidPageId};
  std::atomic<bool> dirty{false};
  std::atomic<bool> referenced{false};
  Page page;
};

/// RAII pin on a cached page. While a PageHandle is alive the frame cannot
/// be evicted. Move-only; unpins at destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;

  TSQ_DISALLOW_COPY(PageHandle);

  /// True iff this handle pins a page.
  bool valid() const { return frame_ != nullptr; }

  /// The pinned page id.
  PageId id() const { return id_; }

  /// Byte access to the cached frame.
  Page* page();
  const Page* page() const;

  /// Marks the frame dirty; it will be written back on eviction/flush.
  void MarkDirty();

  /// Explicitly unpins (also called by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferFrame* frame, PageId id) : frame_(frame), id_(id) {}

  BufferFrame* frame_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// Fixed-capacity sharded page cache with clock (second-chance) eviction.
///
/// Concurrency contract (v3): the pool is split into `shards()` independent
/// shards; page ids map to shards through a splitmix64 mixing hash (see
/// ShardIndex), so the sequential ids a tree build produces spread across
/// shards instead of striping siblings into lock-step sequences.
///
/// * **Hits are lock-free.** Fetch of a cached page takes no mutex: it
///   reads the shard's page directory (an open-addressed table of atomic
///   slots), validates the frame's seqlock version, and pins with a single
///   CAS (see BufferFrame). There is no LRU list to update — recency is a
///   per-frame `referenced` bit swept lazily by the clock hand at eviction
///   time — so the hot path mutates nothing but the pin word.
/// * **Misses do I/O without the shard lock.** A miss takes the shard
///   mutex only to claim a frame (free list or clock sweep) and publish it
///   in "loading" state (odd version, id set, directory entry inserted),
///   then *drops the mutex* around the PageFile read and publishes the
///   loaded frame with a release store. Hits — and other misses — on the
///   same shard proceed while the read is in flight. Concurrent fetchers
///   of the in-flight page wait on the frame itself (bounded spin, then
///   yield/sleep), not on the mutex, and count as hits: the miss and the
///   disk read belong to the thread that performed them, exactly as when
///   a v2 waiter queued on the mutex behind the loading thread.
/// * The shard mutex still serializes the admin paths: frame claim and
///   eviction (including dirty write-back), New, Delete, FlushAll, stats
///   reset, and directory mutation. Byte access *through a held
///   PageHandle* is outside any mutex: a pinned frame cannot be evicted
///   and frames never move, so the pointer stays valid. Concurrent threads
///   must not write the same page's bytes; tsq's read paths (index
///   traversal) only read. The underlying PageFile is thread-safe
///   (positioned I/O), so shards read and write back concurrently.
///
/// Capacity is partitioned across shards (each shard gets capacity/shards
/// frames, remainder spread round-robin). Eviction pressure is therefore
/// per-shard: a shard whose frames are all pinned reports exhaustion even
/// if a neighboring shard has free frames, and — the flip side — pinned
/// pages can never be evicted by another shard's pressure. Fetch/New
/// yield-then-sleep-retry over a bounded window (~hundreds of ms) before
/// reporting exhaustion, so a shard that is only *transiently* full of
/// pins stalls briefly instead of failing the query; a permanently pinned
/// shard surfaces FailedPrecondition. Note that clock over N shards only
/// approximates one global LRU: when the working set exceeds capacity,
/// hit/eviction counts can differ from the v1 single-list pool. Workloads
/// that need v1-comparable disk-access counts (paper-figure reproductions)
/// can pin shards = 1; the auto default already keeps pools under 8 frames
/// unsharded, and for a never-re-referenced scan pattern the clock sweep
/// degenerates to the same FIFO/LRU victim order.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (non-owning: the file
  /// must outlive the pool). `shards` = 0 picks an automatic count that
  /// keeps small pools unsharded (one shard per ~8 frames, at most 16);
  /// explicit counts are clamped to [1, capacity] so every shard owns at
  /// least one frame.
  BufferPool(PageFile* file, size_t capacity, size_t shards = 0);
  ~BufferPool();

  TSQ_DISALLOW_COPY_AND_MOVE(BufferPool);

  /// Pins page `id`, reading it from disk on a miss. Lock-free when the
  /// page is cached (see class comment).
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page and pins it (zeroed, marked dirty).
  Result<PageHandle> New();

  /// Removes page `id` from the cache and frees it in the file. The page
  /// must not be pinned (or mid-load).
  Status Delete(PageId id);

  /// Writes back every dirty frame (keeps them cached). Deterministic
  /// order: shard 0's frames in frame order, then shard 1's, and so on;
  /// one Sync of the file at the end.
  Status FlushAll();

  /// Number of frames the pool may hold (summed over all shards).
  size_t capacity() const { return capacity_; }

  /// Number of independent shards.
  size_t shards() const { return shards_.size(); }

  /// The shard a page id maps to: a splitmix64 fold of the id, reduced mod
  /// the shard count (exposed for white-box tests). Sequential ids — the
  /// common case, since tree builds allocate pages in order — land on
  /// effectively random shards instead of round-robining in lock-step.
  size_t ShardIndex(PageId id) const {
    uint64_t x = id + uint64_t{0x9E3779B97F4A7C15};
    x = (x ^ (x >> 30)) * uint64_t{0xBF58476D1CE4E5B9};
    x = (x ^ (x >> 27)) * uint64_t{0x94D049BB133111EB};
    x ^= x >> 31;
    return x % shards_.size();
  }

  /// Counters, merged across shards on every call; Reset clears both pool
  /// and file counters.
  BufferPoolStats stats() const;
  void ResetStats();

  /// The underlying file.
  PageFile* file() { return file_; }

 private:
  /// One open-addressed directory slot: page id -> frame index. id is
  /// kInvalidPageId (0) when never used ("empty", stops probes) and
  /// kDirTombstone when erased (probes continue through it). Slots are
  /// written only under the shard mutex and read lock-free; a reader
  /// always re-validates against the frame itself, so stale slots cost a
  /// retry, never a wrong pin.
  struct DirSlot {
    std::atomic<PageId> id{kInvalidPageId};
    std::atomic<uint32_t> frame{0};
  };

  struct Shard {
    // Serializes misses/eviction/New/Delete/Flush and directory writes.
    // Never taken on the hit path.
    mutable std::mutex mutex;
    std::unique_ptr<BufferFrame[]> frames;
    size_t num_frames = 0;
    std::unique_ptr<DirSlot[]> dir;
    size_t dir_mask = 0;   // dir size - 1 (power of two)
    size_t dir_empty = 0;  // never-used slots left; rebuild when low
    std::vector<size_t> free_frames;
    size_t clock_hand = 0;
    BufferPoolStats stats;
  };

  static constexpr size_t kNoFrame = static_cast<size_t>(-1);

  /// Lock-free probe of the shard directory; returns a frame index or
  /// kNoFrame. The result is a hint until validated against the frame.
  static size_t DirLookup(const Shard& shard, PageId id);
  /// Directory writes; caller holds the shard mutex.
  static void DirInsert(Shard* shard, PageId id, size_t frame_idx);
  static void DirErase(Shard* shard, PageId id);
  static void DirRebuild(Shard* shard);

  /// Claims a frame (free list, else clock sweep with eviction + dirty
  /// write-back) and returns it with an odd (in-transition) version.
  /// Caller holds the shard mutex. FailedPrecondition when every frame is
  /// pinned or mid-transition (transient under concurrency).
  Result<size_t> AcquireFrame(Shard* shard);

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_BUFFER_POOL_H_
