// Copyright (c) 2026 The tsq Authors.
//
// LRU buffer pool over a PageFile. The R-tree performs all page access
// through the pool; its hit/miss/eviction counters are how tsq measures the
// "number of disk accesses" the paper reports for index traversals.

#ifndef TSQ_STORAGE_BUFFER_POOL_H_
#define TSQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace tsq {

/// Cache counters. disk_reads/disk_writes mirror the underlying PageFile
/// activity caused by this pool. Counters are relaxed atomics so snapshots
/// taken by concurrent readers (per-query StatsScopes) are race-free; the
/// struct copies by value like a plain aggregate.
struct BufferPoolStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> disk_reads{0};
  std::atomic<uint64_t> disk_writes{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& other) { *this = other; }
  BufferPoolStats& operator=(const BufferPoolStats& other) {
    hits = other.hits.load(std::memory_order_relaxed);
    misses = other.misses.load(std::memory_order_relaxed);
    evictions = other.evictions.load(std::memory_order_relaxed);
    disk_reads = other.disk_reads.load(std::memory_order_relaxed);
    disk_writes = other.disk_writes.load(std::memory_order_relaxed);
    return *this;
  }
};

class BufferPool;

/// RAII pin on a cached page. While a PageHandle is alive the frame cannot
/// be evicted. Move-only; unpins at destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;

  TSQ_DISALLOW_COPY(PageHandle);

  /// True iff this handle pins a page.
  bool valid() const { return pool_ != nullptr; }

  /// The pinned page id.
  PageId id() const { return id_; }

  /// Byte access to the cached frame.
  Page* page();
  const Page* page() const;

  /// Marks the frame dirty; it will be written back on eviction/flush.
  void MarkDirty();

  /// Explicitly unpins (also called by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, size_t frame)
      : pool_(pool), id_(id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  size_t frame_ = 0;
};

/// Fixed-capacity LRU page cache.
///
/// Concurrency contract (v1): every pool operation — Fetch, New, Delete,
/// FlushAll, pin/unpin, dirty marking — serializes on one internal mutex,
/// so any number of threads may share a pool. Byte access *through a held
/// PageHandle* is deliberately outside the mutex: a pinned frame cannot be
/// evicted and the frame array never reallocates, so the pointer stays
/// valid. Concurrent threads must not write the same page's bytes; tsq's
/// read paths (index traversal) only read. A sharded/lock-free pool is
/// future work once the engine's profile demands it.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (non-owning: the file
  /// must outlive the pool).
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  TSQ_DISALLOW_COPY_AND_MOVE(BufferPool);

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page and pins it (zeroed, marked dirty).
  Result<PageHandle> New();

  /// Removes page `id` from the cache (writing back if dirty) and frees it
  /// in the file. The page must not be pinned.
  Status Delete(PageId id);

  /// Writes back every dirty frame (keeps them cached).
  Status FlushAll();

  /// Number of frames the pool may hold.
  size_t capacity() const { return capacity_; }

  /// Counters; Reset clears both pool and file counters.
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats();

  /// The underlying file.
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    int pins = 0;
    bool dirty = false;
    // Position in lru_ when unpinned; lru_.end() while pinned.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame_idx);
  void MarkDirty(size_t frame_idx);
  void TouchLru(size_t frame_idx);
  Result<size_t> AcquireFrame();  // free frame, evicting if needed

  PageFile* file_;
  size_t capacity_;
  mutable std::mutex mutex_;  // guards all frame/LRU/directory state
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_to_frame_;
  std::list<size_t> lru_;  // front = least recently used, unpinned only
  BufferPoolStats stats_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_BUFFER_POOL_H_
