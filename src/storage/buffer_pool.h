// Copyright (c) 2026 The tsq Authors.
//
// Sharded LRU buffer pool over a PageFile. The R-tree performs all page
// access through the pool; its hit/miss/eviction counters are how tsq
// measures the "number of disk accesses" the paper reports for index
// traversals.

#ifndef TSQ_STORAGE_BUFFER_POOL_H_
#define TSQ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace tsq {

/// Cache counters. disk_reads/disk_writes mirror the underlying PageFile
/// activity caused by this pool. Counters are relaxed atomics so snapshots
/// taken by concurrent readers (per-query measurement) are race-free; the
/// struct copies by value like a plain aggregate. BufferPool keeps one of
/// these per shard and merges them on read.
struct BufferPoolStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> disk_reads{0};
  std::atomic<uint64_t> disk_writes{0};

  BufferPoolStats() = default;
  BufferPoolStats(const BufferPoolStats& other) { *this = other; }
  BufferPoolStats& operator=(const BufferPoolStats& other) {
    hits = other.hits.load(std::memory_order_relaxed);
    misses = other.misses.load(std::memory_order_relaxed);
    evictions = other.evictions.load(std::memory_order_relaxed);
    disk_reads = other.disk_reads.load(std::memory_order_relaxed);
    disk_writes = other.disk_writes.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Per-thread buffer-pool counters (plain integers, no synchronization —
/// each thread owns its own instance). Every pool operation bumps these
/// alongside the owning shard's shared counters, so a query can measure
/// exactly its own I/O by snapshotting ThisThreadPoolCounters() before and
/// after on the thread it runs on — concurrent queries on other threads
/// never leak into the delta. Counters are cumulative across all pools a
/// thread touches; only deltas are meaningful.
struct ThreadPoolCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
};

/// This thread's cumulative pool counters (monotonic; snapshot to diff).
const ThreadPoolCounters& ThisThreadPoolCounters();

class BufferPool;

/// RAII pin on a cached page. While a PageHandle is alive the frame cannot
/// be evicted. Move-only; unpins at destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;

  TSQ_DISALLOW_COPY(PageHandle);

  /// True iff this handle pins a page.
  bool valid() const { return pool_ != nullptr; }

  /// The pinned page id.
  PageId id() const { return id_; }

  /// Byte access to the cached frame.
  Page* page();
  const Page* page() const;

  /// Marks the frame dirty; it will be written back on eviction/flush.
  void MarkDirty();

  /// Explicitly unpins (also called by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, size_t shard, size_t frame)
      : pool_(pool), id_(id), shard_(shard), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  size_t shard_ = 0;
  size_t frame_ = 0;
};

/// Fixed-capacity sharded LRU page cache.
///
/// Concurrency contract (v2): the pool is split into `shards()`
/// independent shards; page ids map to shards by `id % shards()`. Each
/// shard has its own mutex, frame array, free list, LRU list and stat
/// counters, so operations on pages of different shards proceed fully in
/// parallel — the v1 global mutex is gone. Within one shard, Fetch, New,
/// Delete, pin/unpin and dirty marking serialize on the shard mutex;
/// FlushAll and stats() visit shards one at a time. Byte access *through a
/// held PageHandle* is deliberately outside any mutex: a pinned frame
/// cannot be evicted and the per-shard frame arrays never reallocate, so
/// the pointer stays valid. Concurrent threads must not write the same
/// page's bytes; tsq's read paths (index traversal) only read. The
/// underlying PageFile is thread-safe (positioned I/O), so shards evict
/// and read back concurrently without coordination.
///
/// Capacity is partitioned across shards (each shard gets
/// capacity/shards frames, remainder spread round-robin). Eviction
/// pressure is therefore per-shard: a shard whose frames are all pinned
/// reports exhaustion even if a neighboring shard has free frames, and —
/// the flip side — pinned pages can never be evicted by another shard's
/// pressure. Fetch/New yield-retry a bounded number of times before
/// reporting exhaustion, so a shard that is only *transiently* full of
/// pins (more concurrent pinning threads than frames) stalls briefly
/// instead of failing the query. Note that N partitioned LRUs only approximate one global
/// LRU: when the working set exceeds capacity, hit/eviction counts can
/// differ slightly from the v1 single-list pool. Workloads that need
/// v1-comparable disk-access counts (paper-figure reproductions) can pin
/// shards = 1; the auto default already keeps pools under 8 frames
/// unsharded.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (non-owning: the file
  /// must outlive the pool). `shards` = 0 picks an automatic count that
  /// keeps small pools unsharded (one shard per ~8 frames, at most 16);
  /// explicit counts are clamped to [1, capacity] so every shard owns at
  /// least one frame.
  BufferPool(PageFile* file, size_t capacity, size_t shards = 0);
  ~BufferPool();

  TSQ_DISALLOW_COPY_AND_MOVE(BufferPool);

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page and pins it (zeroed, marked dirty).
  Result<PageHandle> New();

  /// Removes page `id` from the cache (writing back if dirty) and frees it
  /// in the file. The page must not be pinned.
  Status Delete(PageId id);

  /// Writes back every dirty frame (keeps them cached). Deterministic
  /// order: shard 0's frames in frame order, then shard 1's, and so on;
  /// one Sync of the file at the end.
  Status FlushAll();

  /// Number of frames the pool may hold (summed over all shards).
  size_t capacity() const { return capacity_; }

  /// Number of independent shards.
  size_t shards() const { return shards_.size(); }

  /// The shard a page id maps to (exposed for white-box tests).
  size_t ShardIndex(PageId id) const { return id % shards_.size(); }

  /// Counters, merged across shards on every call; Reset clears both pool
  /// and file counters.
  BufferPoolStats stats() const;
  void ResetStats();

  /// The underlying file.
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    int pins = 0;
    bool dirty = false;
    // Position in the shard's lru when unpinned; end() while pinned.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  struct Shard {
    mutable std::mutex mutex;  // guards all frame/LRU/directory state
    std::vector<Frame> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> page_to_frame;
    std::list<size_t> lru;  // front = least recently used, unpinned only
    BufferPoolStats stats;
  };

  void Unpin(size_t shard_idx, size_t frame_idx);
  void MarkDirty(size_t shard_idx, size_t frame_idx);
  static void TouchLru(Shard* shard, size_t frame_idx);
  Result<size_t> AcquireFrame(Shard* shard);  // free frame, evicting if needed

  PageFile* file_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_BUFFER_POOL_H_
