// Copyright (c) 2026 The tsq Authors.

#include "storage/relation.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "storage/io_util.h"

namespace tsq {

namespace {

// Record wire format (identical in every segment file):
//   u32 magic | u32 payload_crc | u64 payload_len | payload
// payload:
//   u64 id | string name | realvec values | complexvec dft
constexpr uint32_t kRecordMagic = 0x54535152;  // "RQST"
constexpr size_t kRecordHeaderBytes = 4 + 4 + 8;

// Directory entry packing: segment index in the top 16 bits, byte offset
// in the low 48.
constexpr int kOffsetBits = 48;
constexpr uint64_t kOffsetMask = (1ull << kOffsetBits) - 1;

uint64_t PackEntry(size_t segment, uint64_t offset) {
  return (static_cast<uint64_t>(segment) << kOffsetBits) | offset;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

serde::Buffer EncodeRecord(SeriesId id, const std::string& name,
                           const RealVec& values, const ComplexVec& dft) {
  serde::Buffer payload;
  serde::PutU64(&payload, id);
  serde::PutString(&payload, name);
  serde::PutRealVec(&payload, values);
  serde::PutComplexVec(&payload, dft);

  serde::Buffer record;
  serde::PutU32(&record, kRecordMagic);
  serde::PutU32(&record, serde::Crc32(payload));
  serde::PutU64(&record, payload.size());
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

/// Decodes and validates one record frame header (magic + plausible
/// length). The single definition of "a well-formed frame" shared by the
/// read path (ReadRecordAt) and recovery (RecoverSegment), so the two can
/// never drift apart on what they accept.
Status DecodeRecordHeader(const uint8_t (&header)[kRecordHeaderBytes],
                          uint64_t offset, const std::string& path,
                          uint32_t* crc, uint64_t* payload_len) {
  serde::Reader reader(header, sizeof(header));
  uint32_t magic = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU32(&magic));
  TSQ_RETURN_IF_ERROR(reader.GetU32(crc));
  TSQ_RETURN_IF_ERROR(reader.GetU64(payload_len));
  if (magic != kRecordMagic) {
    return Status::Corruption("bad record magic at offset " +
                              std::to_string(offset) + " in '" + path + "'");
  }
  if (*payload_len > (1ull << 32)) {
    return Status::Corruption("implausible record length " +
                              std::to_string(*payload_len) + " at offset " +
                              std::to_string(offset) + " in '" + path + "'");
  }
  return Status::OK();
}

/// One segment's recovery walk result.
struct SegmentRecovery {
  Status status;
  /// (offset, end_offset) per recovered record, in id order.
  std::vector<std::pair<uint64_t, uint64_t>> records;
};

/// Walks segment `s` of an N-segment relation from the front, collecting
/// whole records. Stops silently at a torn tail (truncated header or
/// payload, or a CRC mismatch on the segment's last record); fails with
/// Corruption on mid-file damage or an id that breaks the segment's
/// s, s+N, s+2N, ... sequence.
SegmentRecovery RecoverSegment(int fd, const std::string& path, size_t s,
                               size_t num_segments, uint64_t file_size) {
  SegmentRecovery out;
  uint64_t offset = 0;
  while (offset < file_size) {
    if (offset + kRecordHeaderBytes > file_size) break;  // torn header
    uint8_t header[kRecordHeaderBytes];
    if (!PreadExact(fd, header, sizeof(header), offset)) {
      // In-bounds read (no writers during recovery), so this is a real
      // disk error, not EOF — surface it rather than truncating good
      // records as a "torn tail".
      out.status = Status::IOError("read failed at offset " +
                                   std::to_string(offset) +
                                   " while recovering '" + path + "'");
      return out;
    }
    uint32_t crc = 0;
    uint64_t payload_len = 0;
    out.status = DecodeRecordHeader(header, offset, path, &crc, &payload_len);
    if (!out.status.ok()) return out;
    const uint64_t end = offset + kRecordHeaderBytes + payload_len;
    if (end > file_size) break;  // torn payload
    serde::Buffer payload(payload_len);
    if (payload_len > 0 &&
        !PreadExact(fd, payload.data(), payload_len,
                    offset + kRecordHeaderBytes)) {
      // In bounds per the end <= file_size check above: a disk error.
      out.status = Status::IOError("read failed at offset " +
                                   std::to_string(offset) +
                                   " while recovering '" + path + "'");
      return out;
    }
    if (serde::Crc32(payload) != crc) {
      if (end == file_size) break;  // torn tail record
      out.status = Status::Corruption("record checksum mismatch at offset " +
                                      std::to_string(offset) + " in '" +
                                      path + "'");
      return out;
    }
    serde::Reader reader(payload);
    uint64_t id = 0;
    if (!reader.GetU64(&id).ok()) {
      out.status = Status::Corruption("unreadable record id at offset " +
                                      std::to_string(offset) + " in '" +
                                      path + "'");
      return out;
    }
    const uint64_t expected = s + out.records.size() * num_segments;
    if (id != expected) {
      out.status = Status::Corruption(
          "record id " + std::to_string(id) + " at offset " +
          std::to_string(offset) + " in '" + path + "' (expected " +
          std::to_string(expected) + ")");
      return out;
    }
    out.records.emplace_back(offset, end);
    offset = end;
  }
  return out;
}

}  // namespace

namespace internal {

RecordDirectory::RecordDirectory()
    : chunks_(new std::atomic<Chunk*>[kMaxChunks]) {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

RecordDirectory::~RecordDirectory() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete chunks_[i].load(std::memory_order_relaxed);
  }
}

Status RecordDirectory::Publish(uint64_t id, uint64_t packed) {
  const uint64_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    return Status::Internal("relation directory full (id " +
                            std::to_string(id) + ")");
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::lock_guard<std::mutex> lock(grow_mutex_);
    chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new Chunk;
      for (size_t i = 0; i < kChunkSize; ++i) {
        chunk->entries[i].store(kEmpty, std::memory_order_relaxed);
      }
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
  }
  // seq_cst, not release: the publish-then-advance rendezvous with
  // AdvanceVisible needs a single total order over entry stores and
  // loads. With only acq/rel, appender A (id k) and appender B (id k+1)
  // can each publish, then each read the other's slot as still-empty
  // (store-load reordering), and both exit with entry k+1 published but
  // the watermark stuck below it forever. Under seq_cst that interleaving
  // is a cycle in the total order and cannot happen. (On x86 the extra
  // cost is one xchg per append — noise next to the fwrite+fflush.)
  chunk->entries[id & (kChunkSize - 1)].store(packed,
                                              std::memory_order_seq_cst);
  return Status::OK();
}

uint64_t RecordDirectory::Load(uint64_t id) const {
  const uint64_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) return kEmpty;
  const Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) return kEmpty;
  // seq_cst to pair with Publish (see above); compiles to a plain load on
  // x86/ARM64, so the read paths stay lock-free and fence-free.
  return chunk->entries[id & (kChunkSize - 1)].load(std::memory_order_seq_cst);
}

}  // namespace internal

Relation::Relation(std::string path) : path_(std::move(path)) {}

Relation::~Relation() {
  for (const auto& seg : segments_) {
    if (seg != nullptr && seg->file != nullptr) std::fclose(seg->file);
  }
}

std::string Relation::SegmentPath(size_t segment) const {
  return path_ + "." + std::to_string(segment);
}

Result<std::unique_ptr<Relation>> Relation::Create(const std::string& path,
                                                   size_t num_segments) {
  if (num_segments == 0 || num_segments > kMaxSegments) {
    return Status::InvalidArgument("relation segment count must be in [1, " +
                                   std::to_string(kMaxSegments) + "], got " +
                                   std::to_string(num_segments));
  }
  auto rel = std::unique_ptr<Relation>(new Relation(path));
  // Drop leftovers of an earlier layout at this path: the pre-segment
  // single heap file and any higher-numbered segment files.
  std::remove(path.c_str());
  for (size_t i = num_segments;; ++i) {
    if (std::remove(rel->SegmentPath(i).c_str()) != 0) break;
  }
  for (size_t i = 0; i < num_segments; ++i) {
    auto seg = std::make_unique<Segment>();
    seg->path = rel->SegmentPath(i);
    seg->file = std::fopen(seg->path.c_str(), "wb+");
    if (seg->file == nullptr) {
      return Status::IOError(ErrnoMessage("cannot create relation segment",
                                          seg->path));
    }
    seg->fd = fileno(seg->file);
    seg->next_id = i;
    rel->segments_.push_back(std::move(seg));
  }
  return rel;
}

Result<std::unique_ptr<Relation>> Relation::Open(const std::string& path) {
  auto rel = std::unique_ptr<Relation>(new Relation(path));
  // Discover the segment files written by Create: <path>.0 .. <path>.N-1.
  std::vector<uint64_t> file_sizes;
  for (size_t i = 0; i < kMaxSegments; ++i) {
    const std::string seg_path = rel->SegmentPath(i);
    std::FILE* f = std::fopen(seg_path.c_str(), "rb+");
    if (f == nullptr) break;
    if (std::fseek(f, 0, SEEK_END) != 0) {
      std::fclose(f);
      return Status::IOError(ErrnoMessage("seek failed in", seg_path));
    }
    auto seg = std::make_unique<Segment>();
    seg->path = seg_path;
    seg->file = f;
    seg->fd = fileno(f);
    file_sizes.push_back(static_cast<uint64_t>(std::ftell(f)));
    rel->segments_.push_back(std::move(seg));
  }
  const size_t n = rel->segments_.size();
  if (n == 0) {
    return Status::IOError("cannot open relation '" + path +
                           "': no segment files (" + path + ".0 ...)");
  }

  // Recover every segment in parallel; each walk is independent.
  std::vector<SegmentRecovery> recoveries(n);
  auto recover_one = [&](size_t s) {
    recoveries[s] = RecoverSegment(rel->segments_[s]->fd,
                                   rel->segments_[s]->path, s, n,
                                   file_sizes[s]);
  };
  if (n == 1) {
    recover_one(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t s = 0; s < n; ++s) workers.emplace_back(recover_one, s);
    for (std::thread& w : workers) w.join();
  }
  for (const SegmentRecovery& r : recoveries) {
    TSQ_RETURN_IF_ERROR(r.status);
  }

  // Keep the largest dense id prefix [0, k): segment s recovered ids
  // s, s+n, ..., so the first id it is missing is s + count*n.
  uint64_t k = UINT64_MAX;
  for (size_t s = 0; s < n; ++s) {
    k = std::min(k, static_cast<uint64_t>(s) + recoveries[s].records.size() * n);
  }
  for (size_t s = 0; s < n; ++s) {
    Segment& seg = *rel->segments_[s];
    const auto& records = recoveries[s].records;
    // Records with id >= k sit at the segment's tail (id order == offset
    // order); truncate them away together with any torn bytes.
    size_t kept = 0;
    if (k > s) kept = std::min(records.size(),
                               static_cast<size_t>((k - s + n - 1) / n));
    const uint64_t valid_end = kept == 0 ? 0 : records[kept - 1].second;
    if (valid_end < file_sizes[s]) {
      if (::ftruncate(seg.fd, static_cast<off_t>(valid_end)) != 0) {
        return Status::IOError(ErrnoMessage("cannot truncate torn tail of",
                                            seg.path));
      }
    }
    for (size_t r = 0; r < kept; ++r) {
      TSQ_RETURN_IF_ERROR(rel->directory_.Publish(s + r * n,
                                                  PackEntry(s, records[r].first)));
    }
    seg.end_offset = valid_end;
    seg.next_id = (k <= s) ? s : s + ((k - s + n - 1) / n) * n;
  }
  rel->visible_.store(k, std::memory_order_release);
  rel->next_id_.store(k, std::memory_order_relaxed);
  rel->ResetStats();  // directory rebuild I/O is not query work
  return rel;
}

Result<SeriesId> Relation::ReserveIds(uint64_t count) {
  if (count == 0) {
    return Status::InvalidArgument("cannot reserve zero ids");
  }
  if (poisoned_.load(std::memory_order_acquire)) return poison_status();
  return next_id_.fetch_add(count, std::memory_order_relaxed);
}

Result<SeriesId> Relation::Append(const std::string& name,
                                  const RealVec& values,
                                  const ComplexVec& dft) {
  TSQ_ASSIGN_OR_RETURN(const SeriesId id, ReserveIds(1));
  TSQ_RETURN_IF_ERROR(AppendWithId(id, name, values, dft));
  return id;
}

Status Relation::AppendWithId(SeriesId id, const std::string& name,
                              const RealVec& values, const ComplexVec& dft) {
  if (id >= next_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("AppendWithId of unreserved id " +
                                   std::to_string(id));
  }
  const size_t n = segments_.size();
  Segment& seg = *segments_[id % n];
  const serde::Buffer record = EncodeRecord(id, name, values, dft);

  std::unique_lock<std::mutex> lock(seg.mutex);
  seg.turn_cv.wait(lock, [&] {
    return poisoned_.load(std::memory_order_acquire) || seg.next_id == id;
  });
  if (poisoned_.load(std::memory_order_acquire)) return poison_status();

  const uint64_t offset = seg.end_offset;
  Status write_status;
  static failpoint::Site* append_fp = failpoint::Register("relation_append");
  if (append_fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(append_fp, id);
    if (d.fire()) {
      // Short and torn writes land a prefix of the record first. The
      // short write then reports a fault (and the error path below
      // truncates the prefix away, as with a real ENOSPC mid-record);
      // the torn write kills the process with the prefix on disk — the
      // crash-mid-append state recovery must clean up.
      const size_t prefix = std::min(d.bytes, record.size());
      if ((d.kind == failpoint::ActionKind::kShortWrite ||
           d.kind == failpoint::ActionKind::kTornWrite) &&
          prefix > 0 &&
          std::fseek(seg.file, static_cast<long>(offset), SEEK_SET) == 0) {
        (void)!std::fwrite(record.data(), 1, prefix, seg.file);
        (void)std::fflush(seg.file);
      }
      if (d.kind == failpoint::ActionKind::kTornWrite) {
        failpoint::CrashProcess("relation_append");
      }
      write_status =
          failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                "append failed in", seg.path);
    }
  }
  if (!write_status.ok()) {
    // handled below exactly like a real write failure
  } else if (offset + record.size() > kOffsetMask) {
    write_status = Status::IOError("relation segment '" + seg.path +
                                   "' exceeds the addressable 2^48 bytes");
  } else if (std::fseek(seg.file, static_cast<long>(offset), SEEK_SET) != 0) {
    write_status = Status::IOError(ErrnoMessage("seek failed in", seg.path));
  } else if (std::fwrite(record.data(), 1, record.size(), seg.file) !=
             record.size()) {
    write_status = Status::IOError(ErrnoMessage("append failed in", seg.path));
  } else if (std::fflush(seg.file) != 0) {
    // Drain the stdio buffer so the record is visible to concurrent pread
    // readers the moment the id is published.
    write_status = Status::IOError(ErrnoMessage("fflush failed for", seg.path));
  }
  if (!write_status.ok()) {
    // Drop any partially written bytes so the tail stays parseable, then
    // fail every other appender: a hole in the id sequence can never be
    // repaired, so the error is sticky.
    (void)::ftruncate(seg.fd, static_cast<off_t>(offset));
    lock.unlock();
    Poison(write_status);
    return write_status;
  }
  seg.end_offset = offset + record.size();
  seg.next_id = id + n;
  lock.unlock();
  seg.turn_cv.notify_all();

  stats_.bytes_written += record.size();
  Status published = directory_.Publish(id, PackEntry(id % n, offset));
  if (!published.ok()) {
    Poison(published);
    return published;
  }
  AdvanceVisible();
  return Status::OK();
}

void Relation::AdvanceVisible() {
  // Every appender sweeps the watermark over the contiguously published
  // prefix after its own publish. The seq_cst entry stores/loads (see
  // RecordDirectory::Publish) guarantee that of any two racing sweepers,
  // at least one observes the other's entry, so the last exiting sweeper
  // always covers every published id.
  uint64_t v = visible_.load(std::memory_order_seq_cst);
  while (directory_.Load(v) != internal::RecordDirectory::kEmpty) {
    if (visible_.compare_exchange_weak(v, v + 1,
                                       std::memory_order_seq_cst)) {
      ++v;
    }
    // On CAS failure v was reloaded; re-check from the new watermark.
  }
}

void Relation::Poison(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    if (!poisoned_.load(std::memory_order_relaxed)) {
      poison_status_ = status;
      poisoned_.store(true, std::memory_order_release);
    }
  }
  // Lock-then-notify so an appender between its predicate check and its
  // wait cannot miss the wakeup.
  for (const auto& seg : segments_) {
    { std::lock_guard<std::mutex> lock(seg->mutex); }
    seg->turn_cv.notify_all();
  }
}

Status Relation::poison_status() const {
  std::lock_guard<std::mutex> lock(poison_mutex_);
  return poison_status_;
}

Status Relation::ReadRecordAt(const Segment& seg, uint64_t offset,
                              SeriesRecord* out) const {
  uint8_t header[kRecordHeaderBytes];
  if (!PreadExact(seg.fd, header, sizeof(header), offset)) {
    return Status::Corruption("record header truncated at offset " +
                              std::to_string(offset) + " in '" + seg.path +
                              "'");
  }
  uint32_t crc = 0;
  uint64_t payload_len = 0;
  TSQ_RETURN_IF_ERROR(
      DecodeRecordHeader(header, offset, seg.path, &crc, &payload_len));

  serde::Buffer payload(payload_len);
  if (payload_len > 0 &&
      !PreadExact(seg.fd, payload.data(), payload_len,
                  offset + kRecordHeaderBytes)) {
    return Status::Corruption("record payload truncated at offset " +
                              std::to_string(offset) + " in '" + seg.path +
                              "'");
  }
  if (serde::Crc32(payload) != crc) {
    return Status::Corruption("record checksum mismatch at offset " +
                              std::to_string(offset) + " in '" + seg.path +
                              "'");
  }

  serde::Reader reader(payload);
  uint64_t id = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU64(&id));
  out->id = id;
  TSQ_RETURN_IF_ERROR(reader.GetString(&out->name));
  TSQ_RETURN_IF_ERROR(reader.GetRealVec(&out->values));
  TSQ_RETURN_IF_ERROR(reader.GetComplexVec(&out->dft));

  stats_.records_read += 1;
  stats_.bytes_read += kRecordHeaderBytes + payload_len;
  return Status::OK();
}

Result<SeriesRecord> Relation::Get(SeriesId id) const {
  // Served from the directory entry, not the dense watermark: a record
  // published above size() (its id reserved after a still-in-flight
  // lower id) is already durable and must be readable — the index learns
  // of an id only after its append completed, so a query racing ingest
  // may ask for it before the watermark catches up.
  const uint64_t entry = directory_.Load(id);
  if (entry == internal::RecordDirectory::kEmpty) {
    return Status::NotFound("no record with id " + std::to_string(id));
  }
  SeriesRecord rec;
  TSQ_RETURN_IF_ERROR(ReadRecordAt(*segments_[entry >> kOffsetBits],
                                   entry & kOffsetMask, &rec));
  return rec;
}

Status Relation::Scan(
    const std::function<bool(const SeriesRecord&)>& fn) const {
  // The watermark at call time bounds the scan: records are immutable
  // once published, so the scan sees a consistent dense prefix even with
  // concurrent appenders.
  const uint64_t limit = visible_.load(std::memory_order_acquire);
  for (uint64_t id = 0; id < limit; ++id) {
    const uint64_t entry = directory_.Load(id);
    SeriesRecord rec;
    TSQ_RETURN_IF_ERROR(ReadRecordAt(*segments_[entry >> kOffsetBits],
                                     entry & kOffsetMask, &rec));
    if (!fn(rec)) break;
  }
  return Status::OK();
}

Status Relation::ScanSegment(
    size_t segment, uint64_t limit_id,
    const std::function<bool(const SeriesRecord&)>& fn) const {
  const size_t n = segments_.size();
  if (segment >= n) {
    return Status::InvalidArgument("no segment " + std::to_string(segment));
  }
  const uint64_t limit =
      std::min(limit_id, visible_.load(std::memory_order_acquire));
  for (uint64_t id = segment; id < limit; id += n) {
    const uint64_t entry = directory_.Load(id);
    SeriesRecord rec;
    TSQ_RETURN_IF_ERROR(ReadRecordAt(*segments_[entry >> kOffsetBits],
                                     entry & kOffsetMask, &rec));
    if (!fn(rec)) break;
  }
  return Status::OK();
}

Status Relation::Flush() {
  for (const auto& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg->mutex);
    if (std::fflush(seg->file) != 0) {
      return Status::IOError(ErrnoMessage("fflush failed for", seg->path));
    }
  }
  return Status::OK();
}

Status Relation::Sync() {
  static failpoint::Site* sync_fp = failpoint::Register("relation_sync");
  for (size_t s = 0; s < segments_.size(); ++s) {
    Segment& seg = *segments_[s];
    std::lock_guard<std::mutex> lock(seg.mutex);
    if (std::fflush(seg.file) != 0) {
      return Status::IOError(ErrnoMessage("fflush failed for", seg.path));
    }
    if (sync_fp->armed()) {
      const failpoint::Decision d = failpoint::Evaluate(sync_fp, s);
      if (d.kind == failpoint::ActionKind::kTornWrite) {
        // The fflush above already landed the bytes in the OS; dying
        // here is "crashed after write, before the sync barrier".
        failpoint::CrashProcess("relation_sync");
      }
      if (d.fire()) {
        return failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                     "fdatasync failed for", seg.path);
      }
    }
    if (::fdatasync(seg.fd) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync failed for", seg.path));
    }
  }
  return Status::OK();
}

Status Relation::Repair() {
  // Hold every segment mutex in index order for the whole rewind; any
  // appender arriving concurrently blocks here, then sees either the
  // still-set poison or (after a successful repair) an unreserved-id
  // error for its stale reservation.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(segments_.size());
  for (const auto& seg : segments_) locks.emplace_back(seg->mutex);

  const size_t n = segments_.size();
  std::vector<uint64_t> file_sizes(n);
  std::vector<SegmentRecovery> recoveries(n);
  for (size_t s = 0; s < n; ++s) {
    Segment& seg = *segments_[s];
    // Drain any stdio state left by the faulted append so the recovery
    // walk sees the file's real bytes (errors ignored: the walk and the
    // truncate below decide what survives).
    (void)std::fflush(seg.file);
    if (std::fseek(seg.file, 0, SEEK_END) != 0) {
      return Status::IOError(ErrnoMessage("seek failed in", seg.path));
    }
    file_sizes[s] = static_cast<uint64_t>(std::ftell(seg.file));
    recoveries[s] = RecoverSegment(seg.fd, seg.path, s, n, file_sizes[s]);
    TSQ_RETURN_IF_ERROR(recoveries[s].status);
  }

  // Largest dense id prefix, exactly as Open computes it. Everything the
  // watermark acknowledged is below it: a visible record was written and
  // flushed before publication, so the walk always recovers it.
  uint64_t k = UINT64_MAX;
  for (size_t s = 0; s < n; ++s) {
    k = std::min(k,
                 static_cast<uint64_t>(s) + recoveries[s].records.size() * n);
  }
  for (size_t s = 0; s < n; ++s) {
    Segment& seg = *segments_[s];
    const auto& records = recoveries[s].records;
    size_t kept = 0;
    if (k > s) {
      kept = std::min(records.size(),
                      static_cast<size_t>((k - s + n - 1) / n));
    }
    const uint64_t valid_end = kept == 0 ? 0 : records[kept - 1].second;
    if (valid_end < file_sizes[s]) {
      if (::ftruncate(seg.fd, static_cast<off_t>(valid_end)) != 0) {
        return Status::IOError(ErrnoMessage("cannot truncate torn tail of",
                                            seg.path));
      }
    }
    seg.end_offset = valid_end;
    seg.next_id = (k <= s) ? s : s + ((k - s + n - 1) / n) * n;
  }

  // Ids in [k, reserved) are gone: reserved-but-never-appended ones, and
  // published ones truncated with the non-dense tail. Clear their
  // directory entries so Get goes back to NotFound; the rewound counter
  // re-issues the ids to future appends.
  const uint64_t reserved = next_id_.load(std::memory_order_relaxed);
  for (uint64_t id = k; id < reserved; ++id) {
    TSQ_RETURN_IF_ERROR(
        directory_.Publish(id, internal::RecordDirectory::kEmpty));
  }
  visible_.store(k, std::memory_order_release);
  next_id_.store(k, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    poison_status_ = Status::OK();
    poisoned_.store(false, std::memory_order_release);
  }
  return Status::OK();
}

}  // namespace tsq
