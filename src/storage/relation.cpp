// Copyright (c) 2026 The tsq Authors.

#include "storage/relation.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "storage/io_util.h"

namespace tsq {

namespace {

// Record wire format:
//   u32 magic | u32 payload_crc | u64 payload_len | payload
// payload:
//   u64 id | string name | realvec values | complexvec dft
constexpr uint32_t kRecordMagic = 0x54535152;  // "RQST"
constexpr size_t kRecordHeaderBytes = 4 + 4 + 8;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Relation::Relation(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

Relation::~Relation() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Relation>> Relation::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create relation", path));
  }
  return std::unique_ptr<Relation>(new Relation(f, path));
}

Result<std::unique_ptr<Relation>> Relation::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open relation", path));
  }
  auto rel = std::unique_ptr<Relation>(new Relation(f, path));
  // Rebuild the directory: walk record headers until EOF.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError(ErrnoMessage("seek failed in", path));
  }
  const uint64_t file_size = static_cast<uint64_t>(std::ftell(f));
  uint64_t offset = 0;
  while (offset < file_size) {
    SeriesRecord rec;
    uint64_t next = 0;
    TSQ_RETURN_IF_ERROR(rel->ReadRecordAt(offset, &rec, &next));
    if (rec.id != rel->offsets_.size()) {
      return Status::Corruption("non-dense record id " +
                                std::to_string(rec.id) + " at offset " +
                                std::to_string(offset));
    }
    rel->offsets_.push_back(offset);
    offset = next;
  }
  rel->end_offset_ = offset;
  rel->ResetStats();  // directory rebuild I/O is not query work
  return rel;
}

Result<SeriesId> Relation::Append(const std::string& name,
                                  const RealVec& values,
                                  const ComplexVec& dft) {
  std::lock_guard<std::mutex> lock(mutex_);
  const SeriesId id = offsets_.size();

  serde::Buffer payload;
  serde::PutU64(&payload, id);
  serde::PutString(&payload, name);
  serde::PutRealVec(&payload, values);
  serde::PutComplexVec(&payload, dft);

  serde::Buffer record;
  serde::PutU32(&record, kRecordMagic);
  serde::PutU32(&record, serde::Crc32(payload));
  serde::PutU64(&record, payload.size());
  record.insert(record.end(), payload.begin(), payload.end());

  if (std::fseek(file_, static_cast<long>(end_offset_), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed in", path_));
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IOError(ErrnoMessage("append failed in", path_));
  }
  // Drain the stdio buffer so the record is visible to concurrent pread
  // readers the moment the id is published.
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("fflush failed for", path_));
  }
  stats_.bytes_written += record.size();
  offsets_.push_back(end_offset_);
  end_offset_ += record.size();
  return id;
}

Status Relation::ReadRecordAt(uint64_t offset, SeriesRecord* out,
                              uint64_t* next_offset) const {
  const int fd = fileno(file_);
  uint8_t header[kRecordHeaderBytes];
  if (!PreadExact(fd, header, sizeof(header), offset)) {
    return Status::Corruption("record header truncated at offset " +
                              std::to_string(offset));
  }
  serde::Reader header_reader(header, sizeof(header));
  uint32_t magic = 0;
  uint32_t crc = 0;
  uint64_t payload_len = 0;
  TSQ_RETURN_IF_ERROR(header_reader.GetU32(&magic));
  TSQ_RETURN_IF_ERROR(header_reader.GetU32(&crc));
  TSQ_RETURN_IF_ERROR(header_reader.GetU64(&payload_len));
  if (magic != kRecordMagic) {
    return Status::Corruption("bad record magic at offset " +
                              std::to_string(offset));
  }
  if (payload_len > (1ull << 32)) {
    return Status::Corruption("implausible record length " +
                              std::to_string(payload_len));
  }

  serde::Buffer payload(payload_len);
  if (payload_len > 0 &&
      !PreadExact(fd, payload.data(), payload_len,
                  offset + kRecordHeaderBytes)) {
    return Status::Corruption("record payload truncated at offset " +
                              std::to_string(offset));
  }
  if (serde::Crc32(payload) != crc) {
    return Status::Corruption("record checksum mismatch at offset " +
                              std::to_string(offset));
  }

  serde::Reader reader(payload);
  uint64_t id = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU64(&id));
  out->id = id;
  TSQ_RETURN_IF_ERROR(reader.GetString(&out->name));
  TSQ_RETURN_IF_ERROR(reader.GetRealVec(&out->values));
  TSQ_RETURN_IF_ERROR(reader.GetComplexVec(&out->dft));

  stats_.records_read += 1;
  stats_.bytes_read += kRecordHeaderBytes + payload_len;
  if (next_offset != nullptr) {
    *next_offset = offset + kRecordHeaderBytes + payload_len;
  }
  return Status::OK();
}

Result<SeriesRecord> Relation::Get(SeriesId id) const {
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= offsets_.size()) {
      return Status::NotFound("no record with id " + std::to_string(id));
    }
    offset = offsets_[id];
  }
  SeriesRecord rec;
  TSQ_RETURN_IF_ERROR(ReadRecordAt(offset, &rec, nullptr));
  return rec;
}

Status Relation::Scan(
    const std::function<bool(const SeriesRecord&)>& fn) const {
  // Snapshot the directory once; records are immutable after append, so
  // the scan sees a consistent prefix even with a concurrent appender.
  std::vector<uint64_t> offsets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    offsets = offsets_;
  }
  for (uint64_t id = 0; id < offsets.size(); ++id) {
    SeriesRecord rec;
    TSQ_RETURN_IF_ERROR(ReadRecordAt(offsets[id], &rec, nullptr));
    if (!fn(rec)) break;
  }
  return Status::OK();
}

Status Relation::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("fflush failed for", path_));
  }
  return Status::OK();
}

}  // namespace tsq
