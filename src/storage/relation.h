// Copyright (c) 2026 The tsq Authors.
//
// The sequence relation: a segmented heap store of full time-series
// records. The paper assumes "relations are unary — simply sets of
// sequences" (Sec. 3); tsq stores, per record, the series name, the
// time-domain samples, and the frequency-domain coefficients. The
// frequency-domain copy exists because the paper's tuned sequential-scan
// baseline scans coefficients ("we do the sequential scanning on the
// relation that stores the series in the frequency domain", Sec. 5) and
// because postprocessing verifies true Euclidean distances (Parseval makes
// either domain usable).

#ifndef TSQ_STORAGE_RELATION_H_
#define TSQ_STORAGE_RELATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dft/complex_vec.h"
#include "series/time_series.h"
#include "storage/serde.h"

namespace tsq {

/// One stored sequence with both representations.
struct SeriesRecord {
  SeriesId id = kInvalidSeriesId;
  std::string name;
  RealVec values;   ///< time domain
  ComplexVec dft;   ///< frequency domain (unitary convention)
};

/// Scan counters for the sequential-scan baselines. Relaxed atomics so
/// concurrent readers can snapshot them race-free; copies by value like a
/// plain aggregate. Reset() stores each counter individually (relaxed) so
/// a reset racing concurrent scanners is an ordinary atomic store per
/// field, never a whole-struct reassignment.
struct RelationStats {
  std::atomic<uint64_t> records_read{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  RelationStats() = default;
  RelationStats(const RelationStats& other) { *this = other; }
  RelationStats& operator=(const RelationStats& other) {
    records_read = other.records_read.load(std::memory_order_relaxed);
    bytes_read = other.bytes_read.load(std::memory_order_relaxed);
    bytes_written = other.bytes_written.load(std::memory_order_relaxed);
    return *this;
  }

  void Reset() {
    records_read.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
  }
};

namespace internal {

/// Lock-free append-only map id -> packed (segment, offset). Entries live
/// in fixed-size chunks that never move once allocated, so readers index
/// without any lock; a chunk pointer is published with a release store and
/// an entry with a release store after its record bytes are durable in the
/// page cache. kEmpty marks a slot whose record has not been published.
class RecordDirectory {
 public:
  static constexpr uint64_t kEmpty = ~0ull;
  static constexpr size_t kChunkBits = 13;  // 8192 entries per chunk
  static constexpr size_t kChunkSize = 1ull << kChunkBits;
  static constexpr size_t kMaxChunks = 1ull << 16;  // ~536M records

  RecordDirectory();
  ~RecordDirectory();
  RecordDirectory(const RecordDirectory&) = delete;
  RecordDirectory& operator=(const RecordDirectory&) = delete;

  /// Publishes the entry for `id` (release). Fails only when `id` exceeds
  /// the directory capacity or a chunk allocation fails.
  Status Publish(uint64_t id, uint64_t packed);

  /// The published entry for `id`, or kEmpty when nothing was published
  /// there (acquire).
  uint64_t Load(uint64_t id) const;

 private:
  struct Chunk {
    std::atomic<uint64_t> entries[kChunkSize];
  };

  std::unique_ptr<std::atomic<Chunk*>[]> chunks_;
  std::mutex grow_mutex_;  // serializes chunk allocation only
};

}  // namespace internal

/// Append-only store of SeriesRecords addressed by dense SeriesId
/// (0..size()-1), spread over `num_segments` segment files
/// `<path>.0 .. <path>.N-1`. Records are CRC-checked on read. A record's
/// segment is fixed by its id (`id % num_segments`), and within a segment
/// records are laid out in id order, so every segment file's bytes are a
/// pure function of the record sequence — independent of which threads
/// appended, at any concurrency.
///
/// Concurrency contract (v2 — the write half of the system contract):
///
/// * Readers never block on ingest. Get and Scan are safe from any number
///   of threads, concurrently with each other and with any number of
///   appenders: reads use positioned pread(2) (no shared file position),
///   the id -> (segment, offset) directory is a lock-free chunked array
///   published entry-by-entry with release stores, and size() is a dense
///   watermark — every id below it is fully written and flushed. No read
///   path takes a mutex.
/// * Many concurrent appenders, one active writer per segment. Append may
///   be called from any number of threads at once; each call reserves the
///   next dense id, then appends under its segment's mutex. Batch ingest
///   pre-reserves an id range with ReserveIds and appends each id with
///   AppendWithId; appends to one segment are admitted strictly in id
///   order (a per-segment turnstile), which is what makes the on-disk
///   bytes deterministic. Every reserved id must eventually be appended —
///   an abandoned reservation stalls the watermark and any later appender
///   of the same segment.
/// * Each append flushes the stdio buffer before publishing its directory
///   entry, so a record is visible to pread readers the moment its id is.
///   Flush() pushes buffered bytes to the OS; Sync() additionally
///   fdatasyncs every segment — the durability barrier group commit and
///   explicit database flushes sit on.
/// * A failed append write poisons the relation: all current and future
///   appenders (including ones blocked on their segment turn) return the
///   error, and size() freezes at the last dense prefix. Already-published
///   records stay readable throughout. The poison is repairable: Repair()
///   re-runs the Open-time recovery walk over the live segment files,
///   rewinds to the largest dense id prefix, and clears the poison so
///   appends can resume — callers must retire any ids reserved but not
///   appended before the fault (they are re-issued after the rewind).
/// * Appends traverse the `relation_append` failpoint and Sync the
///   `relation_sync` failpoint (common/failpoint.h), so every disk-full /
///   short-write / crash-mid-append behavior is testable on demand.
/// * Open recovers all segments in parallel. A torn tail record (truncated
///   header/payload, or a CRC mismatch on a segment's last record — the
///   crash-mid-append signatures) is dropped and the segment truncated to
///   its last whole record; mid-file corruption is still an error. After
///   the per-segment walks, the largest dense id prefix is kept and any
///   fully-written record above it (a sibling segment lost an earlier id)
///   is truncated away too, so reopen always yields ids 0..size()-1 with
///   no holes.
class Relation {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Relation);
  ~Relation();

  /// Maximum segment files per relation (the directory packs the segment
  /// index into 16 bits).
  static constexpr size_t kMaxSegments = 1ull << 16;

  /// Creates a new (empty) relation at `path` with `num_segments` segment
  /// files `<path>.0 .. <path>.N-1`, truncating existing ones (stale
  /// higher-numbered segment files from a previous, wider relation are
  /// removed).
  static Result<std::unique_ptr<Relation>> Create(const std::string& path,
                                                  size_t num_segments = 1);

  /// Opens an existing relation, discovering its segment files and
  /// rebuilding the record directory by one recovery pass per segment,
  /// run in parallel. See the class contract for torn-tail handling.
  static Result<std::unique_ptr<Relation>> Open(const std::string& path);

  /// Appends a record; returns its assigned id (dense, starting at 0).
  /// Safe from any number of threads at once.
  Result<SeriesId> Append(const std::string& name, const RealVec& values,
                          const ComplexVec& dft);

  /// Reserves `count` consecutive ids and returns the first. The caller
  /// must append every reserved id via AppendWithId; ids mapping to the
  /// same segment must be appended in ascending order from one thread
  /// (other threads' reservations interleave safely — the segment
  /// turnstile orders them globally).
  Result<SeriesId> ReserveIds(uint64_t count);

  /// Appends the record for a previously reserved id. Blocks until every
  /// lower reserved id of the same segment has been appended.
  Status AppendWithId(SeriesId id, const std::string& name,
                      const RealVec& values, const ComplexVec& dft);

  /// Reads one record by id. Safe under concurrent readers and
  /// appenders. Serves every fully appended record — including one whose
  /// id is still above size() because a lower reserved id is mid-append —
  /// so an index that learned an id from its completed append can always
  /// resolve it; NotFound only for ids never (or not yet) appended.
  Result<SeriesRecord> Get(SeriesId id) const;

  /// Full scan in id order; the callback returns false to stop early.
  /// Safe under concurrent readers and appenders (sees the dense prefix
  /// at call time).
  Status Scan(const std::function<bool(const SeriesRecord&)>& fn) const;

  /// Scans one segment's records in id order (ids segment, segment+N,
  /// ...), visiting only ids below `limit_id` and below the current dense
  /// watermark. The per-segment half of a parallel full scan: the N
  /// segment scans together visit exactly the ids a Scan would.
  Status ScanSegment(size_t segment, uint64_t limit_id,
                     const std::function<bool(const SeriesRecord&)>& fn) const;

  /// Number of records in the dense prefix: every id below this is fully
  /// written, flushed and readable.
  uint64_t size() const { return visible_.load(std::memory_order_acquire); }

  /// Number of segment files.
  size_t num_segments() const { return segments_.size(); }

  /// Path of one segment file (for white-box tests and tools).
  std::string SegmentPath(size_t segment) const;

  /// Flushes buffered writes to the OS.
  Status Flush();

  /// Flush() plus fdatasync(2) of every segment: on return every record
  /// below size() has reached stable storage.
  Status Sync();

  /// True once a write fault poisoned the relation (appends fail until
  /// Repair()).
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Recovers from a write fault in place: re-walks every segment file
  /// (the same walk Open performs), truncates torn or above-prefix
  /// records, rewinds the id counters to the largest dense prefix, clears
  /// directory entries above it, and lifts the poison. Requires no
  /// concurrent appenders (blocked ones have already returned the poison
  /// error); readers may continue throughout. Fails — and stays poisoned
  /// — while the underlying fault persists.
  Status Repair();

  /// Scan counters.
  const RelationStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  /// One segment file plus its append turnstile.
  struct Segment {
    std::FILE* file = nullptr;
    int fd = -1;
    std::string path;
    std::mutex mutex;                  // guards file writes + fields below
    std::condition_variable turn_cv;   // next_id advanced or poisoned
    uint64_t next_id = 0;              // next id this segment admits
    uint64_t end_offset = 0;           // append position
  };

  explicit Relation(std::string path);

  Status ReadRecordAt(const Segment& seg, uint64_t offset,
                      SeriesRecord* out) const;

  /// Advances the dense watermark over every contiguously published entry.
  void AdvanceVisible();

  /// Marks the relation failed, wakes every blocked appender.
  void Poison(const Status& status);
  Status poison_status() const;

  std::string path_;
  std::vector<std::unique_ptr<Segment>> segments_;
  internal::RecordDirectory directory_;
  std::atomic<uint64_t> next_id_{0};   // reservation counter
  std::atomic<uint64_t> visible_{0};   // dense published watermark
  std::atomic<bool> poisoned_{false};
  mutable std::mutex poison_mutex_;    // guards poison_status_
  Status poison_status_;
  mutable RelationStats stats_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_RELATION_H_
