// Copyright (c) 2026 The tsq Authors.
//
// The sequence relation: a heap file of full time-series records. The paper
// assumes "relations are unary — simply sets of sequences" (Sec. 3); tsq
// stores, per record, the series name, the time-domain samples, and the
// frequency-domain coefficients. The frequency-domain copy exists because
// the paper's tuned sequential-scan baseline scans coefficients ("we do the
// sequential scanning on the relation that stores the series in the
// frequency domain", Sec. 5) and because postprocessing verifies true
// Euclidean distances (Parseval makes either domain usable).

#ifndef TSQ_STORAGE_RELATION_H_
#define TSQ_STORAGE_RELATION_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "dft/complex_vec.h"
#include "series/time_series.h"
#include "storage/serde.h"

namespace tsq {

/// One stored sequence with both representations.
struct SeriesRecord {
  SeriesId id = kInvalidSeriesId;
  std::string name;
  RealVec values;   ///< time domain
  ComplexVec dft;   ///< frequency domain (unitary convention)
};

/// Scan counters for the sequential-scan baselines. Relaxed atomics so
/// concurrent readers can snapshot them race-free; copies by value like a
/// plain aggregate.
struct RelationStats {
  std::atomic<uint64_t> records_read{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  RelationStats() = default;
  RelationStats(const RelationStats& other) { *this = other; }
  RelationStats& operator=(const RelationStats& other) {
    records_read = other.records_read.load(std::memory_order_relaxed);
    bytes_read = other.bytes_read.load(std::memory_order_relaxed);
    bytes_written = other.bytes_written.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Append-only heap file of SeriesRecords, addressed by dense SeriesId
/// (0..size-1). Records are CRC-checked on read.
///
/// Concurrency contract (v1): Get and Scan are safe from any number of
/// threads, concurrently with each other and with a single appender —
/// reads use positioned pread(2) on the file descriptor (no shared file
/// position, no lock on the data path) and the record directory is only
/// ever appended to under the internal mutex. Append itself must not be
/// called from two threads at once. Each Append flushes the stdio buffer
/// so the freshly written record is immediately visible to pread readers.
class Relation {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Relation);
  ~Relation();

  /// Creates a new (empty) relation file, truncating `path`.
  static Result<std::unique_ptr<Relation>> Create(const std::string& path);

  /// Opens an existing relation file, rebuilding the record directory by a
  /// sequential pass over the log.
  static Result<std::unique_ptr<Relation>> Open(const std::string& path);

  /// Appends a record; returns its assigned id (dense, starting at 0).
  Result<SeriesId> Append(const std::string& name, const RealVec& values,
                          const ComplexVec& dft);

  /// Reads one record by id. Safe under concurrent readers.
  Result<SeriesRecord> Get(SeriesId id) const;

  /// Full scan in id order; the callback returns false to stop early.
  /// Safe under concurrent readers.
  Status Scan(const std::function<bool(const SeriesRecord&)>& fn) const;

  /// Number of records.
  uint64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return offsets_.size();
  }

  /// Flushes buffered writes to the OS.
  Status Flush();

  /// Scan counters.
  const RelationStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RelationStats(); }

 private:
  Relation(std::FILE* file, std::string path);

  Status ReadRecordAt(uint64_t offset, SeriesRecord* out,
                      uint64_t* next_offset) const;

  std::FILE* file_;
  std::string path_;
  mutable std::mutex mutex_;       // guards offsets_/end_offset_/file writes
  std::vector<uint64_t> offsets_;  // id -> byte offset of the record
  uint64_t end_offset_ = 0;        // append position
  mutable RelationStats stats_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_RELATION_H_
