// Copyright (c) 2026 The tsq Authors.

#include "storage/serde.h"

#include <bit>
#include <cstring>

namespace tsq {
namespace serde {

namespace {

// Fixed-width little-endian primitives. On big-endian hosts the bytes are
// swapped explicitly, so files written on any platform read on any other.
template <typename T>
void PutFixed(Buffer* buf, T v) {
  static_assert(std::is_unsigned_v<T>);
  uint8_t bytes[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  buf->insert(buf->end(), bytes, bytes + sizeof(T));
}

template <typename T>
T GetFixed(const uint8_t* p) {
  static_assert(std::is_unsigned_v<T>);
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void PutU32(Buffer* buf, uint32_t v) { PutFixed(buf, v); }
void PutU64(Buffer* buf, uint64_t v) { PutFixed(buf, v); }

void PutDouble(Buffer* buf, double v) {
  PutFixed(buf, std::bit_cast<uint64_t>(v));
}

void PutString(Buffer* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->insert(buf->end(), s.begin(), s.end());
}

void PutRealVec(Buffer* buf, const RealVec& v) {
  PutU64(buf, v.size());
  for (double d : v) PutDouble(buf, d);
}

void PutComplexVec(Buffer* buf, const ComplexVec& v) {
  PutU64(buf, v.size());
  for (const Complex& c : v) {
    PutDouble(buf, c.real());
    PutDouble(buf, c.imag());
  }
}

Status Reader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::Corruption("record truncated: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  return Status::OK();
}

Status Reader::GetU32(uint32_t* out) {
  TSQ_RETURN_IF_ERROR(Need(4));
  *out = GetFixed<uint32_t>(data_ + pos_);
  pos_ += 4;
  return Status::OK();
}

Status Reader::GetU64(uint64_t* out) {
  TSQ_RETURN_IF_ERROR(Need(8));
  *out = GetFixed<uint64_t>(data_ + pos_);
  pos_ += 8;
  return Status::OK();
}

Status Reader::GetDouble(double* out) {
  uint64_t bits = 0;
  TSQ_RETURN_IF_ERROR(GetU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::OK();
}

Status Reader::GetString(std::string* out) {
  uint32_t len = 0;
  TSQ_RETURN_IF_ERROR(GetU32(&len));
  TSQ_RETURN_IF_ERROR(Need(len));
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status Reader::GetRealVec(RealVec* out) {
  uint64_t n = 0;
  TSQ_RETURN_IF_ERROR(GetU64(&n));
  // Divide instead of multiplying: an attacker-controlled n (the server
  // feeds this decoder raw network bytes) could overflow n * 8 into a
  // small value and sail past the bounds check into a huge resize.
  if (n > remaining() / 8) {
    return Status::Corruption("vector length " + std::to_string(n) +
                              " exceeds remaining " +
                              std::to_string(remaining()) + " bytes");
  }
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    TSQ_RETURN_IF_ERROR(GetDouble(&(*out)[i]));
  }
  return Status::OK();
}

Status Reader::GetComplexVec(ComplexVec* out) {
  uint64_t n = 0;
  TSQ_RETURN_IF_ERROR(GetU64(&n));
  if (n > remaining() / 16) {
    return Status::Corruption("complex vector length " + std::to_string(n) +
                              " exceeds remaining " +
                              std::to_string(remaining()) + " bytes");
  }
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    double re = 0.0;
    double im = 0.0;
    TSQ_RETURN_IF_ERROR(GetDouble(&re));
    TSQ_RETURN_IF_ERROR(GetDouble(&im));
    (*out)[i] = Complex(re, im);
  }
  return Status::OK();
}

namespace {

// Lazily built table for the reflected CRC-32 polynomial 0xEDB88320.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const Crc32Table table;
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const Buffer& buf) { return Crc32(buf.data(), buf.size()); }

}  // namespace serde
}  // namespace tsq
