// Copyright (c) 2026 The tsq Authors.

#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>

namespace tsq {

namespace {

thread_local ThreadPoolCounters tls_pool_counters;

ThreadPoolCounters& MutableThreadPoolCounters() { return tls_pool_counters; }

/// One shard per ~8 frames keeps tiny pools (unit tests, micro benches)
/// on the exact single-LRU semantics of the unsharded pool while large
/// pools fan out; 16 shards saturate the mutex throughput long before the
/// thread counts tsq targets.
constexpr size_t kFramesPerAutoShard = 8;
constexpr size_t kMaxAutoShards = 16;

/// A shard can be transiently out of frames when more threads hold pins
/// into it than it owns frames (pins are short — a LoadNode deserialize —
/// so the state clears in microseconds). Fetch/New yield and retry this
/// many times before reporting exhaustion, so only a *persistent*
/// all-pinned shard (a caller holding pins forever) surfaces as an error.
constexpr int kAcquireRetries = 1024;

size_t ResolveShardCount(size_t capacity, size_t shards) {
  if (shards == 0) {
    shards = std::min(kMaxAutoShards,
                      std::max<size_t>(1, capacity / kFramesPerAutoShard));
  }
  return std::clamp<size_t>(shards, 1, capacity);
}

}  // namespace

const ThreadPoolCounters& ThisThreadPoolCounters() {
  return tls_pool_counters;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page* PageHandle::page() {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &pool_->shards_[shard_]->frames[frame_].page;
}

const Page* PageHandle::page() const {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &pool_->shards_[shard_]->frames[frame_].page;
}

void PageHandle::MarkDirty() {
  TSQ_CHECK_MSG(valid(), "MarkDirty on an invalid PageHandle");
  pool_->MarkDirty(shard_, frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t shards)
    : file_(file), capacity_(capacity) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_MSG(capacity >= 1, "buffer pool needs at least one frame");
  const size_t n = ResolveShardCount(capacity, shards);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    const size_t frames = capacity / n + (s < capacity % n ? 1 : 0);
    shard->frames.resize(frames);
    shard->free_frames.reserve(frames);
    for (size_t i = frames; i > 0; --i) shard->free_frames.push_back(i - 1);
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors at teardown have no one to report to.
  FlushAll().ok();
}

void BufferPool::TouchLru(Shard* shard, size_t frame_idx) {
  Frame& f = shard->frames[frame_idx];
  if (f.in_lru) {
    shard->lru.erase(f.lru_pos);
    f.in_lru = false;
  }
}

void BufferPool::Unpin(size_t shard_idx, size_t frame_idx) {
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mutex);
  Frame& f = shard.frames[frame_idx];
  TSQ_CHECK_MSG(f.pins > 0, "unpin of an unpinned frame");
  if (--f.pins == 0) {
    f.lru_pos = shard.lru.insert(shard.lru.end(), frame_idx);
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t shard_idx, size_t frame_idx) {
  Shard& shard = *shards_[shard_idx];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.frames[frame_idx].dirty = true;
}

Result<size_t> BufferPool::AcquireFrame(Shard* shard) {
  if (!shard->free_frames.empty()) {
    const size_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    return idx;
  }
  if (shard->lru.empty()) {
    return Status::FailedPrecondition(
        "buffer pool shard exhausted: all frames pinned");
  }
  const size_t idx = shard->lru.front();
  shard->lru.pop_front();
  Frame& f = shard->frames[idx];
  f.in_lru = false;
  if (f.dirty) {
    TSQ_RETURN_IF_ERROR(file_->Write(f.id, f.page));
    ++shard->stats.disk_writes;
    ++MutableThreadPoolCounters().disk_writes;
    f.dirty = false;
  }
  shard->page_to_frame.erase(f.id);
  ++shard->stats.evictions;
  return idx;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  const size_t shard_idx = ShardIndex(id);
  Shard& shard = *shards_[shard_idx];
  bool counted_miss = false;
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.page_to_frame.find(id);
      if (it != shard.page_to_frame.end()) {
        // A concurrent fetch may have cached the page between retries;
        // the first failed attempt already counted this call as a miss.
        if (!counted_miss) {
          ++shard.stats.hits;
          ++MutableThreadPoolCounters().hits;
        }
        const size_t idx = it->second;
        Frame& f = shard.frames[idx];
        TouchLru(&shard, idx);
        ++f.pins;
        return PageHandle(this, id, shard_idx, idx);
      }
      if (!counted_miss) {
        ++shard.stats.misses;
        ++MutableThreadPoolCounters().misses;
        counted_miss = true;
      }
      Result<size_t> idx_or = AcquireFrame(&shard);
      if (idx_or.ok()) {
        const size_t idx = idx_or.value();
        Frame& f = shard.frames[idx];
        if (Status rs = file_->Read(id, &f.page); !rs.ok()) {
          shard.free_frames.push_back(idx);  // return it; nothing cached
          return rs;
        }
        ++shard.stats.disk_reads;
        ++MutableThreadPoolCounters().disk_reads;
        f.id = id;
        f.pins = 1;
        f.dirty = false;
        shard.page_to_frame[id] = idx;
        return PageHandle(this, id, shard_idx, idx);
      }
      if (!idx_or.status().IsFailedPrecondition() ||
          attempt >= kAcquireRetries) {
        return idx_or.status();  // I/O errors don't retry, only exhaustion
      }
    }
    std::this_thread::yield();  // transient: wait for a pin to release
  }
}

Result<PageHandle> BufferPool::New() {
  TSQ_ASSIGN_OR_RETURN(const PageId id, file_->Allocate());
  const size_t shard_idx = ShardIndex(id);
  Shard& shard = *shards_[shard_idx];
  for (int attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      Result<size_t> idx_or = AcquireFrame(&shard);
      if (idx_or.ok()) {
        const size_t idx = idx_or.value();
        Frame& f = shard.frames[idx];
        if (f.page.size() != file_->page_size()) {
          f.page = Page(file_->page_size());
        } else {
          f.page.Clear();
        }
        f.id = id;
        f.pins = 1;
        f.dirty = true;
        shard.page_to_frame[id] = idx;
        return PageHandle(this, id, shard_idx, idx);
      }
      if (!idx_or.status().IsFailedPrecondition() ||
          attempt >= kAcquireRetries) {
        // Give the page back to the file's free list — otherwise a caller
        // retrying against an exhausted shard would grow the file with
        // orphaned pages.
        file_->Free(id).ok();
        return idx_or.status();
      }
    }
    std::this_thread::yield();  // transient: wait for a pin to release
  }
}

Status BufferPool::Delete(PageId id) {
  Shard& shard = *shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.page_to_frame.find(id);
  if (it != shard.page_to_frame.end()) {
    Frame& f = shard.frames[it->second];
    if (f.pins > 0) {
      return Status::FailedPrecondition("Delete of a pinned page " +
                                        std::to_string(id));
    }
    TouchLru(&shard, it->second);
    f.dirty = false;
    shard.free_frames.push_back(it->second);
    shard.page_to_frame.erase(it);
  }
  return file_->Free(id);
}

Status BufferPool::FlushAll() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (Frame& f : shard.frames) {
      if (f.id != kInvalidPageId && f.dirty) {
        TSQ_RETURN_IF_ERROR(file_->Write(f.id, f.page));
        ++shard.stats.disk_writes;
        ++MutableThreadPoolCounters().disk_writes;
        f.dirty = false;
      }
    }
  }
  return file_->Sync();
}

BufferPoolStats BufferPool::stats() const {
  uint64_t hits = 0, misses = 0, evictions = 0, reads = 0, writes = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    hits += shard->stats.hits.load(std::memory_order_relaxed);
    misses += shard->stats.misses.load(std::memory_order_relaxed);
    evictions += shard->stats.evictions.load(std::memory_order_relaxed);
    reads += shard->stats.disk_reads.load(std::memory_order_relaxed);
    writes += shard->stats.disk_writes.load(std::memory_order_relaxed);
  }
  BufferPoolStats out;
  out.hits = hits;
  out.misses = misses;
  out.evictions = evictions;
  out.disk_reads = reads;
  out.disk_writes = writes;
  return out;
}

void BufferPool::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stats = BufferPoolStats();
  }
  file_->ResetStats();
}

}  // namespace tsq
