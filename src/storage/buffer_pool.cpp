// Copyright (c) 2026 The tsq Authors.

#include "storage/buffer_pool.h"

namespace tsq {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

Page* PageHandle::page() {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &pool_->frames_[frame_].page;
}

const Page* PageHandle::page() const {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &pool_->frames_[frame_].page;
}

void PageHandle::MarkDirty() {
  TSQ_CHECK_MSG(valid(), "MarkDirty on an invalid PageHandle");
  pool_->MarkDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_MSG(capacity >= 1, "buffer pool needs at least one frame");
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors at teardown have no one to report to.
  FlushAll().ok();
}

void BufferPool::TouchLru(size_t frame_idx) {
  Frame& f = frames_[frame_idx];
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
}

void BufferPool::Unpin(size_t frame_idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& f = frames_[frame_idx];
  TSQ_CHECK_MSG(f.pins > 0, "unpin of an unpinned frame");
  if (--f.pins == 0) {
    f.lru_pos = lru_.insert(lru_.end(), frame_idx);
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame_idx) {
  std::lock_guard<std::mutex> lock(mutex_);
  frames_[frame_idx].dirty = true;
}

Result<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  const size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    TSQ_RETURN_IF_ERROR(file_->Write(f.id, f.page));
    ++stats_.disk_writes;
    f.dirty = false;
  }
  page_to_frame_.erase(f.id);
  ++stats_.evictions;
  return idx;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++stats_.hits;
    const size_t idx = it->second;
    Frame& f = frames_[idx];
    TouchLru(idx);
    ++f.pins;
    return PageHandle(this, id, idx);
  }
  ++stats_.misses;
  TSQ_ASSIGN_OR_RETURN(const size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  if (Status rs = file_->Read(id, &f.page); !rs.ok()) {
    free_frames_.push_back(idx);  // return the frame; nothing was cached
    return rs;
  }
  ++stats_.disk_reads;
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  page_to_frame_[id] = idx;
  return PageHandle(this, id, idx);
}

Result<PageHandle> BufferPool::New() {
  std::lock_guard<std::mutex> lock(mutex_);
  TSQ_ASSIGN_OR_RETURN(const PageId id, file_->Allocate());
  TSQ_ASSIGN_OR_RETURN(const size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  if (f.page.size() != file_->page_size()) {
    f.page = Page(file_->page_size());
  } else {
    f.page.Clear();
  }
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  page_to_frame_[id] = idx;
  return PageHandle(this, id, idx);
}

Status BufferPool::Delete(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    if (f.pins > 0) {
      return Status::FailedPrecondition("Delete of a pinned page " +
                                        std::to_string(id));
    }
    TouchLru(it->second);
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_to_frame_.erase(it);
  }
  return file_->Free(id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Frame& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      TSQ_RETURN_IF_ERROR(file_->Write(f.id, f.page));
      ++stats_.disk_writes;
      f.dirty = false;
    }
  }
  return file_->Sync();
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = BufferPoolStats();
  file_->ResetStats();
}

}  // namespace tsq
