// Copyright (c) 2026 The tsq Authors.

#include "storage/buffer_pool.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "obs/trace.h"

namespace tsq {

namespace {

thread_local ThreadPoolCounters tls_pool_counters;

ThreadPoolCounters& MutableThreadPoolCounters() { return tls_pool_counters; }

/// One shard per ~8 frames keeps tiny pools (unit tests, micro benches)
/// on the exact single-clock semantics of the unsharded pool while large
/// pools fan out; 16 shards saturate the admin-path mutex long before the
/// thread counts tsq targets (hits never touch it at all).
constexpr size_t kFramesPerAutoShard = 8;
constexpr size_t kMaxAutoShards = 16;

/// A shard can be transiently out of frames when more threads hold pins
/// into it than it owns frames (pins are short — a LoadNode deserialize —
/// so the state clears in microseconds). Fetch/New retry over a bounded
/// window (yields, then 100us sleeps: roughly 0.4s in total) before
/// reporting exhaustion, so only a *persistent* all-pinned shard (a caller
/// holding pins forever) surfaces as an error.
constexpr int kAcquireRetries = 4096;
constexpr int kYieldsBeforeSleep = 64;

/// Bound on optimistic hit-path rounds before falling back to the mutex;
/// a round only fails when a concurrent pin/unpin/eviction races the CAS.
constexpr int kOptimisticSpins = 64;

/// Sentinel for an erased directory slot (never a valid page id: ids are
/// bounded by the file's page count).
constexpr PageId kDirTombstone = ~PageId{0};

bool IsOdd(uint64_t state) { return (state & BufferFrame::kVersionInc) != 0; }

void ExhaustionBackoff(int attempt) {
  if (attempt < kYieldsBeforeSleep) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// Slot hash for the in-shard directory. Deliberately *not* the splitmix64
/// fold ShardIndex uses: all ids of one shard share their value of
/// mix(id) % shards, so reusing that hash would cluster a shard's pages
/// onto a fraction of its slots. Fibonacci hashing on the raw id keeps
/// probe chains short instead.
size_t DirHash(PageId id, size_t mask) {
  return static_cast<size_t>((id * uint64_t{0x9E3779B97F4A7C15}) >> 17) & mask;
}

size_t ResolveShardCount(size_t capacity, size_t shards) {
  if (shards == 0) {
    shards = std::min(kMaxAutoShards,
                      std::max<size_t>(1, capacity / kFramesPerAutoShard));
  }
  return std::clamp<size_t>(shards, 1, capacity);
}

/// Waits for another thread's in-flight load (or transition) of `id` on
/// `frame` to settle: returns once the version is even again or the frame
/// has been repurposed for a different page. Futex-style: bounded spin,
/// then yield, then short sleeps — the loader publishes with a release
/// store the moment its pread returns.
void WaitForFrameTransition(const BufferFrame& frame, PageId id) {
  for (int i = 0;; ++i) {
    const uint64_t s = frame.state.load(std::memory_order_acquire);
    if (!IsOdd(s)) return;
    if (frame.id.load(std::memory_order_acquire) != id) return;
    if (i < kYieldsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

}  // namespace

const ThreadPoolCounters& ThisThreadPoolCounters() {
  return tls_pool_counters;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    frame_ = other.frame_;
    id_ = other.id_;
    other.frame_ = nullptr;
  }
  return *this;
}

Page* PageHandle::page() {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &frame_->page;
}

const Page* PageHandle::page() const {
  TSQ_CHECK_MSG(valid(), "access through an invalid PageHandle");
  return &frame_->page;
}

void PageHandle::MarkDirty() {
  TSQ_CHECK_MSG(valid(), "MarkDirty on an invalid PageHandle");
  frame_->dirty.store(true, std::memory_order_release);
}

void PageHandle::Release() {
  if (frame_ != nullptr) {
    // While pins > 0 the version is frozen, so a plain decrement cannot
    // race a transition; release ordering publishes any byte writes this
    // pin performed to the eventual evictor/flusher.
    frame_->state.fetch_sub(1, std::memory_order_release);
    frame_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t shards)
    : file_(file), capacity_(capacity) {
  TSQ_CHECK(file != nullptr);
  TSQ_CHECK_MSG(capacity >= 1, "buffer pool needs at least one frame");
  const size_t n = ResolveShardCount(capacity, shards);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    const size_t frames = capacity / n + (s < capacity % n ? 1 : 0);
    shard->frames = std::make_unique<BufferFrame[]>(frames);
    shard->num_frames = frames;
    shard->free_frames.reserve(frames);
    // Descending, so frame 0 is handed out first (FIFO fill order).
    for (size_t i = frames; i > 0; --i) shard->free_frames.push_back(i - 1);
    const size_t dir_size = std::bit_ceil(std::max<size_t>(8, 4 * frames));
    shard->dir = std::make_unique<DirSlot[]>(dir_size);
    shard->dir_mask = dir_size - 1;
    shard->dir_empty = dir_size;
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors at teardown have no one to report to.
  FlushAll().ok();
}

size_t BufferPool::DirLookup(const Shard& shard, PageId id) {
  const size_t mask = shard.dir_mask;
  size_t slot = DirHash(id, mask);
  for (size_t probe = 0; probe <= mask; ++probe, slot = (slot + 1) & mask) {
    const PageId sid = shard.dir[slot].id.load(std::memory_order_acquire);
    if (sid == id) {
      return shard.dir[slot].frame.load(std::memory_order_relaxed);
    }
    if (sid == kInvalidPageId) return kNoFrame;  // empty slot ends the chain
    // Tombstone or another id: keep probing.
  }
  return kNoFrame;
}

void BufferPool::DirInsert(Shard* shard, PageId id, size_t frame_idx) {
  // Erasures leave tombstones, and tombstones consume the empty slots that
  // terminate probe chains; rebuild from the frames before the table
  // degrades to full scans. The rebuild repopulates from frame ids, and
  // callers set the frame's id before inserting its mapping — so the entry
  // being inserted may already be present afterwards.
  if (shard->dir_empty * 4 < shard->dir_mask + 1) {
    DirRebuild(shard);
    if (DirLookup(*shard, id) == frame_idx) return;
  }
  const size_t mask = shard->dir_mask;
  size_t slot = DirHash(id, mask);
  for (;; slot = (slot + 1) & mask) {
    const PageId sid = shard->dir[slot].id.load(std::memory_order_relaxed);
    if (sid == kInvalidPageId || sid == kDirTombstone) {
      if (sid == kInvalidPageId) --shard->dir_empty;
      shard->dir[slot].frame.store(static_cast<uint32_t>(frame_idx),
                                   std::memory_order_relaxed);
      // Publishing the id last makes the slot visible to lock-free readers
      // only once the frame index is in place.
      shard->dir[slot].id.store(id, std::memory_order_release);
      return;
    }
  }
}

void BufferPool::DirErase(Shard* shard, PageId id) {
  const size_t mask = shard->dir_mask;
  size_t slot = DirHash(id, mask);
  for (size_t probe = 0; probe <= mask; ++probe, slot = (slot + 1) & mask) {
    const PageId sid = shard->dir[slot].id.load(std::memory_order_relaxed);
    if (sid == id) {
      shard->dir[slot].id.store(kDirTombstone, std::memory_order_release);
      return;
    }
    if (sid == kInvalidPageId) return;  // not present
  }
}

void BufferPool::DirRebuild(Shard* shard) {
  const size_t size = shard->dir_mask + 1;
  for (size_t i = 0; i < size; ++i) {
    shard->dir[i].id.store(kInvalidPageId, std::memory_order_release);
  }
  shard->dir_empty = size;
  // Every cached page — including ones mid-load, whose directory entry
  // waiters key off — is recorded on its frame; claimed-for-eviction
  // frames were erased and had their id replaced in the same critical
  // section, so frame ids are exactly the live mappings here.
  for (size_t i = 0; i < shard->num_frames; ++i) {
    const PageId id = shard->frames[i].id.load(std::memory_order_relaxed);
    if (id != kInvalidPageId) DirInsert(shard, id, i);
  }
}

Result<size_t> BufferPool::AcquireFrame(Shard* shard) {
  if (!shard->free_frames.empty()) {
    const size_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    BufferFrame& f = shard->frames[idx];
    uint64_t s = f.state.load(std::memory_order_relaxed);
    // A free frame has no directory entry, so no optimistic pinner can
    // reach it; the claim cannot be contended.
    const bool claimed = f.state.compare_exchange_strong(
        s, s + BufferFrame::kVersionInc, std::memory_order_acq_rel);
    TSQ_CHECK_MSG(claimed && !IsOdd(s) && (s & BufferFrame::kPinMask) == 0,
                  "free frame was pinned or in transition");
    return idx;
  }
  // Clock sweep. 3*n steps: one lap may only clear referenced bits and a
  // racing hit can re-protect a frame, so give the hand slack before
  // declaring the shard exhausted (the caller retries transients anyway).
  const size_t n = shard->num_frames;
  for (size_t step = 0; step < 3 * n; ++step) {
    const size_t idx = shard->clock_hand;
    shard->clock_hand = (shard->clock_hand + 1) % n;
    BufferFrame& f = shard->frames[idx];
    uint64_t s = f.state.load(std::memory_order_acquire);
    if (IsOdd(s) || (s & BufferFrame::kPinMask) != 0) continue;
    if (f.id.load(std::memory_order_relaxed) == kInvalidPageId) continue;
    if (f.referenced.exchange(false, std::memory_order_relaxed)) {
      continue;  // second chance
    }
    if (!f.state.compare_exchange_strong(s, s + BufferFrame::kVersionInc,
                                         std::memory_order_acq_rel)) {
      continue;  // lost to a concurrent pin
    }
    // Claimed: version is odd, optimistic pinners bounce off. Unmap the
    // old page before the write-back so the directory never points a new
    // mapping-taker at a frame being repurposed. Note fetchers of the old
    // page racing this do still wait out the write-back: one that read
    // the slot before the erase spins on the frame until the new id lands
    // (the id changes only after this function returns), and one arriving
    // after the erase queues on the shard mutex, held across the Write.
    const PageId old_id = f.id.load(std::memory_order_relaxed);
    DirErase(shard, old_id);
    if (f.dirty.load(std::memory_order_acquire)) {
      if (Status ws = file_->Write(old_id, f.page); !ws.ok()) {
        // Undo the claim: remap and return the frame to service.
        DirInsert(shard, old_id, idx);
        f.state.store(s, std::memory_order_release);
        return ws;
      }
      shard->stats.disk_writes.fetch_add(1, std::memory_order_relaxed);
      ++MutableThreadPoolCounters().disk_writes;
      f.dirty.store(false, std::memory_order_relaxed);
    }
    shard->stats.evictions.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }
  return Status::FailedPrecondition(
      "buffer pool shard exhausted: all frames pinned");
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  Shard& shard = *shards_[ShardIndex(id)];
  // A Fetch classifies itself exactly once — as a hit (we pinned a frame
  // someone had cached or finished loading) or a miss (we went to claim a
  // frame ourselves) — no matter how many optimistic retries or
  // exhaustion backoffs follow, so per-thread deltas stay exact.
  bool counted = false;
  int exhausted_attempts = 0;
  for (;;) {
    // ---- optimistic lock-free hit path ----
    const BufferFrame* wait_frame = nullptr;
    for (int spin = 0; spin < kOptimisticSpins; ++spin) {
      const size_t idx = DirLookup(shard, id);
      if (idx == kNoFrame) break;
      BufferFrame& f = shard.frames[idx];
      uint64_t s = f.state.load(std::memory_order_acquire);
      if (IsOdd(s)) {
        // In transition. If it is *our* page being loaded, wait on the
        // frame (not the mutex); anything else resolves via the slow path.
        if (f.id.load(std::memory_order_acquire) == id) wait_frame = &f;
        break;
      }
      if (f.id.load(std::memory_order_acquire) != id) break;  // stale slot
      if ((s & BufferFrame::kPinMask) == BufferFrame::kPinMask) break;
      // The CAS succeeding proves the version — and therefore the frame's
      // identity — did not change since the reads above.
      if (f.state.compare_exchange_weak(s, s + 1,
                                        std::memory_order_acq_rel)) {
        f.referenced.store(true, std::memory_order_relaxed);
        if (!counted) {
          shard.stats.hits.fetch_add(1, std::memory_order_relaxed);
          ++MutableThreadPoolCounters().hits;
        }
        return PageHandle(&f, id);
      }
      // Lost a pin/unpin/eviction race; re-resolve.
    }
    if (wait_frame != nullptr) {
      // The page appears to be materializing courtesy of another thread's
      // disk read. Classification is deferred to the outcome: if the load
      // completes, the optimistic pin above counts this fetch as a hit —
      // v2 accounting, where the waiter queued on the shard mutex and
      // found the page cached. If the odd frame was actually mid-eviction
      // of this page (or the load fails), the retry falls through to the
      // slow path and counts the miss it really is. Either way the stall
      // is I/O-shaped and charged to the query's pool-wait stage.
      obs::StageTimer wait_span(obs::Stage::kPoolWait);
      WaitForFrameTransition(*wait_frame, id);
      continue;
    }

    // ---- slow path: miss (or a stale/contended directory view) ----
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (DirLookup(shard, id) != kNoFrame) {
      // Raced with another fetcher who cached (or is loading) the page;
      // resolve it on the lock-free path.
      lock.unlock();
      continue;
    }
    if (!counted) {
      shard.stats.misses.fetch_add(1, std::memory_order_relaxed);
      ++MutableThreadPoolCounters().misses;
      counted = true;
    }
    Result<size_t> idx_or = AcquireFrame(&shard);
    if (!idx_or.ok()) {
      lock.unlock();
      if (!idx_or.status().IsFailedPrecondition() ||
          exhausted_attempts >= kAcquireRetries) {
        return idx_or.status();  // I/O errors don't retry, only exhaustion
      }
      ExhaustionBackoff(exhausted_attempts++);
      continue;
    }
    const size_t idx = idx_or.value();
    BufferFrame& f = shard.frames[idx];
    // Publish the in-progress load: odd version (from the claim), id set,
    // directory entry visible — then give the lock back. Same-shard
    // traffic flows during the read; fetchers of this page wait on `f`.
    f.id.store(id, std::memory_order_release);
    DirInsert(&shard, id, idx);
    lock.unlock();

    Status read_status;
    {
      // The miss I/O itself: charged to pool_wait so a descent that
      // faults pages reports tree CPU and disk stall separately.
      obs::StageTimer read_span(obs::Stage::kPoolWait);
      read_status = file_->Read(id, &f.page);
    }
    if (!read_status.ok()) {
      std::lock_guard<std::mutex> relock(shard.mutex);
      DirErase(&shard, id);
      f.id.store(kInvalidPageId, std::memory_order_release);
      const uint64_t s = f.state.load(std::memory_order_relaxed);
      f.state.store(s + BufferFrame::kVersionInc, std::memory_order_release);
      shard.free_frames.push_back(idx);
      return read_status;
    }
    shard.stats.disk_reads.fetch_add(1, std::memory_order_relaxed);
    ++MutableThreadPoolCounters().disk_reads;
    f.dirty.store(false, std::memory_order_relaxed);
    f.referenced.store(false, std::memory_order_relaxed);
    // Release-publish with our pin already counted; waiters' acquire loads
    // of `state` see the page bytes the pread wrote.
    const uint64_t s = f.state.load(std::memory_order_relaxed);
    f.state.store((s + BufferFrame::kVersionInc) | 1,
                  std::memory_order_release);
    return PageHandle(&f, id);
  }
}

Result<PageHandle> BufferPool::New() {
  TSQ_ASSIGN_OR_RETURN(const PageId id, file_->Allocate());
  Shard& shard = *shards_[ShardIndex(id)];
  int exhausted_attempts = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(shard.mutex);
    Result<size_t> idx_or = AcquireFrame(&shard);
    if (!idx_or.ok()) {
      lock.unlock();
      if (idx_or.status().IsFailedPrecondition() &&
          exhausted_attempts < kAcquireRetries) {
        ExhaustionBackoff(exhausted_attempts++);
        continue;
      }
      // Give the page back to the file's free list — otherwise a caller
      // retrying against an exhausted shard would grow the file with
      // orphaned pages.
      file_->Free(id).ok();
      return idx_or.status();
    }
    const size_t idx = idx_or.value();
    BufferFrame& f = shard.frames[idx];
    if (f.page.size() != file_->page_size()) {
      f.page = Page(file_->page_size());
    } else {
      f.page.Clear();
    }
    f.id.store(id, std::memory_order_release);
    f.dirty.store(true, std::memory_order_relaxed);
    f.referenced.store(false, std::memory_order_relaxed);
    DirInsert(&shard, id, idx);
    const uint64_t s = f.state.load(std::memory_order_relaxed);
    f.state.store((s + BufferFrame::kVersionInc) | 1,
                  std::memory_order_release);
    return PageHandle(&f, id);
  }
}

Status BufferPool::Delete(PageId id) {
  Shard& shard = *shards_[ShardIndex(id)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const size_t idx = DirLookup(shard, id);
    if (idx != kNoFrame) {
      BufferFrame& f = shard.frames[idx];
      uint64_t s = f.state.load(std::memory_order_acquire);
      if (IsOdd(s) || (s & BufferFrame::kPinMask) != 0 ||
          !f.state.compare_exchange_strong(s, s + BufferFrame::kVersionInc,
                                           std::memory_order_acq_rel)) {
        return Status::FailedPrecondition("Delete of a pinned page " +
                                          std::to_string(id));
      }
      DirErase(&shard, id);
      f.id.store(kInvalidPageId, std::memory_order_release);
      f.dirty.store(false, std::memory_order_relaxed);
      shard.free_frames.push_back(idx);
      f.state.store(s + 2 * BufferFrame::kVersionInc,
                    std::memory_order_release);
    }
  }
  return file_->Free(id);
}

Status BufferPool::FlushAll() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (size_t i = 0; i < shard.num_frames; ++i) {
      BufferFrame& f = shard.frames[i];
      // Odd frames are in-flight loads (clean by definition — eviction
      // write-back happens under this mutex, which we hold).
      if (IsOdd(f.state.load(std::memory_order_acquire))) continue;
      const PageId id = f.id.load(std::memory_order_acquire);
      if (id == kInvalidPageId) continue;
      // Clear-before-write: MarkDirty is lock-free, so a mark landing
      // during the Write must survive for the next flush/eviction — a
      // clear *after* the write would erase it and lose the update.
      if (!f.dirty.exchange(false, std::memory_order_acq_rel)) continue;
      if (Status ws = file_->Write(id, f.page); !ws.ok()) {
        f.dirty.store(true, std::memory_order_release);  // still unsynced
        return ws;
      }
      shard.stats.disk_writes.fetch_add(1, std::memory_order_relaxed);
      ++MutableThreadPoolCounters().disk_writes;
    }
  }
  return file_->Sync();
}

BufferPoolStats BufferPool::stats() const {
  uint64_t hits = 0, misses = 0, evictions = 0, reads = 0, writes = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    hits += shard->stats.hits.load(std::memory_order_relaxed);
    misses += shard->stats.misses.load(std::memory_order_relaxed);
    evictions += shard->stats.evictions.load(std::memory_order_relaxed);
    reads += shard->stats.disk_reads.load(std::memory_order_relaxed);
    writes += shard->stats.disk_writes.load(std::memory_order_relaxed);
  }
  BufferPoolStats out;
  out.hits = hits;
  out.misses = misses;
  out.evictions = evictions;
  out.disk_reads = reads;
  out.disk_writes = writes;
  return out;
}

void BufferPool::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stats = BufferPoolStats();
  }
  file_->ResetStats();
}

}  // namespace tsq
