// Copyright (c) 2026 The tsq Authors.
//
// Positioned POSIX I/O helpers shared by the storage layer (PageFile,
// Relation). Both read paths rely on pread/pwrite having no shared file
// position, which is what makes them safe from any number of threads.

#ifndef TSQ_STORAGE_IO_UTIL_H_
#define TSQ_STORAGE_IO_UTIL_H_

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace tsq {

/// Positioned read of exactly `count` bytes; retries partial reads and
/// EINTR. False on error or EOF before `count` bytes arrived.
inline bool PreadExact(int fd, void* buf, size_t count, uint64_t offset) {
  uint8_t* cursor = static_cast<uint8_t*>(buf);
  while (count > 0) {
    const ssize_t n = ::pread(fd, cursor, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before the range ended
    cursor += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

/// Positioned write of exactly `count` bytes; retries partial writes and
/// EINTR. False on error (including a zero-byte write for a non-empty
/// range, which would otherwise loop forever).
inline bool PwriteExact(int fd, const void* buf, size_t count,
                        uint64_t offset) {
  const uint8_t* cursor = static_cast<const uint8_t*>(buf);
  while (count > 0) {
    const ssize_t n = ::pwrite(fd, cursor, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    cursor += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace tsq

#endif  // TSQ_STORAGE_IO_UTIL_H_
