// Copyright (c) 2026 The tsq Authors.
//
// Positioned POSIX I/O helpers shared by the storage layer (PageFile,
// Relation). Both read paths rely on pread/pwrite having no shared file
// position, which is what makes them safe from any number of threads.
//
// Both helpers carry a failpoint (`io_pread` / `io_pwrite`, arg = file
// offset): the deepest injection sites in the stack, under every page
// and record I/O. See common/failpoint.h for the action grammar.

#ifndef TSQ_STORAGE_IO_UTIL_H_
#define TSQ_STORAGE_IO_UTIL_H_

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

#include "common/failpoint.h"

namespace tsq {

/// Positioned read of exactly `count` bytes; retries partial reads and
/// EINTR. False on error or EOF before `count` bytes arrived.
inline bool PreadExact(int fd, void* buf, size_t count, uint64_t offset) {
  static failpoint::Site* fp = failpoint::Register("io_pread");
  if (fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(fp, offset);
    if (d.fire()) {  // every fault action reads as a failed pread
      errno = d.error_errno != 0 ? d.error_errno : EIO;
      return false;
    }
  }
  uint8_t* cursor = static_cast<uint8_t*>(buf);
  while (count > 0) {
    const ssize_t n = ::pread(fd, cursor, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before the range ended
    cursor += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

/// Positioned write of exactly `count` bytes; retries partial writes and
/// EINTR. False on error (including a zero-byte write for a non-empty
/// range, which would otherwise loop forever).
inline bool PwriteExact(int fd, const void* buf, size_t count,
                        uint64_t offset) {
  const uint8_t* cursor = static_cast<const uint8_t*>(buf);
  static failpoint::Site* fp = failpoint::Register("io_pwrite");
  if (fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(fp, offset);
    if (d.fire()) {
      // Short and torn writes land a prefix of the payload first, so
      // the file is left in the partially-written state a real fault
      // (or crash mid-write) produces.
      const size_t prefix = d.bytes < count ? d.bytes : count;
      if ((d.kind == failpoint::ActionKind::kShortWrite ||
           d.kind == failpoint::ActionKind::kTornWrite) &&
          prefix > 0) {
        (void)!::pwrite(fd, cursor, prefix, static_cast<off_t>(offset));
      }
      if (d.kind == failpoint::ActionKind::kTornWrite) {
        failpoint::CrashProcess("io_pwrite");
      }
      errno = d.error_errno != 0 ? d.error_errno : EIO;
      return false;
    }
  }
  while (count > 0) {
    const ssize_t n = ::pwrite(fd, cursor, count, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    cursor += n;
    offset += static_cast<uint64_t>(n);
    count -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace tsq

#endif  // TSQ_STORAGE_IO_UTIL_H_
