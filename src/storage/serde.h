// Copyright (c) 2026 The tsq Authors.
//
// Binary record encoding for the storage layer: explicit little-endian
// fixed-width codecs (stable across platforms) plus CRC32 integrity
// checking. Decoders never trust their input bytes — since the tsqd wire
// protocol (src/server/protocol.h) reuses these codecs, input is not just
// "our own files" but raw network bytes from untrusted clients. Every
// read is bounds-checked against the remaining span (with overflow-proof
// length comparisons, so a hostile 2^61 element count cannot wrap the
// check) and returns Status::Corruption on malformed input; a zero-length
// vector or string decodes to an empty value, not an error.
//
// Write contract (v2). These codecs are what makes the segmented
// relation's crash story work: every record a segment file holds is
// framed as
//     u32 magic | u32 payload_crc | u64 payload_len | payload
// and appended with a single buffered write that is flushed before the
// record's id is published. Because the frame is length-prefixed and
// checksummed, recovery can walk a segment from the front and classify
// the first damaged record precisely — a truncated header/payload or a
// checksum mismatch on the segment's final record is a torn append (the
// crash-mid-write signature; the tail is dropped and truncated away),
// while the same damage mid-file is reported as Corruption. Encoders are
// pure functions of their input, so two appends of the same logical
// record produce identical bytes on any thread — the foundation of the
// relation's byte-identical-at-any-concurrency guarantee.

#ifndef TSQ_STORAGE_SERDE_H_
#define TSQ_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dft/complex_vec.h"

namespace tsq {
namespace serde {

/// Byte buffer used for encoding.
using Buffer = std::vector<uint8_t>;

/// Appends fixed-width little-endian values.
void PutU32(Buffer* buf, uint32_t v);
void PutU64(Buffer* buf, uint64_t v);
void PutDouble(Buffer* buf, double v);

/// Appends a length-prefixed (u32) byte string.
void PutString(Buffer* buf, const std::string& s);

/// Appends a length-prefixed (u64) vector of doubles.
void PutRealVec(Buffer* buf, const RealVec& v);

/// Appends a length-prefixed (u64) vector of complex doubles (re, im pairs).
void PutComplexVec(Buffer* buf, const ComplexVec& v);

/// Sequential decoder over a byte span. All Get* methods return
/// Status::Corruption when the remaining bytes are insufficient.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const Buffer& buf) : Reader(buf.data(), buf.size()) {}

  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);
  Status GetRealVec(RealVec* out);
  Status GetComplexVec(ComplexVec* out);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC-32 (polynomial 0xEDB88320, the zlib polynomial) over a byte span.
/// Used as the record integrity check in the heap file.
uint32_t Crc32(const uint8_t* data, size_t size);
uint32_t Crc32(const Buffer& buf);

}  // namespace serde
}  // namespace tsq

#endif  // TSQ_STORAGE_SERDE_H_
