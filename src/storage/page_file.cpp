// Copyright (c) 2026 The tsq Authors.

#include "storage/page_file.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "storage/io_util.h"

namespace tsq {

namespace {

// Header layout (all little-endian u64 at fixed offsets):
//   [0..8)   magic "TSQPGF01"
//   [8..16)  page size
//   [16..24) number of data pages
//   [24..32) free-list head page id
constexpr uint64_t kMagic = 0x3130464750515354ull;  // "TSQPGF01" LE
constexpr size_t kHeaderBytes = 32;

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

PageFile::PageFile(std::FILE* file, std::string path, size_t page_size)
    : file_(file),
      fd_(fileno(file)),
      path_(std::move(path)),
      page_size_(page_size) {}

PageFile::~PageFile() {
  if (file_ != nullptr) {
    // Best effort: persist the header so page counts survive.
    WriteHeader().ok();
    std::fclose(file_);
  }
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   size_t page_size) {
  if (page_size < kHeaderBytes || page_size % 512 != 0) {
    return Status::InvalidArgument("page size must be a multiple of 512, got " +
                                   std::to_string(page_size));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create page file", path));
  }
  auto pf = std::unique_ptr<PageFile>(new PageFile(f, path, page_size));
  TSQ_RETURN_IF_ERROR(pf->WriteHeader());
  return pf;
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open page file", path));
  }
  uint8_t header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f) != kHeaderBytes) {
    std::fclose(f);
    return Status::Corruption("page file header truncated: " + path);
  }
  auto get_u64 = [&header](size_t off) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(header[off + i]) << (8 * i);
    }
    return v;
  };
  if (get_u64(0) != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad page file magic: " + path);
  }
  const uint64_t page_size = get_u64(8);
  if (page_size < kHeaderBytes || page_size % 512 != 0) {
    std::fclose(f);
    return Status::Corruption("bad page size in header: " +
                              std::to_string(page_size));
  }
  auto pf = std::unique_ptr<PageFile>(
      new PageFile(f, path, static_cast<size_t>(page_size)));
  pf->num_pages_.store(get_u64(16), std::memory_order_release);
  pf->free_list_head_ = get_u64(24);
  return pf;
}

Status PageFile::WriteHeader() {
  uint8_t header[kHeaderBytes];
  std::memset(header, 0, sizeof(header));
  auto put_u64 = [&header](size_t off, uint64_t v) {
    for (size_t i = 0; i < 8; ++i) {
      header[off + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  };
  put_u64(0, kMagic);
  put_u64(8, page_size_);
  put_u64(16, num_pages_.load(std::memory_order_acquire));
  put_u64(24, free_list_head_);
  return WriteRaw(0, header, kHeaderBytes);
}

Status PageFile::ReadRaw(uint64_t offset, void* buf, size_t n) {
  errno = 0;
  if (!PreadExact(fd_, buf, n, offset)) {
    const int err = errno;
    const std::string what =
        "read failed at offset " + std::to_string(offset) + " in";
    if (err != 0) return failpoint::ErrnoError(err, what, path_);
    return Status::IOError("short read at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  return Status::OK();
}

Status PageFile::WriteRaw(uint64_t offset, const void* buf, size_t n) {
  errno = 0;
  if (!PwriteExact(fd_, buf, n, offset)) {
    const int err = errno;
    const std::string what =
        "write failed at offset " + std::to_string(offset) + " in";
    if (err != 0) return failpoint::ErrnoError(err, what, path_);
    return Status::IOError("short write at offset " + std::to_string(offset) +
                           " in " + path_);
  }
  return Status::OK();
}

Result<PageId> PageFile::Allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_list_head_ != kInvalidPageId) {
    const PageId id = free_list_head_;
    Page page(page_size_);
    TSQ_RETURN_IF_ERROR(Read(id, &page));
    free_list_head_ = page.ReadU64(0);
    return id;
  }
  const PageId id = num_pages_.load(std::memory_order_relaxed) + 1;
  // ids start after the header page. Extend the file eagerly so Read on a
  // fresh page is well-defined; publish the new count only after the
  // extension succeeds so concurrent readers never see a too-large bound.
  Page zero(page_size_);
  ++stats_.page_writes;
  TSQ_RETURN_IF_ERROR(WriteRaw(id * page_size_, zero.data(), page_size_));
  num_pages_.store(id, std::memory_order_release);
  return id;
}

Status PageFile::Free(PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == kInvalidPageId || id > num_pages()) {
    return Status::InvalidArgument("Free: bad page id " + std::to_string(id));
  }
  Page page(page_size_);
  page.WriteU64(0, free_list_head_);
  TSQ_RETURN_IF_ERROR(Write(id, page));
  free_list_head_ = id;
  return Status::OK();
}

Status PageFile::Read(PageId id, Page* out) {
  TSQ_CHECK(out != nullptr);
  if (id == kInvalidPageId || id > num_pages()) {
    return Status::InvalidArgument("Read: bad page id " + std::to_string(id));
  }
  if (out->size() != page_size_) *out = Page(page_size_);
  static failpoint::Site* fp = failpoint::Register("page_file_read");
  if (fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(fp, id);
    if (d.fire()) {
      return failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                   "read failed for page " +
                                       std::to_string(id) + " in",
                                   path_);
    }
  }
  ++stats_.page_reads;
  return ReadRaw(id * page_size_, out->data(), page_size_);
}

Status PageFile::Write(PageId id, const Page& page) {
  if (id == kInvalidPageId || id > num_pages()) {
    return Status::InvalidArgument("Write: bad page id " + std::to_string(id));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("Write: page size mismatch");
  }
  static failpoint::Site* fp = failpoint::Register("page_file_write");
  if (fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(fp, id);
    if (d.fire()) {
      // Short/torn actions land a prefix of the page so recovery sees
      // the bytes a mid-write crash leaves behind.
      const size_t prefix = std::min(d.bytes, page.size());
      if ((d.kind == failpoint::ActionKind::kShortWrite ||
           d.kind == failpoint::ActionKind::kTornWrite) &&
          prefix > 0) {
        (void)!::pwrite(fd_, page.data(), prefix,
                        static_cast<off_t>(id * page_size_));
      }
      if (d.kind == failpoint::ActionKind::kTornWrite) {
        failpoint::CrashProcess("page_file_write");
      }
      return failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                   "write failed for page " +
                                       std::to_string(id) + " in",
                                   path_);
    }
  }
  ++stats_.page_writes;
  return WriteRaw(id * page_size_, page.data(), page_size_);
}

Status PageFile::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  TSQ_RETURN_IF_ERROR(WriteHeader());
  // All data I/O is positioned on the fd; flush any stdio-buffered state
  // (none in steady operation) for symmetry with the pre-v2 contract.
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("fflush failed for", path_));
  }
  // Then push everything the OS holds to stable storage: Sync is the
  // durability barrier the merge publish path relies on.
  static failpoint::Site* fp = failpoint::Register("page_file_sync");
  if (fp->armed()) {
    const failpoint::Decision d = failpoint::Evaluate(fp, 0);
    if (d.kind == failpoint::ActionKind::kTornWrite ||
        d.kind == failpoint::ActionKind::kCrash) {
      failpoint::CrashProcess("page_file_sync");
    }
    if (d.fire()) {
      return failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                   "fdatasync failed for", path_);
    }
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync failed for", path_));
  }
  return Status::OK();
}

}  // namespace tsq
