// Copyright (c) 2026 The tsq Authors.
//
// Fixed-size pages — the unit of I/O between the R-tree and disk. The
// paper's experiments report disk accesses per query; in tsq a "disk
// access" is a page read or write through the buffer pool.

#ifndef TSQ_STORAGE_PAGE_H_
#define TSQ_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace tsq {

/// Identifier of a page within a PageFile. Page 0 is the file header; data
/// pages start at 1.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = 0;

/// Default page size: 4 KiB, the classic database page.
inline constexpr size_t kDefaultPageSize = 4096;

/// A page-sized byte buffer. Pages are dumb byte containers; interpretation
/// belongs to the layer that owns them (R-tree nodes, free-list links).
class Page {
 public:
  Page() = default;

  /// Allocates a zeroed buffer of `size` bytes.
  explicit Page(size_t size) : bytes_(size, 0) {}

  /// Size in bytes.
  size_t size() const { return bytes_.size(); }

  /// Raw byte access.
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  /// Zeroes the whole page.
  void Clear() { std::memset(bytes_.data(), 0, bytes_.size()); }

  /// Reads/writes a u64 at byte offset `off` (little-endian, unaligned ok).
  uint64_t ReadU64(size_t off) const {
    TSQ_DCHECK(off + 8 <= bytes_.size());
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes_[off + i]) << (8 * i);
    }
    return v;
  }
  void WriteU64(size_t off, uint64_t v) {
    TSQ_DCHECK(off + 8 <= bytes_.size());
    for (size_t i = 0; i < 8; ++i) {
      bytes_[off + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_PAGE_H_
