// Copyright (c) 2026 The tsq Authors.
//
// File-backed page store. Layout:
//
//   page 0           header: magic, format version, page size, page count,
//                    free-list head
//   pages 1..N       data pages; a freed page stores the id of the next
//                    free page in its first 8 bytes (intrusive free list)
//
// PageFile performs raw page I/O and byte accounting; caching and pinning
// live in BufferPool.

#ifndef TSQ_STORAGE_PAGE_FILE_H_
#define TSQ_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace tsq {

/// I/O counters for a PageFile. Relaxed atomics so concurrent readers can
/// snapshot them race-free; copies by value like a plain aggregate.
struct PageFileStats {
  std::atomic<uint64_t> page_reads{0};   ///< pages fetched from the file
  std::atomic<uint64_t> page_writes{0};  ///< pages written to the file

  PageFileStats() = default;
  PageFileStats(const PageFileStats& other) { *this = other; }
  PageFileStats& operator=(const PageFileStats& other) {
    page_reads = other.page_reads.load(std::memory_order_relaxed);
    page_writes = other.page_writes.load(std::memory_order_relaxed);
    return *this;
  }
};

/// A file of fixed-size pages with allocate/free/read/write operations.
///
/// Concurrency contract (v2): Read and Write of *allocated* pages are safe
/// from any number of threads — they use positioned pread/pwrite on the
/// file descriptor, so there is no shared file position and no lock on the
/// data path. Allocate, Free and Sync mutate the header state (page count,
/// free list) and serialize on an internal mutex. Concurrent Read/Write of
/// the *same* page require caller coordination (in the query stack the
/// BufferPool's shard locks provide it: a page lives in exactly one shard).
class PageFile {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(PageFile);
  ~PageFile();

  /// Creates a new page file at `path` (truncating any existing file).
  static Result<std::unique_ptr<PageFile>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  /// Opens an existing page file and validates its header.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  /// Allocates a page (recycling the free list when possible) and returns
  /// its id. The page content on disk is unspecified until written.
  Result<PageId> Allocate();

  /// Returns a page to the free list. Requires a valid, allocated id.
  Status Free(PageId id);

  /// Reads page `id` into `out` (resized to the page size).
  Status Read(PageId id, Page* out);

  /// Writes `page` (must match the page size) to page `id`.
  Status Write(PageId id, const Page& page);

  /// Persists the header and all previously written pages to stable
  /// storage (fdatasync). Called on explicit flush and merge-publish
  /// paths only, never per page write.
  Status Sync();

  /// Page size in bytes.
  size_t page_size() const { return page_size_; }

  /// Total pages ever allocated (including freed ones), excluding header.
  uint64_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }

  /// I/O counters.
  const PageFileStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PageFileStats(); }

  // Fault injection: every Read(id) traverses the `page_file_read`
  // failpoint and every Write(id) traverses `page_file_write` (arg =
  // the page id, after id validation, before the raw I/O, on the
  // calling thread). Tests park readers/writers on a gate with
  // failpoint::SetCallback or inject errno faults with
  // failpoint::Configure — see common/failpoint.h.

 private:
  PageFile(std::FILE* file, std::string path, size_t page_size);

  Status WriteHeader();  // caller holds mutex_ (or is single-threaded)
  Status ReadRaw(uint64_t offset, void* buf, size_t n);
  Status WriteRaw(uint64_t offset, const void* buf, size_t n);

  std::FILE* file_;
  int fd_;  // fileno(file_); all data I/O is positioned on this
  std::string path_;
  size_t page_size_;
  std::mutex mutex_;  // guards free_list_head_ and header writes
  std::atomic<uint64_t> num_pages_{0};  // data pages allocated so far
  PageId free_list_head_ = kInvalidPageId;
  PageFileStats stats_;
};

}  // namespace tsq

#endif  // TSQ_STORAGE_PAGE_FILE_H_
