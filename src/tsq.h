// Copyright (c) 2026 The tsq Authors.
//
// Umbrella header: the full public API of tsq, the similarity-query engine
// for time-series data reproducing Rafiei & Mendelzon (SIGMOD 1997).
//
//   #include "tsq.h"
//
// Most applications need only tsq::Database (core/database.h) together
// with the transformation factories in tsq::transforms (transform/
// builtin.h); the remaining headers expose the substrates (DFT engine,
// R*-tree, paged storage) for direct use.

#ifndef TSQ_TSQ_H_
#define TSQ_TSQ_H_

#include "common/logging.h"    // IWYU pragma: export
#include "common/random.h"     // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export
#include "common/stopwatch.h"  // IWYU pragma: export

#include "dft/complex_vec.h"  // IWYU pragma: export
#include "dft/dft.h"          // IWYU pragma: export
#include "dft/fft.h"          // IWYU pragma: export
#include "dft/haar.h"         // IWYU pragma: export

#include "series/distance.h"        // IWYU pragma: export
#include "series/moving_average.h"  // IWYU pragma: export
#include "series/normal_form.h"     // IWYU pragma: export
#include "series/time_series.h"     // IWYU pragma: export
#include "series/warp.h"            // IWYU pragma: export

#include "spatial/affine_map.h"  // IWYU pragma: export
#include "spatial/metrics.h"     // IWYU pragma: export
#include "spatial/point.h"       // IWYU pragma: export
#include "spatial/rect.h"        // IWYU pragma: export

#include "storage/buffer_pool.h"  // IWYU pragma: export
#include "storage/page_file.h"    // IWYU pragma: export
#include "storage/relation.h"     // IWYU pragma: export

#include "rtree/rstar_tree.h"  // IWYU pragma: export

#include "transform/builtin.h"           // IWYU pragma: export
#include "transform/cost_model.h"        // IWYU pragma: export
#include "transform/linear_transform.h"  // IWYU pragma: export

#include "engine/query_engine.h"  // IWYU pragma: export
#include "engine/thread_pool.h"   // IWYU pragma: export

#include "core/database.h"       // IWYU pragma: export
#include "core/feature.h"        // IWYU pragma: export
#include "core/feature_space.h"  // IWYU pragma: export
#include "core/k_index.h"        // IWYU pragma: export
#include "core/queries.h"        // IWYU pragma: export
#include "core/search_rect.h"    // IWYU pragma: export
#include "core/seq_scan.h"       // IWYU pragma: export
#include "core/subsequence.h"    // IWYU pragma: export

#include "server/client.h"    // IWYU pragma: export
#include "server/protocol.h"  // IWYU pragma: export
#include "server/server.h"    // IWYU pragma: export

#include "workload/paper_data.h"   // IWYU pragma: export
#include "workload/random_walk.h"  // IWYU pragma: export
#include "workload/stock_sim.h"    // IWYU pragma: export

#endif  // TSQ_TSQ_H_
