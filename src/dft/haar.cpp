// Copyright (c) 2026 The tsq Authors.

#include "dft/haar.h"

#include <cmath>

#include "common/macros.h"

namespace tsq {
namespace haar {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

bool IsValidLength(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

RealVec Forward(const RealVec& x) {
  TSQ_CHECK_MSG(IsValidLength(x.size()),
                "Haar transform requires a power-of-two length, got %zu",
                x.size());
  RealVec out = x;
  RealVec scratch(x.size());
  // Cascade: each pass halves the approximation band, writing averages to
  // the front and details behind them; detail bands already produced stay
  // in place, so the final ordering is coarse-first.
  for (size_t len = x.size(); len > 1; len /= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = (out[2 * i] + out[2 * i + 1]) * kInvSqrt2;
      scratch[half + i] = (out[2 * i] - out[2 * i + 1]) * kInvSqrt2;
    }
    for (size_t i = 0; i < len; ++i) out[i] = scratch[i];
  }
  return out;
}

RealVec Inverse(const RealVec& coefficients) {
  TSQ_CHECK_MSG(IsValidLength(coefficients.size()),
                "Haar transform requires a power-of-two length, got %zu",
                coefficients.size());
  RealVec out = coefficients;
  RealVec scratch(coefficients.size());
  for (size_t len = 2; len <= coefficients.size(); len *= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (out[i] + out[half + i]) * kInvSqrt2;
      scratch[2 * i + 1] = (out[i] - out[half + i]) * kInvSqrt2;
    }
    for (size_t i = 0; i < len; ++i) out[i] = scratch[i];
  }
  return out;
}

}  // namespace haar
}  // namespace tsq
