// Copyright (c) 2026 The tsq Authors.
//
// Orthonormal Haar wavelet transform — the classic alternative feature
// basis for GEMINI-style time-series indexing (Chan & Fu's follow-up to
// the paper's DFT features). Like the unitary DFT, the transform is
// orthonormal, so Parseval holds and Euclidean distances transfer between
// domains; the first coefficients capture the coarse shape, giving the
// same prefix-distance lower bound the k-index needs.
//
// tsq exposes Haar as a FeatureBasis option on FeatureLayout: whole-match
// indexing and queries work identically (identity/scale transformations
// only — the paper's filter transformations are DFT-specific transfer
// functions and do not apply to wavelet coefficients).

#ifndef TSQ_DFT_HAAR_H_
#define TSQ_DFT_HAAR_H_

#include "dft/complex_vec.h"

namespace tsq {
namespace haar {

/// True iff `n` is a valid Haar length (power of two, >= 1).
bool IsValidLength(size_t n);

/// Orthonormal forward Haar transform. Output ordering is coarse-first:
/// out[0] is the scaled mean, out[1] the coarsest detail, followed by
/// finer detail bands. Requires a power-of-two length.
RealVec Forward(const RealVec& x);

/// Inverse of Forward. Requires a power-of-two length.
RealVec Inverse(const RealVec& coefficients);

}  // namespace haar
}  // namespace tsq

#endif  // TSQ_DFT_HAAR_H_
