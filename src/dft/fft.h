// Copyright (c) 2026 The tsq Authors.
//
// Fast Fourier transform kernels. The paper assumes an FFT library (the
// original implementation era would use FFTW-class code); this module is the
// from-scratch substitute: an iterative radix-2 Cooley-Tukey kernel for
// power-of-two lengths and the Bluestein chirp-z algorithm for everything
// else, so any sequence length is O(n log n).
//
// These kernels compute the *unscaled* DFT
//     X_f = sum_t x_t e^(-2 pi j t f / n)            (forward)
//     x_t = sum_f X_f e^(+2 pi j t f / n)            (inverse, unscaled)
// Scaling conventions (the paper's unitary 1/sqrt(n), Eq. 1/2) live one
// layer up in dft/dft.h.

#ifndef TSQ_DFT_FFT_H_
#define TSQ_DFT_FFT_H_

#include <cstddef>

#include "dft/complex_vec.h"

namespace tsq {
namespace fft {

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(size_t n);

/// Smallest power of two >= n. Requires n >= 1; aborts on overflow.
size_t NextPowerOfTwo(size_t n);

/// In-place unscaled DFT of `data` (any length >= 1).
/// `inverse` selects the conjugate (unscaled inverse) transform. Dispatches
/// to radix-2 for power-of-two lengths and Bluestein otherwise.
void Transform(ComplexVec* data, bool inverse);

/// In-place radix-2 Cooley-Tukey kernel. Requires power-of-two length.
void TransformRadix2(ComplexVec* data, bool inverse);

/// In-place Bluestein chirp-z kernel. Works for any length; used for
/// non-power-of-two sizes.
void TransformBluestein(ComplexVec* data, bool inverse);

/// Reference O(n^2) unscaled DFT, used by tests to validate the fast
/// kernels and by callers that transform very short vectors.
ComplexVec NaiveDft(const ComplexVec& input, bool inverse);

}  // namespace fft
}  // namespace tsq

#endif  // TSQ_DFT_FFT_H_
