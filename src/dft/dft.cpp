// Copyright (c) 2026 The tsq Authors.

#include "dft/dft.h"

#include <cmath>

#include "common/macros.h"
#include "dft/fft.h"
#include "simd/simd.h"

namespace tsq {
namespace dft {

namespace {

// Applies the 1/sqrt(n) projection scaling through the kernel layer.
// std::complex<double> is two packed doubles, and multiplying a complex
// by a real scalar is an independent multiply per component, so the 2n
// underlying doubles scale elementwise.
void ScaleSpectrum(ComplexVec* X, double scale) {
  simd::Kernels().scale_inplace(reinterpret_cast<double*>(X->data()),
                                2 * X->size(), scale);
}

}  // namespace

ComplexVec Forward(const RealVec& x) {
  ComplexVec widened(x.size());
  simd::Kernels().widen_to_complex(
      x.data(), x.size(), reinterpret_cast<double*>(widened.data()));
  return Forward(widened);
}

ComplexVec Forward(const ComplexVec& x) {
  ComplexVec X = x;
  fft::Transform(&X, /*inverse=*/false);
  const double scale = 1.0 / std::sqrt(static_cast<double>(x.empty() ? 1 : x.size()));
  ScaleSpectrum(&X, scale);
  return X;
}

ComplexVec Inverse(const ComplexVec& X) {
  ComplexVec x = X;
  fft::Transform(&x, /*inverse=*/true);
  const double scale = 1.0 / std::sqrt(static_cast<double>(X.empty() ? 1 : X.size()));
  ScaleSpectrum(&x, scale);
  return x;
}

RealVec InverseReal(const ComplexVec& X, double tol) {
  ComplexVec x = Inverse(X);
  TSQ_DCHECK(cvec::MaxImagAbs(x) <= tol * (1.0 + std::sqrt(cvec::Energy(x))));
  TSQ_UNUSED(tol);
  return cvec::RealPart(x);
}

RealVec CircularConvolution(const RealVec& x, const RealVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "circular convolution requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  if (x.empty()) return {};
  // conv = InverseUnscaled(DFTUnscaled(x) * DFTUnscaled(y)) / n.
  ComplexVec X = cvec::FromReal(x);
  ComplexVec Y = cvec::FromReal(y);
  fft::Transform(&X, /*inverse=*/false);
  fft::Transform(&Y, /*inverse=*/false);
  for (size_t i = 0; i < X.size(); ++i) X[i] *= Y[i];
  fft::Transform(&X, /*inverse=*/true);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  RealVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = X[i].real() * inv_n;
  return out;
}

RealVec CircularConvolutionNaive(const RealVec& x, const RealVec& y) {
  TSQ_CHECK(x.size() == y.size());
  const size_t n = x.size();
  RealVec out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k) {
      // i - k modulo n, kept non-negative.
      const size_t idx = (i + n - (k % n)) % n;
      acc += x[k] * y[idx];
    }
    out[i] = acc;
  }
  return out;
}

ComplexVec TransferFunction(const RealVec& kernel) {
  ComplexVec a = cvec::FromReal(kernel);
  fft::Transform(&a, /*inverse=*/false);  // unscaled on purpose
  return a;
}

ComplexVec Truncate(const ComplexVec& X, size_t k) {
  TSQ_CHECK_MSG(k <= X.size(), "Truncate: k=%zu > n=%zu", k, X.size());
  return ComplexVec(X.begin(), X.begin() + static_cast<ptrdiff_t>(k));
}

double ParsevalGap(const RealVec& x) {
  return std::abs(cvec::Energy(x) - cvec::Energy(Forward(x)));
}

double EnergyConcentration(const ComplexVec& X, size_t k) {
  TSQ_CHECK(k <= X.size());
  const double total = cvec::Energy(X);
  if (total == 0.0) return 1.0;
  double head = 0.0;
  for (size_t i = 0; i < k; ++i) head += std::norm(X[i]);
  return head / total;
}

}  // namespace dft
}  // namespace tsq
