// Copyright (c) 2026 The tsq Authors.
//
// The paper's DFT layer (Sec. 1.1): the unitary transform with 1/sqrt(n) on
// both directions (Eq. 1 and 2), signal energy (Eq. 3), circular
// convolution (Eq. 4), and the convolution-multiplication bridge used to
// push filters such as moving average into the frequency domain (Eq. 6,
// Sec. 3.2).
//
// Normalization note. With the unitary convention, Parseval (Eq. 7) holds
// exactly, so Euclidean distances transfer between domains (Eq. 8) — this is
// what the k-index's no-false-dismissal argument (Lemma 1) relies on. The
// price is a factor sqrt(n) in the convolution theorem:
//     Forward(conv(x, y)) = sqrt(n) * Forward(x) ∗ Forward(y).
// The transformation vector `a` for a filter kernel therefore is the
// *unscaled* DFT of the kernel (its transfer function):
//     Forward(conv(x, kernel)) = TransferFunction(kernel) ∗ Forward(x),
// which is exactly the `~M3` the paper multiplies into `~S1` in Sec. 3.2.

#ifndef TSQ_DFT_DFT_H_
#define TSQ_DFT_DFT_H_

#include "dft/complex_vec.h"

namespace tsq {
namespace dft {

/// Unitary forward DFT of a real sequence (paper Eq. 1).
ComplexVec Forward(const RealVec& x);

/// Unitary forward DFT of a complex sequence.
ComplexVec Forward(const ComplexVec& x);

/// Unitary inverse DFT (paper Eq. 2).
ComplexVec Inverse(const ComplexVec& X);

/// Unitary inverse DFT projected to the reals. Aborts (debug) if the
/// imaginary residue exceeds `tol` — callers use this only on spectra of
/// real signals, where any residue is numerical noise.
RealVec InverseReal(const ComplexVec& X, double tol = 1e-6);

/// Circular convolution of two equal-length real sequences (paper Eq. 4),
/// computed in O(n log n) through the frequency domain. Index arithmetic is
/// modulo n.
RealVec CircularConvolution(const RealVec& x, const RealVec& y);

/// Reference O(n^2) circular convolution for validation.
RealVec CircularConvolutionNaive(const RealVec& x, const RealVec& y);

/// The *unscaled* DFT of `kernel` — the filter's transfer function. This is
/// the transformation vector `a` with
///     Forward(conv(x, kernel)) = a ∗ Forward(x)
/// under the unitary convention (see the normalization note above).
ComplexVec TransferFunction(const RealVec& kernel);

/// First k coefficients of X (the k-index feature vector). Requires
/// k <= X.size().
ComplexVec Truncate(const ComplexVec& X, size_t k);

/// |E(x) - E(Forward(x))| — the Parseval residue; ~0 up to rounding. Used
/// by tests and self-checks.
double ParsevalGap(const RealVec& x);

/// Fraction of total signal energy captured by the first k coefficients of
/// X: E(X[0..k)) / E(X). Returns 1.0 for zero-energy signals. This is the
/// quantity behind the paper's "energy concentrates in the first few
/// coefficients" argument for indexing.
double EnergyConcentration(const ComplexVec& X, size_t k);

}  // namespace dft
}  // namespace tsq

#endif  // TSQ_DFT_DFT_H_
