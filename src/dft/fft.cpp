// Copyright (c) 2026 The tsq Authors.

#include "dft/fft.h"

#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace tsq {
namespace fft {
namespace {

constexpr double kPi = std::numbers::pi;

// Bit-reversal permutation for the iterative radix-2 kernel.
void BitReversePermute(ComplexVec* data) {
  const size_t n = data->size();
  size_t j = 0;
  for (size_t i = 1; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap((*data)[i], (*data)[j]);
  }
}

}  // namespace

bool IsPowerOfTwo(size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  TSQ_CHECK(n >= 1);
  size_t p = 1;
  while (p < n) {
    TSQ_CHECK_MSG(p <= (static_cast<size_t>(1) << 62),
                  "NextPowerOfTwo overflow for n=%zu", n);
    p <<= 1;
  }
  return p;
}

void TransformRadix2(ComplexVec* data, bool inverse) {
  const size_t n = data->size();
  TSQ_CHECK_MSG(IsPowerOfTwo(n), "radix-2 FFT requires power-of-two length");
  if (n == 1) return;

  BitReversePermute(data);

  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const Complex u = (*data)[i + k];
        const Complex v = (*data)[i + k + len / 2] * w;
        (*data)[i + k] = u + v;
        (*data)[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void TransformBluestein(ComplexVec* data, bool inverse) {
  const size_t n = data->size();
  if (n <= 1) return;

  // Chirp-z: X_f = b*_f . sum_k (x_k b*_k) b_{f-k}, with b_t = e^{j pi t^2/n}.
  // The sum is a linear convolution, computed as a circular convolution of
  // length m = next power of two >= 2n - 1 using the radix-2 kernel.
  const size_t m = NextPowerOfTwo(2 * n - 1);

  // exp table: chirp_t = e^{-j pi t^2 / n} for the forward transform.
  // t^2 mod 2n keeps the angle argument bounded for large t.
  ComplexVec chirp(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t t = 0; t < n; ++t) {
    const uintmax_t t2 = (static_cast<uintmax_t>(t) * t) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(t2) /
                         static_cast<double>(n);
    chirp[t] = Complex(std::cos(angle), std::sin(angle));
  }

  ComplexVec a(m, Complex(0.0, 0.0));
  for (size_t t = 0; t < n; ++t) a[t] = (*data)[t] * chirp[t];

  ComplexVec b(m, Complex(0.0, 0.0));
  b[0] = std::conj(chirp[0]);
  for (size_t t = 1; t < n; ++t) {
    b[t] = std::conj(chirp[t]);
    b[m - t] = std::conj(chirp[t]);  // wrap-around for circular convolution
  }

  TransformRadix2(&a, /*inverse=*/false);
  TransformRadix2(&b, /*inverse=*/false);
  for (size_t i = 0; i < m; ++i) a[i] *= b[i];
  TransformRadix2(&a, /*inverse=*/true);
  // The radix-2 inverse kernel is unscaled: divide by m once here.
  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t f = 0; f < n; ++f) {
    (*data)[f] = a[f] * inv_m * chirp[f];
  }
}

void Transform(ComplexVec* data, bool inverse) {
  TSQ_CHECK(data != nullptr);
  if (data->size() <= 1) return;
  if (IsPowerOfTwo(data->size())) {
    TransformRadix2(data, inverse);
  } else {
    TransformBluestein(data, inverse);
  }
}

ComplexVec NaiveDft(const ComplexVec& input, bool inverse) {
  const size_t n = input.size();
  ComplexVec out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 2.0 : -2.0;
  for (size_t f = 0; f < n; ++f) {
    Complex acc(0.0, 0.0);
    for (size_t t = 0; t < n; ++t) {
      const double angle = sign * kPi * static_cast<double>(t) *
                           static_cast<double>(f) / static_cast<double>(n);
      acc += input[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[f] = acc;
  }
  return out;
}

}  // namespace fft
}  // namespace tsq
