// Copyright (c) 2026 The tsq Authors.
//
// Complex-vector primitives shared by the DFT engine and the transformation
// framework. A time series of length n maps to a ComplexVec of n Fourier
// coefficients; transformations are elementwise affine maps on such vectors
// (Sec. 3 of the paper).

#ifndef TSQ_DFT_COMPLEX_VEC_H_
#define TSQ_DFT_COMPLEX_VEC_H_

#include <cmath>
#include <complex>
#include <vector>

#include "common/macros.h"

namespace tsq {

/// tsq's complex scalar. Double precision throughout: the index stores
/// features as doubles and the no-false-dismissal guarantee (Lemma 1) relies
/// on distances not being corrupted by precision loss.
using Complex = std::complex<double>;

/// A dense vector of complex scalars (a full or truncated DFT).
using ComplexVec = std::vector<Complex>;

/// A dense vector of real scalars (a time-domain sequence).
using RealVec = std::vector<double>;

namespace cvec {

/// Elementwise product `x * y` (the paper's `X ∗ Y`, Eq. 6 right side).
/// Requires equal sizes.
inline ComplexVec Multiply(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Multiply: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * y[i];
  return out;
}

/// Elementwise sum `x + y`. Requires equal sizes.
inline ComplexVec Add(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Add: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

/// Elementwise difference `x - y`. Requires equal sizes.
inline ComplexVec Subtract(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Subtract: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

/// Scales every element by the real factor `s`.
inline ComplexVec Scale(const ComplexVec& x, double s) {
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * s;
  return out;
}

/// Signal energy E(x) = sum |x_i|^2 (Eq. 3).
inline double Energy(const ComplexVec& x) {
  double e = 0.0;
  for (const Complex& c : x) e += std::norm(c);
  return e;
}

/// Signal energy of a real sequence.
inline double Energy(const RealVec& x) {
  double e = 0.0;
  for (double v : x) e += v * v;
  return e;
}

/// Euclidean distance between complex vectors, D(x, y) = sqrt(E(x - y))
/// (Eq. 8). Requires equal sizes.
inline double Distance(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Distance: size mismatch %zu vs %zu",
                x.size(), y.size());
  double e = 0.0;
  for (size_t i = 0; i < x.size(); ++i) e += std::norm(x[i] - y[i]);
  return std::sqrt(e);
}

/// Squared Euclidean distance over the first `k` coefficients only — the
/// lower bound used by the k-index (Eq. 13/15). Requires k <= min size.
inline double PrefixDistanceSquared(const ComplexVec& x, const ComplexVec& y,
                                    size_t k) {
  TSQ_DCHECK(k <= x.size() && k <= y.size());
  double e = 0.0;
  for (size_t i = 0; i < k; ++i) e += std::norm(x[i] - y[i]);
  return e;
}

/// Promotes a real sequence to a complex vector with zero imaginary parts.
inline ComplexVec FromReal(const RealVec& x) {
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = Complex(x[i], 0.0);
  return out;
}

/// Extracts the real parts of a complex vector.
inline RealVec RealPart(const ComplexVec& x) {
  RealVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i].real();
  return out;
}

/// Max |imaginary part| over the vector; a sanity probe when a result is
/// expected to be real (e.g. inverse DFT of a conjugate-symmetric spectrum).
inline double MaxImagAbs(const ComplexVec& x) {
  double m = 0.0;
  for (const Complex& c : x) m = std::max(m, std::abs(c.imag()));
  return m;
}

/// True when every element of x is within `tol` (absolute, per component)
/// of the matching element of y.
inline bool ApproxEqual(const ComplexVec& x, const ComplexVec& y, double tol) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i].real() - y[i].real()) > tol) return false;
    if (std::abs(x[i].imag() - y[i].imag()) > tol) return false;
  }
  return true;
}

}  // namespace cvec
}  // namespace tsq

#endif  // TSQ_DFT_COMPLEX_VEC_H_
