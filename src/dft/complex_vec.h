// Copyright (c) 2026 The tsq Authors.
//
// Complex-vector primitives shared by the DFT engine and the transformation
// framework. A time series of length n maps to a ComplexVec of n Fourier
// coefficients; transformations are elementwise affine maps on such vectors
// (Sec. 3 of the paper).

#ifndef TSQ_DFT_COMPLEX_VEC_H_
#define TSQ_DFT_COMPLEX_VEC_H_

#include <cmath>
#include <complex>
#include <vector>

#include "common/macros.h"
#include "simd/simd.h"

namespace tsq {

/// tsq's complex scalar. Double precision throughout: the index stores
/// features as doubles and the no-false-dismissal guarantee (Lemma 1) relies
/// on distances not being corrupted by precision loss.
using Complex = std::complex<double>;

/// A dense vector of complex scalars (a full or truncated DFT).
using ComplexVec = std::vector<Complex>;

/// A dense vector of real scalars (a time-domain sequence).
using RealVec = std::vector<double>;

namespace cvec {

/// Elementwise product `x * y` (the paper's `X ∗ Y`, Eq. 6 right side).
/// Requires equal sizes.
inline ComplexVec Multiply(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Multiply: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * y[i];
  return out;
}

/// Elementwise sum `x + y`. Requires equal sizes.
inline ComplexVec Add(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Add: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

/// Elementwise difference `x - y`. Requires equal sizes.
inline ComplexVec Subtract(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Subtract: size mismatch %zu vs %zu",
                x.size(), y.size());
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

/// Scales every element by the real factor `s`.
inline ComplexVec Scale(const ComplexVec& x, double s) {
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i] * s;
  return out;
}

/// Views a complex vector as its interleaved {re, im} doubles —
/// guaranteed layout-compatible by the standard's array-oriented access
/// rule for std::complex. Lets the real-valued simd kernels serve the
/// complex paths: sum |x_i - y_i|^2 over n Complex equals the squared
/// Euclidean distance over the 2n underlying doubles.
inline const double* AsDoubles(const ComplexVec& x) {
  static_assert(sizeof(Complex) == 2 * sizeof(double),
                "std::complex<double> must be two packed doubles");
  return reinterpret_cast<const double*>(x.data());
}

/// Signal energy E(x) = sum |x_i|^2 (Eq. 3).
inline double Energy(const ComplexVec& x) {
  return simd::SumSquares(AsDoubles(x), 2 * x.size());
}

/// Signal energy of a real sequence.
inline double Energy(const RealVec& x) {
  return simd::SumSquares(x.data(), x.size());
}

/// Euclidean distance between complex vectors, D(x, y) = sqrt(E(x - y))
/// (Eq. 8). Requires equal sizes.
inline double Distance(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(), "Distance: size mismatch %zu vs %zu",
                x.size(), y.size());
  return std::sqrt(simd::SumSquaredDiff(AsDoubles(x), AsDoubles(y),
                                        2 * x.size()));
}

/// Squared Euclidean distance between complex vectors, E(x - y).
inline double DistanceSquared(const ComplexVec& x, const ComplexVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "DistanceSquared: size mismatch %zu vs %zu", x.size(),
                y.size());
  return simd::SumSquaredDiff(AsDoubles(x), AsDoubles(y), 2 * x.size());
}

/// Squared Euclidean distance over the first `k` coefficients only — the
/// lower bound used by the k-index (Eq. 13/15). Requires k <= min size.
inline double PrefixDistanceSquared(const ComplexVec& x, const ComplexVec& y,
                                    size_t k) {
  TSQ_DCHECK(k <= x.size() && k <= y.size());
  return simd::SumSquaredDiff(AsDoubles(x), AsDoubles(y), 2 * k);
}

/// Promotes a real sequence to a complex vector with zero imaginary parts.
inline ComplexVec FromReal(const RealVec& x) {
  ComplexVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = Complex(x[i], 0.0);
  return out;
}

/// Extracts the real parts of a complex vector.
inline RealVec RealPart(const ComplexVec& x) {
  RealVec out(x.size());
  for (size_t i = 0; i < x.size(); ++i) out[i] = x[i].real();
  return out;
}

/// Max |imaginary part| over the vector; a sanity probe when a result is
/// expected to be real (e.g. inverse DFT of a conjugate-symmetric spectrum).
inline double MaxImagAbs(const ComplexVec& x) {
  double m = 0.0;
  for (const Complex& c : x) m = std::max(m, std::abs(c.imag()));
  return m;
}

/// True when every element of x is within `tol` (absolute, per component)
/// of the matching element of y.
inline bool ApproxEqual(const ComplexVec& x, const ComplexVec& y, double tol) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i].real() - y[i].real()) > tol) return false;
    if (std::abs(x[i].imag() - y[i].imag()) > tol) return false;
  }
  return true;
}

}  // namespace cvec
}  // namespace tsq

#endif  // TSQ_DFT_COMPLEX_VEC_H_
