// Copyright (c) 2026 The tsq Authors.

#include "transform/builtin.h"

#include <cmath>
#include <numbers>
#include <string>

#include "common/macros.h"
#include "dft/dft.h"
#include "series/moving_average.h"

namespace tsq {
namespace transforms {

LinearTransform Identity(size_t n) { return LinearTransform::Identity(n); }

LinearTransform MovingAverage(size_t n, size_t window, double cost) {
  TSQ_CHECK_MSG(window >= 1 && window <= n,
                "moving-average window %zu out of range for n=%zu", window, n);
  ComplexVec a = dft::TransferFunction(MovingAverageKernel(n, window));
  return LinearTransform(std::move(a), ComplexVec(n, Complex(0.0, 0.0)), cost,
                         "mavg" + std::to_string(window));
}

LinearTransform WeightedMovingAverage(size_t n, const RealVec& weights,
                                      double cost) {
  TSQ_CHECK_MSG(!weights.empty() && weights.size() <= n,
                "weighted window size %zu out of range for n=%zu",
                weights.size(), n);
  RealVec kernel(n, 0.0);
  for (size_t i = 0; i < weights.size(); ++i) kernel[i] = weights[i];
  ComplexVec a = dft::TransferFunction(kernel);
  return LinearTransform(std::move(a), ComplexVec(n, Complex(0.0, 0.0)), cost,
                         "wmavg" + std::to_string(weights.size()));
}

LinearTransform ExponentialMovingAverage(size_t n, double alpha,
                                         size_t window, double cost) {
  LinearTransform t =
      WeightedMovingAverage(n, ExponentialWeights(alpha, window), cost);
  return LinearTransform(t.a(), t.b(), t.cost(),
                         "ewma" + std::to_string(window));
}

LinearTransform SuccessiveMovingAverage(size_t n, size_t window, size_t times,
                                        double cost_each) {
  LinearTransform out = Identity(n);
  const LinearTransform once = MovingAverage(n, window, cost_each);
  for (size_t i = 0; i < times; ++i) out = once.Compose(out);
  return LinearTransform(out.a(), out.b(), out.cost(),
                         "mavg" + std::to_string(window) + "^" +
                             std::to_string(times));
}

LinearTransform Difference(size_t n, double cost) {
  TSQ_CHECK(n >= 2);
  RealVec kernel(n, 0.0);
  kernel[0] = 1.0;
  kernel[1] = -1.0;
  ComplexVec a = dft::TransferFunction(kernel);
  return LinearTransform(std::move(a), ComplexVec(n, Complex(0.0, 0.0)), cost,
                         "diff");
}

LinearTransform Reverse(size_t n, double cost) {
  return LinearTransform(ComplexVec(n, Complex(-1.0, 0.0)),
                         ComplexVec(n, Complex(0.0, 0.0)), cost, "reverse");
}

LinearTransform Shift(size_t n, double delta, double cost) {
  TSQ_CHECK(n >= 1);
  ComplexVec b(n, Complex(0.0, 0.0));
  // DFT of the constant sequence (delta,...,delta) under the unitary
  // convention: delta*sqrt(n) at frequency 0, zero elsewhere.
  b[0] = Complex(delta * std::sqrt(static_cast<double>(n)), 0.0);
  return LinearTransform(ComplexVec(n, Complex(1.0, 0.0)), std::move(b), cost,
                         "shift");
}

LinearTransform Scale(size_t n, double factor, double cost) {
  return LinearTransform(ComplexVec(n, Complex(factor, 0.0)),
                         ComplexVec(n, Complex(0.0, 0.0)), cost, "scale");
}

LinearTransform TimeWarp(size_t n, size_t m, size_t k,
                         WarpConvention convention, double cost) {
  TSQ_CHECK_MSG(m >= 1, "warp factor must be >= 1");
  TSQ_CHECK_MSG(k <= n, "warp prefix k=%zu > n=%zu", k, n);
  constexpr double kPi = std::numbers::pi;
  ComplexVec a(n, Complex(0.0, 0.0));
  const double mn = static_cast<double>(m) * static_cast<double>(n);
  for (size_t f = 0; f < k; ++f) {
    Complex acc(0.0, 0.0);
    for (size_t t = 0; t < m; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(t) * static_cast<double>(f) / mn;
      acc += Complex(std::cos(angle), std::sin(angle));
    }
    if (convention == WarpConvention::kUnitary) {
      acc /= std::sqrt(static_cast<double>(m));
    }
    a[f] = acc;
  }
  return LinearTransform(std::move(a), ComplexVec(n, Complex(0.0, 0.0)), cost,
                         "warp" + std::to_string(m));
}

}  // namespace transforms
}  // namespace tsq
