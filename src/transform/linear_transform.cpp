// Copyright (c) 2026 The tsq Authors.

#include "transform/linear_transform.h"

#include <cmath>

#include "common/macros.h"

namespace tsq {

LinearTransform::LinearTransform(ComplexVec a, ComplexVec b, double cost,
                                 std::string name)
    : a_(std::move(a)), b_(std::move(b)), cost_(cost), name_(std::move(name)) {
  TSQ_CHECK_MSG(a_.size() == b_.size(),
                "transform vectors differ in length: %zu vs %zu", a_.size(),
                b_.size());
}

LinearTransform LinearTransform::Identity(size_t n) {
  return LinearTransform(ComplexVec(n, Complex(1.0, 0.0)),
                         ComplexVec(n, Complex(0.0, 0.0)), 0.0, "identity");
}

ComplexVec LinearTransform::Apply(const ComplexVec& x) const {
  TSQ_CHECK_MSG(x.size() == size(), "Apply: length %zu != transform %zu",
                x.size(), size());
  ComplexVec out(x.size());
  for (size_t f = 0; f < x.size(); ++f) out[f] = a_[f] * x[f] + b_[f];
  return out;
}

ComplexVec LinearTransform::ApplyPrefix(const ComplexVec& x, size_t k) const {
  TSQ_CHECK_MSG(k <= size() && k <= x.size(),
                "ApplyPrefix: k=%zu out of range (x:%zu, t:%zu)", k, x.size(),
                size());
  ComplexVec out(k);
  for (size_t f = 0; f < k; ++f) out[f] = a_[f] * x[f] + b_[f];
  return out;
}

LinearTransform LinearTransform::Truncated(size_t k) const {
  TSQ_CHECK_MSG(k <= size(), "Truncated: k=%zu > %zu", k, size());
  return LinearTransform(
      ComplexVec(a_.begin(), a_.begin() + static_cast<ptrdiff_t>(k)),
      ComplexVec(b_.begin(), b_.begin() + static_cast<ptrdiff_t>(k)), cost_,
      name_);
}

LinearTransform LinearTransform::Compose(const LinearTransform& inner) const {
  TSQ_CHECK_MSG(size() == inner.size(),
                "Compose: lengths differ (%zu vs %zu)", size(), inner.size());
  ComplexVec a(size());
  ComplexVec b(size());
  for (size_t f = 0; f < size(); ++f) {
    a[f] = a_[f] * inner.a_[f];
    b[f] = a_[f] * inner.b_[f] + b_[f];
  }
  std::string composed_name = name_;
  if (!inner.name_.empty()) {
    composed_name += composed_name.empty() ? inner.name_ : "∘" + inner.name_;
  }
  return LinearTransform(std::move(a), std::move(b), cost_ + inner.cost_,
                         std::move(composed_name));
}

bool LinearTransform::IsIdentity(double tol) const {
  for (size_t f = 0; f < size(); ++f) {
    if (std::abs(a_[f].real() - 1.0) > tol || std::abs(a_[f].imag()) > tol) {
      return false;
    }
    if (std::abs(b_[f].real()) > tol || std::abs(b_[f].imag()) > tol) {
      return false;
    }
  }
  return true;
}

bool LinearTransform::IsSafeRect(double tol) const {
  for (const Complex& c : a_) {
    if (std::abs(c.imag()) > tol) return false;
  }
  return true;
}

bool LinearTransform::IsSafePolar(double tol) const {
  for (const Complex& c : b_) {
    if (std::abs(c) > tol) return false;
  }
  return true;
}

}  // namespace tsq
