// Copyright (c) 2026 The tsq Authors.

#include "transform/cost_model.h"

#include <cmath>

#include "common/macros.h"

namespace tsq {

namespace {

struct SearchState {
  ComplexVec x;
  ComplexVec y;
  double cost;
  std::vector<std::string> applied_x;
  std::vector<std::string> applied_y;
  size_t apps_x;
  size_t apps_y;
};

}  // namespace

Result<CostedDistanceResult> CostedDistance(
    const ComplexVec& x, const ComplexVec& y,
    const std::vector<LinearTransform>& transforms,
    const CostedDistanceOptions& options) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("CostedDistance: length mismatch");
  }
  for (const LinearTransform& t : transforms) {
    if (t.size() != x.size()) {
      return Status::InvalidArgument("transform '" + t.name() +
                                     "' length mismatch");
    }
    if (t.cost() < 0.0) {
      return Status::InvalidArgument("transform '" + t.name() +
                                     "' has negative cost");
    }
  }

  CostedDistanceResult best;
  best.distance = cvec::Distance(x, y);  // the D0 branch of Eq. 10
  best.transform_cost = 0.0;

  // Depth-first branch-and-bound over transformation sequences. States are
  // expanded by applying one more transformation to either side; a state's
  // accumulated cost is an admissible lower bound on every answer reachable
  // from it (distance >= 0), so cost >= best.distance prunes.
  std::vector<SearchState> stack;
  stack.push_back(SearchState{x, y, 0.0, {}, {}, 0, 0});
  size_t states = 0;

  while (!stack.empty()) {
    SearchState state = std::move(stack.back());
    stack.pop_back();
    if (++states > options.max_states) {
      return Status::FailedPrecondition(
          "CostedDistance exceeded max_states = " +
          std::to_string(options.max_states) +
          "; tighten the bounds or shrink the transformation set");
    }
    if (state.cost >= best.distance) continue;  // bound

    const double d = state.cost + cvec::Distance(state.x, state.y);
    if (d < best.distance) {
      best.distance = d;
      best.transform_cost = state.cost;
      best.applied_to_x = state.applied_x;
      best.applied_to_y = state.applied_y;
    }

    for (const LinearTransform& t : transforms) {
      const double next_cost = state.cost + t.cost();
      if (next_cost > options.cost_budget) continue;
      if (next_cost >= best.distance) continue;
      if (state.apps_x < options.max_applications_per_side) {
        SearchState next = state;
        next.x = t.Apply(state.x);
        next.cost = next_cost;
        next.applied_x.push_back(t.name());
        ++next.apps_x;
        stack.push_back(std::move(next));
      }
      if (state.apps_y < options.max_applications_per_side) {
        SearchState next = state;
        next.y = t.Apply(state.y);
        next.cost = next_cost;
        next.applied_y.push_back(t.name());
        ++next.apps_y;
        stack.push_back(std::move(next));
      }
    }
  }
  return best;
}

}  // namespace tsq
