// Copyright (c) 2026 The tsq Authors.
//
// The cost-bounded similarity distance of Eq. 10 (following [JMM95]): given
// a set of transformations t, each with a cost,
//
//   D(x, y) = min( D0(x, y),
//                  min_T     cost(T)  + D(T(x), y),
//                  min_T     cost(T)  + D(x, T(y)),
//                  min_T1,T2 cost(T1) + cost(T2) + D(T1(x), T2(y)) )
//
// i.e. the cheapest way to make x and y close by spending transformation
// cost on either side. The recursion is evaluated by branch-and-bound
// enumeration of transformation sequences, bounded by a per-side
// application limit, a total cost budget, and a state cap; costs are
// non-negative, so any partial sequence whose accumulated cost already
// exceeds the best answer found can be pruned ("we are limited by an upper
// bound on the total cost", Sec. 2).

#ifndef TSQ_TRANSFORM_COST_MODEL_H_
#define TSQ_TRANSFORM_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dft/complex_vec.h"
#include "transform/linear_transform.h"

namespace tsq {

/// Bounds on the Eq. 10 search.
struct CostedDistanceOptions {
  /// Maximum transformation applications per side.
  size_t max_applications_per_side = 2;
  /// Hard ceiling on summed transformation cost; sequences above it are
  /// not considered ([JMM95]'s cost bound c).
  double cost_budget = 1e18;
  /// Safety valve on explored states.
  size_t max_states = 100000;
};

/// The answer: the minimized value together with the witnessing
/// transformation sequences (by name) for each side.
struct CostedDistanceResult {
  double distance = 0.0;        ///< minimized cost(T...) + D0 value
  double transform_cost = 0.0;  ///< cost part of the minimum
  std::vector<std::string> applied_to_x;  ///< names, application order
  std::vector<std::string> applied_to_y;
};

/// Evaluates Eq. 10 for frequency-domain vectors x and y over the given
/// transformation set. Requires equal lengths, transforms of matching
/// length, and non-negative costs.
Result<CostedDistanceResult> CostedDistance(
    const ComplexVec& x, const ComplexVec& y,
    const std::vector<LinearTransform>& transforms,
    const CostedDistanceOptions& options = {});

}  // namespace tsq

#endif  // TSQ_TRANSFORM_COST_MODEL_H_
