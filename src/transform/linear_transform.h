// Copyright (c) 2026 The tsq Authors.
//
// The paper's transformation language (Sec. 3): a transformation in an
// n-dimensional space is a pair T = (a, b) of n-vectors, applied to a point
// x as a ∗ x + b (elementwise multiply plus translation). Over time series
// the vectors are complex and act on the DFT representation; moving
// average, reversing, shifting, scaling and time warping are all instances
// (Sec. 3.2, Appendix A).
//
// Safety (Definition 1): a transformation is safe in a feature space when
// it maps rectangles to rectangles preserving interior/exterior. The paper
// proves two usable criteria:
//   * Theorem 2: a real, b complex  =>  safe w.r.t. the rectangular
//     representation Srect;
//   * Theorem 3: a complex, b = 0   =>  safe w.r.t. the polar
//     representation Spol.
// IsSafeRect / IsSafePolar test exactly these conditions.

#ifndef TSQ_TRANSFORM_LINEAR_TRANSFORM_H_
#define TSQ_TRANSFORM_LINEAR_TRANSFORM_H_

#include <string>

#include "dft/complex_vec.h"

namespace tsq {

/// An elementwise affine transformation x -> a ∗ x + b over complex
/// vectors, with an associated application cost (Eq. 10) and a display
/// name for query explain output.
class LinearTransform {
 public:
  /// Constructs T = (a, b). Requires a.size() == b.size().
  LinearTransform(ComplexVec a, ComplexVec b, double cost = 0.0,
                  std::string name = "");

  /// The identity transformation of length n (a = 1, b = 0).
  static LinearTransform Identity(size_t n);

  /// Vector length.
  size_t size() const { return a_.size(); }

  const ComplexVec& a() const { return a_; }
  const ComplexVec& b() const { return b_; }

  /// Application cost, used by the cost-bounded distance of Eq. 10.
  double cost() const { return cost_; }
  void set_cost(double cost) { cost_ = cost; }

  /// Human-readable name ("mavg20", "reverse", ...).
  const std::string& name() const { return name_; }

  /// Applies the transformation to a full-length vector: a ∗ x + b.
  /// Requires x.size() == size().
  ComplexVec Apply(const ComplexVec& x) const;

  /// Applies to only the first k coefficients of x (the k-index case,
  /// Algorithm 2 step 1a). Requires k <= size() and k <= x.size().
  ComplexVec ApplyPrefix(const ComplexVec& x, size_t k) const;

  /// The truncated transformation (first k coefficients of a and b).
  LinearTransform Truncated(size_t k) const;

  /// Composition: (this ∘ inner)(x) = this(inner(x)) = (a1∗a2, a1∗b2 + b1).
  /// Costs add. Requires equal sizes.
  LinearTransform Compose(const LinearTransform& inner) const;

  /// True iff the transformation is the identity (within tol per element).
  bool IsIdentity(double tol = 0.0) const;

  /// Theorem 2 criterion: every a_f is real (|Im(a_f)| <= tol).
  bool IsSafeRect(double tol = 1e-12) const;

  /// Theorem 3 criterion: every b_f is zero (|b_f| <= tol).
  bool IsSafePolar(double tol = 1e-12) const;

 private:
  ComplexVec a_;
  ComplexVec b_;
  double cost_;
  std::string name_;
};

}  // namespace tsq

#endif  // TSQ_TRANSFORM_LINEAR_TRANSFORM_H_
