// Copyright (c) 2026 The tsq Authors.
//
// The paper's catalogue of similarity transformations, expressed as
// LinearTransforms over the DFT representation:
//
//   * MovingAverage (Sec. 3.2, Eq. 11)  — Tmavg = (M, 0), M the transfer
//     function of the uniform window kernel; applying it in the frequency
//     domain equals circular convolution in the time domain (Eq. 6).
//   * WeightedMovingAverage              — arbitrary window weights.
//   * Reverse (Ex. 2.2)                  — Trev = (-1, 0): negates prices.
//   * Shift (Sec. 2, [GK95])             — adds a constant delta to every
//     sample; in the frequency domain only X_0 moves (by delta * sqrt(n)).
//   * Scale (Sec. 2, [GK95])             — multiplies every sample by a real
//     factor (negative factors allowed — the paper drops the positive-scale
//     restriction of [GK95]).
//   * TimeWarp (Ex. 1.2, Appendix A)     — builds the first k coefficients
//     of the m-fold time-stretched series from the original coefficients
//     (Eq. 19).
//
// All factories return full-length (size n) transforms; the index layer
// truncates them to the stored k coefficients.

#ifndef TSQ_TRANSFORM_BUILTIN_H_
#define TSQ_TRANSFORM_BUILTIN_H_

#include <cstddef>

#include "dft/complex_vec.h"
#include "transform/linear_transform.h"

namespace tsq {
namespace transforms {

/// The identity transformation of length n.
LinearTransform Identity(size_t n);

/// The uniform m-day circular moving average transform of length n
/// (Eq. 11): a = TransferFunction((1/m,...,1/m,0,...,0)), b = 0.
/// Safe in Spol (Theorem 3). Requires 1 <= window <= n.
LinearTransform MovingAverage(size_t n, size_t window, double cost = 0.0);

/// Weighted circular moving-average transform; `weights` is the window
/// (higher trailing weights for trend prediction, per Sec. 3.2).
/// Requires 1 <= weights.size() <= n.
LinearTransform WeightedMovingAverage(size_t n, const RealVec& weights,
                                      double cost = 0.0);

/// Exponentially-weighted moving average transform: the weighted window
/// of ExponentialWeights(alpha, window) pushed into the frequency domain.
/// Safe in Spol. Requires 0 < alpha <= 1, 1 <= window <= n.
LinearTransform ExponentialMovingAverage(size_t n, double alpha,
                                         size_t window, double cost = 0.0);

/// Applies MovingAverage `times` times (successive smoothing, Ex. 2.3).
LinearTransform SuccessiveMovingAverage(size_t n, size_t window, size_t times,
                                        double cost_each = 0.0);

/// Circular first difference: out_t = x_t - x_{t-1} (indices modulo n) —
/// the momentum/trend-change signal of technical analysis, expressed as
/// convolution with the kernel (1, -1, 0, ..., 0). Safe in Spol.
LinearTransform Difference(size_t n, double cost = 0.0);

/// Trev = (-1, 0): reverses the direction of price movements. Safe in both
/// spaces (a is real; b is zero).
LinearTransform Reverse(size_t n, double cost = 0.0);

/// Adds `delta` to every sample. a = 1; b = delta*sqrt(n) at f = 0, else 0.
/// Safe in Srect (Theorem 2) but NOT in Spol (b != 0).
LinearTransform Shift(size_t n, double delta, double cost = 0.0);

/// Multiplies every sample by real `factor` (may be negative). a = factor,
/// b = 0: safe in both spaces.
LinearTransform Scale(size_t n, double factor, double cost = 0.0);

/// Normalization convention for the warped spectrum.
enum class WarpConvention {
  /// Appendix A, Eq. 19 verbatim: the warped series' DFT is normalized by
  /// 1/sqrt(n) (the *original* length), matching the paper's derivation.
  kPaper,
  /// Unitary: the warped series' DFT is normalized by 1/sqrt(m*n) (its own
  /// length), i.e. Eq. 19 divided by sqrt(m). Use this when comparing
  /// against tsq::dft::Forward of the stretched series.
  kUnitary,
};

/// Time-warp transform (Appendix A): maps the first k coefficients of a
/// length-n series to the first k coefficients of its m-fold time-stretched
/// version, a_f = sum_{t=0}^{m-1} e^(-j 2 pi t f / (m n)) (Eq. 19).
/// Coefficients at f >= k are zeroed (the warp is only defined for the
/// indexed prefix). Requires m >= 1, k <= n. Safe in Spol.
LinearTransform TimeWarp(size_t n, size_t m, size_t k,
                         WarpConvention convention = WarpConvention::kUnitary,
                         double cost = 0.0);

}  // namespace transforms
}  // namespace tsq

#endif  // TSQ_TRANSFORM_BUILTIN_H_
