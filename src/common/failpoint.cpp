// Copyright (c) 2026 The tsq Authors.

#include "common/failpoint.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

namespace tsq {
namespace failpoint {
namespace {

/// Global registry state. Sites are heap-allocated and never freed so
/// the pointers cached in call-site statics stay valid through exit.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Site*> sites;
  /// Specs parsed from TSQ_FAILPOINTS for names not yet registered.
  std::map<std::string, std::string> pending_env;
  bool env_parsed = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Parses TSQ_FAILPOINTS ("name=spec;name=spec") into pending_env.
/// Called once under the registry mutex. Malformed entries are skipped
/// (a bad env var must not take down the process at startup); the spec
/// itself is validated when applied.
void ParseEnvLocked(Registry* registry) {
  if (registry->env_parsed) return;
  registry->env_parsed = true;
  const char* env = std::getenv("TSQ_FAILPOINTS");
  if (env == nullptr) return;
  std::string all(env);
  size_t start = 0;
  while (start <= all.size()) {
    size_t end = all.find(';', start);
    if (end == std::string::npos) end = all.size();
    const std::string entry = all.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "tsq: ignoring malformed TSQ_FAILPOINTS entry '%s'\n",
                   entry.c_str());
      continue;
    }
    registry->pending_env[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
}

Site* FindOrCreateLocked(Registry* registry, const std::string& name) {
  auto it = registry->sites.find(name);
  if (it != registry->sites.end()) return it->second;
  Site* site = new Site(name);
  registry->sites.emplace(name, site);
  return site;
}

}  // namespace

/// The one friend of Site: every touch of a site's locked state funnels
/// through these static helpers.
struct SiteAccess {
  /// Recomputes the armed flag from the action/callback state; caller
  /// holds site->mutex_.
  static void PublishArmedLocked(Site* site, ActionKind action,
                                 bool has_callback) {
    const bool armed = action != ActionKind::kOff || has_callback;
    site->armed_.store(armed ? 1 : 0, std::memory_order_relaxed);
  }

  /// Installs a fully-parsed action. Caller holds no locks.
  static void Install(Site* site, ActionKind action, int error_errno,
                      size_t bytes, uint64_t skip, int64_t remaining) {
    std::lock_guard<std::mutex> lock(site->mutex_);
    site->action_ = action;
    site->error_errno_ = error_errno;
    site->bytes_ = bytes;
    site->skip_ = skip;
    site->remaining_ = remaining;
    PublishArmedLocked(site, action, site->callback_ != nullptr);
  }

  /// The locked half of Evaluate: bumps the hit counter, consumes
  /// skip/count bookkeeping, snapshots the callback. The callback is
  /// returned rather than run so Evaluate can invoke it outside the
  /// site mutex (callbacks may park the calling thread).
  static Decision Consume(Site* site, std::function<void(uint64_t)>* callback) {
    site->hits_.fetch_add(1, std::memory_order_relaxed);
    Decision decision;
    std::lock_guard<std::mutex> lock(site->mutex_);
    *callback = site->callback_;
    if (site->action_ != ActionKind::kOff) {
      if (site->skip_ > 0) {
        --site->skip_;
      } else {
        decision.kind = site->action_;
        decision.error_errno = site->error_errno_;
        decision.bytes = site->bytes_;
        // remaining_ < 0 fires forever; a positive count disarms the
        // action once its last shot (this one) is taken.
        if (site->remaining_ > 0 && --site->remaining_ == 0) {
          site->action_ = ActionKind::kOff;
          PublishArmedLocked(site, ActionKind::kOff,
                             site->callback_ != nullptr);
        }
      }
    }
    return decision;
  }

  /// Disarms everything, callback included.
  static void Reset(Site* site) {
    std::lock_guard<std::mutex> lock(site->mutex_);
    site->action_ = ActionKind::kOff;
    site->error_errno_ = 0;
    site->bytes_ = 0;
    site->skip_ = 0;
    site->remaining_ = -1;
    site->callback_ = nullptr;
    PublishArmedLocked(site, ActionKind::kOff, false);
  }

  static void SetCallback(Site* site, std::function<void(uint64_t)> callback) {
    std::lock_guard<std::mutex> lock(site->mutex_);
    site->callback_ = std::move(callback);
    PublishArmedLocked(site, site->action_, site->callback_ != nullptr);
  }
};

namespace {

/// Applies a parsed spec to a site. Caller holds no locks.
Status ApplySpec(Site* site, const std::string& spec) {
  ActionKind action = ActionKind::kOff;
  int error_errno = EIO;
  size_t bytes = 0;
  uint64_t skip = 0;
  int64_t remaining = -1;

  const size_t colon = spec.find(':');
  const std::string head = spec.substr(0, colon);
  if (head == "off") {
    action = ActionKind::kOff;
  } else if (head == "error") {
    action = ActionKind::kError;
  } else if (head == "enospc") {
    action = ActionKind::kEnospc;
    error_errno = ENOSPC;
  } else if (head == "short") {
    action = ActionKind::kShortWrite;
  } else if (head == "torn") {
    action = ActionKind::kTornWrite;
  } else if (head == "crash") {
    action = ActionKind::kCrash;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + head +
                                   "' in spec '" + spec + "'");
  }

  if (colon != std::string::npos) {
    std::string mods = spec.substr(colon + 1);
    size_t start = 0;
    while (start <= mods.size()) {
      size_t end = mods.find(',', start);
      if (end == std::string::npos) end = mods.size();
      const std::string mod = mods.substr(start, end - start);
      start = end + 1;
      if (mod.empty()) continue;
      const size_t eq = mod.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("failpoint modifier '" + mod +
                                       "' is not key=value");
      }
      const std::string key = mod.substr(0, eq);
      const std::string value = mod.substr(eq + 1);
      char* parse_end = nullptr;
      errno = 0;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &parse_end, 10);
      if (value.empty() || *parse_end != '\0' || errno != 0) {
        return Status::InvalidArgument("failpoint modifier value '" + value +
                                       "' is not a number");
      }
      if (key == "skip") {
        skip = parsed;
      } else if (key == "count") {
        remaining = static_cast<int64_t>(parsed);
      } else if (key == "bytes") {
        bytes = static_cast<size_t>(parsed);
      } else if (key == "errno") {
        error_errno = static_cast<int>(parsed);
      } else {
        return Status::InvalidArgument("unknown failpoint modifier '" + key +
                                       "'");
      }
    }
  }

  if (remaining == 0) action = ActionKind::kOff;  // count=0 never fires

  SiteAccess::Install(site, action, error_errno, bytes, skip, remaining);
  return Status::OK();
}

}  // namespace

Site* Register(const char* name) {
  Registry& registry = GetRegistry();
  Site* site = nullptr;
  std::string pending;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    ParseEnvLocked(&registry);
    site = FindOrCreateLocked(&registry, name);
    auto it = registry.pending_env.find(name);
    if (it != registry.pending_env.end()) {
      pending = it->second;
      registry.pending_env.erase(it);
    }
  }
  if (!pending.empty()) {
    const Status applied = ApplySpec(site, pending);
    if (!applied.ok()) {
      std::fprintf(stderr, "tsq: bad TSQ_FAILPOINTS spec for '%s': %s\n", name,
                   applied.ToString().c_str());
    }
  }
  return site;
}

void CrashProcess(const char* site_name) {
  std::fprintf(stderr, "tsq: failpoint '%s' terminating the process\n",
               site_name);
  ::_exit(kCrashExitCode);
}

Decision Evaluate(Site* site, uint64_t arg) {
  std::function<void(uint64_t)> callback;
  const Decision decision = SiteAccess::Consume(site, &callback);
  if (callback) callback(arg);
  if (decision.kind == ActionKind::kCrash) CrashProcess(site->name().c_str());
  return decision;
}

Status Configure(const std::string& name, const std::string& spec) {
  Site* site = Register(name.c_str());
  return ApplySpec(site, spec);
}

void Clear(const std::string& name) {
  Registry& registry = GetRegistry();
  Site* site = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.sites.find(name);
    if (it == registry.sites.end()) return;
    site = it->second;
  }
  SiteAccess::Reset(site);
}

void ClearAll() {
  Registry& registry = GetRegistry();
  std::vector<Site*> sites;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (auto& entry : registry.sites) sites.push_back(entry.second);
  }
  for (Site* site : sites) SiteAccess::Reset(site);
}

void SetCallback(const std::string& name,
                 std::function<void(uint64_t)> callback) {
  Site* site = Register(name.c_str());
  SiteAccess::SetCallback(site, std::move(callback));
}

uint64_t HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(name);
  return it == registry.sites.end() ? 0 : it->second->hits();
}

std::vector<std::string> ArmedSites() {
  Registry& registry = GetRegistry();
  std::vector<std::string> armed;
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& entry : registry.sites) {
    if (entry.second->armed()) armed.push_back(entry.first);
  }
  return armed;
}

Status ErrnoError(int err, const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(err));
}

}  // namespace failpoint
}  // namespace tsq
