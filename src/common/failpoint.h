// Copyright (c) 2026 The tsq Authors.
//
// Central failpoint registry: named, always-compiled fault-injection
// sites at every I/O boundary of the storage stack (page file read/
// write, relation segment append, the merge's temp-tree write + rename,
// positioned pread/pwrite). A disarmed site costs one relaxed atomic
// load; an armed site can fail with an injected errno (EIO, ENOSPC),
// perform a short write (a prefix of the payload reaches the file, then
// the call fails), a torn write (a prefix reaches the file, then the
// process exits — the crash-mid-write signature the recovery code must
// survive), or kill the process outright before touching the file.
//
// Sites also carry an optional callback, invoked on every traversal
// with a site-specific argument (e.g. the PageId being read). Tests use
// it to park a thread inside an I/O path on a gate — the mechanism that
// previously lived in the ad-hoc PageFile Set{Read,Write}HookForTesting
// hooks, now available at every registered site.
//
// Configuration is by name, either through the API below or the
// TSQ_FAILPOINTS environment variable, read once at process start:
//
//   TSQ_FAILPOINTS="relation_append=enospc;page_file_write=error:skip=3"
//
// Spec grammar (case-sensitive):
//   off | error | enospc | short | torn | crash
// optionally followed by ":" and comma-separated modifiers:
//   skip=N    let the first N traversals pass before firing
//   count=N   fire at most N times, then disarm
//   bytes=N   for short/torn: how many payload bytes actually land
//   errno=N   for error/short: the errno to report (default EIO)
//
// Thread safety: every function is safe from any thread. Action state
// is guarded by a per-site mutex; the armed flag is the lock-free fast
// path. Process-exit actions use _exit(kCrashExitCode) so user-space
// buffers are genuinely lost, exactly as in a real crash.

#ifndef TSQ_COMMON_FAILPOINT_H_
#define TSQ_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tsq {
namespace failpoint {

/// Exit code of the torn-write / crash actions; the crash harness
/// asserts the child died with exactly this code, proving the intended
/// site (and not an unrelated abort) terminated it.
inline constexpr int kCrashExitCode = 86;

/// What an armed site does when traversed.
enum class ActionKind {
  kOff = 0,    ///< pass through (callback still runs)
  kError,      ///< fail with the configured errno (default EIO)
  kEnospc,     ///< fail with ENOSPC
  kShortWrite, ///< let `bytes` payload bytes through, then fail
  kTornWrite,  ///< let `bytes` payload bytes through, then _exit
  kCrash,      ///< _exit before the I/O happens
};

/// The outcome of traversing a site: what the call site must do.
/// Process-exit actions never produce a Decision — Evaluate exits.
struct Decision {
  ActionKind kind = ActionKind::kOff;
  int error_errno = 0;  ///< errno to report (kError / kShortWrite)
  size_t bytes = 0;     ///< payload prefix to actually write (short/torn)

  /// True when the call site must inject a fault.
  bool fire() const { return kind != ActionKind::kOff; }
};

/// One named injection site. Obtain with Register (never freed); the
/// armed() check is the only cost on the happy path.
class Site {
 public:
  explicit Site(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Lock-free fast path: false means the traversal is a no-op.
  bool armed() const { return armed_.load(std::memory_order_relaxed) != 0; }

  /// Times this site has been traversed while armed (callback or
  /// action configured).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  /// The registry implementation (failpoint.cpp) manipulates site state
  /// through this single friend; nothing else can.
  friend struct SiteAccess;

  const std::string name_;
  std::atomic<int> armed_{0};
  std::atomic<uint64_t> hits_{0};

  std::mutex mutex_;  // guards everything below
  ActionKind action_ = ActionKind::kOff;
  int error_errno_ = 0;
  size_t bytes_ = 0;
  uint64_t skip_ = 0;        // traversals to pass before firing
  int64_t remaining_ = -1;   // fires left; -1 = unlimited; 0 disarms
  std::function<void(uint64_t)> callback_;
};

/// Finds or creates the site with this name. The returned pointer is
/// valid for the life of the process; call sites cache it in a
/// function-local static. Applies any pending TSQ_FAILPOINTS spec for
/// the name on first registration.
Site* Register(const char* name);

/// Slow path of a traversal: runs the callback (if any) with `arg`,
/// consumes skip/count bookkeeping, and returns what the call site must
/// inject. kCrash (and kTornWrite with bytes already written by the
/// call site) terminate the process inside the call-site logic; Evaluate
/// itself exits only for kCrash.
Decision Evaluate(Site* site, uint64_t arg);

/// The standard call-site traversal: free when disarmed.
inline Decision Check(Site* site, uint64_t arg = 0) {
  if (!site->armed()) return Decision{};
  return Evaluate(site, arg);
}

/// Terminates the process the way a torn write does — exposed so call
/// sites that must flush a partial payload before dying (stdio-buffered
/// writers) can sequence the exit themselves.
[[noreturn]] void CrashProcess(const char* site_name);

/// Arms `name` with a spec string (grammar in the header comment).
/// Registers the site if no call site has reached it yet. "off" clears.
Status Configure(const std::string& name, const std::string& spec);

/// Disarms one site / every site (callbacks included).
void Clear(const std::string& name);
void ClearAll();

/// Installs a callback run on every traversal of `name` (even when no
/// fault action is armed). Pass nullptr to remove. Registers the site
/// if needed.
void SetCallback(const std::string& name,
                 std::function<void(uint64_t)> callback);

/// Hit counter for `name`; 0 if the site was never registered.
uint64_t HitCount(const std::string& name);

/// Names of currently armed sites (for stats / debugging).
std::vector<std::string> ArmedSites();

/// Builds the errno-bearing IOError a call site reports for an injected
/// (or real) failure: "<what> '<path>': <strerror(err)>".
Status ErrnoError(int err, const std::string& what, const std::string& path);

}  // namespace failpoint
}  // namespace tsq

#endif  // TSQ_COMMON_FAILPOINT_H_
