// Copyright (c) 2026 The tsq Authors.
//
// Minimal leveled logger. Database libraries must not write to stdout
// behind the caller's back, so the default sink is stderr and the default
// level is kWarn; harnesses opt into verbosity. The level is also
// configurable from the environment — TSQ_LOG_LEVEL=debug|info|warn|
// error|off (or 0..4) is read on first use — so long-running processes
// like tsqd can be quieted or made chatty without a rebuild.

#ifndef TSQ_COMMON_LOGGING_H_
#define TSQ_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>

namespace tsq {

/// Severity of a log statement, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logger configuration and emission. The level lives in an
/// atomic, so SetLevel may be called at any time — including while other
/// threads log concurrently.
class Logger {
 public:
  /// Sets the minimum severity that is emitted. Thread-safe.
  static void SetLevel(LogLevel level);

  /// Current minimum severity. The initial value comes from the
  /// TSQ_LOG_LEVEL environment variable when set and parsable, else kWarn.
  static LogLevel GetLevel();

  /// Parses "debug"/"info"/"warn"/"warning"/"error"/"off"/"none" (case
  /// insensitive) or a numeric level "0".."4"; nullopt on anything else
  /// (including null/empty).
  static std::optional<LogLevel> ParseLevel(const char* spec);

  /// Re-reads TSQ_LOG_LEVEL and applies it when set and parsable (no-op
  /// otherwise). For processes that adjust the environment after startup
  /// and for tests.
  static void ReloadFromEnv();

  /// Emits one formatted line "[LEVEL] message" to stderr when `level` is at
  /// or above the configured minimum.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style accumulator used by the TSQ_LOG macro; emits at destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tsq

/// Stream-style logging: TSQ_LOG(kInfo) << "built index with " << n;
#define TSQ_LOG(level) \
  ::tsq::internal::LogMessage(::tsq::LogLevel::level)

#endif  // TSQ_COMMON_LOGGING_H_
