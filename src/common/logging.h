// Copyright (c) 2026 The tsq Authors.
//
// Minimal leveled logger. Database libraries must not write to stdout
// behind the caller's back, so the default sink is stderr and the default
// level is kWarn; harnesses opt into verbosity.

#ifndef TSQ_COMMON_LOGGING_H_
#define TSQ_COMMON_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace tsq {

/// Severity of a log statement, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logger configuration and emission.
class Logger {
 public:
  /// Sets the minimum severity that is emitted. Thread-compatible: call at
  /// startup before concurrent use.
  static void SetLevel(LogLevel level);

  /// Current minimum severity.
  static LogLevel GetLevel();

  /// Emits one formatted line "[LEVEL] message" to stderr when `level` is at
  /// or above the configured minimum.
  static void Log(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

namespace internal {

/// Stream-style accumulator used by the TSQ_LOG macro; emits at destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tsq

/// Stream-style logging: TSQ_LOG(kInfo) << "built index with " << n;
#define TSQ_LOG(level) \
  ::tsq::internal::LogMessage(::tsq::LogLevel::level)

#endif  // TSQ_COMMON_LOGGING_H_
