// Copyright (c) 2026 The tsq Authors.
//
// Arrow/RocksDB-style Status and Result<T> types. tsq never throws
// exceptions across library boundaries: every fallible public operation
// returns Status (no payload) or Result<T> (payload or error).

#ifndef TSQ_COMMON_STATUS_H_
#define TSQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace tsq {

/// Machine-readable category of a Status. Mirrors the small set of codes
/// database engines actually branch on.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed parameter.
  kNotFound = 2,          ///< Key / record / file does not exist.
  kAlreadyExists = 3,     ///< Unique key or file already present.
  kOutOfRange = 4,        ///< Index or offset beyond a valid bound.
  kFailedPrecondition = 5,///< Call sequence violated (e.g. index not built).
  kIOError = 6,           ///< Underlying file system failure.
  kCorruption = 7,        ///< On-disk bytes failed validation.
  kUnimplemented = 8,     ///< Feature intentionally not supported.
  kInternal = 9,          ///< Invariant broken; indicates a tsq bug.
  kUnavailable = 10,      ///< Transient overload / shutdown; retry later.
  kReadOnly = 11,         ///< Store degraded to read-only after a write fault.
};

/// Returns a stable human-readable name ("InvalidArgument", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation; error construction is off the fast
/// path so the message string cost is acceptable. The class is final,
/// copyable and cheaply movable.
class Status final {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// True iff this status carries the given code.
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsReadOnly() const { return code_ == StatusCode::kReadOnly; }

  /// "OK" or "<CodeName>: <message>" for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status — tsq's alternative to exceptions
/// for functions that produce a value.
///
/// Usage:
///   Result<Relation> r = Relation::Open(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
///
/// or with the macro:
///   TSQ_ASSIGN_OR_RETURN(Relation rel, Relation::Open(path));
template <typename T>
class Result final {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from an error status. Aborts if the status is OK:
  /// an OK Result must carry a value.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    TSQ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Accessors for the contained value. Aborts when called on an error
  /// Result — callers must test ok() first.
  const T& value() const& {
    TSQ_CHECK_MSG(ok(), "Result::value() on error: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    TSQ_CHECK_MSG(ok(), "Result::value() on error: %s",
                  status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    TSQ_CHECK_MSG(ok(), "Result::value() on error: %s",
                  status_.ToString().c_str());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace tsq

#endif  // TSQ_COMMON_STATUS_H_
