// Copyright (c) 2026 The tsq Authors.

#include "common/logging.h"

#include <cctype>
#include <cstdlib>

namespace tsq {

namespace {

std::atomic<int>& LevelStore() {
  // First use reads TSQ_LOG_LEVEL once; SetLevel overrides at runtime.
  static std::atomic<int> level{
      static_cast<int>(Logger::ParseLevel(std::getenv("TSQ_LOG_LEVEL"))
                           .value_or(LogLevel::kWarn))};
  return level;
}

}  // namespace

std::optional<LogLevel> Logger::ParseLevel(const char* spec) {
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  std::string lower;
  for (const char* p = spec; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

void Logger::ReloadFromEnv() {
  if (auto level = ParseLevel(std::getenv("TSQ_LOG_LEVEL"))) SetLevel(*level);
}

void Logger::SetLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(LevelStore().load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      LevelStore().load(std::memory_order_relaxed)) {
    return;
  }
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "DEBUG";
      break;
    case LogLevel::kInfo:
      tag = "INFO";
      break;
    case LogLevel::kWarn:
      tag = "WARN";
      break;
    case LogLevel::kError:
      tag = "ERROR";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace tsq
