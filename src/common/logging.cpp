// Copyright (c) 2026 The tsq Authors.

#include "common/logging.h"

namespace tsq {

LogLevel Logger::level_ = LogLevel::kWarn;

void Logger::SetLevel(LogLevel level) { level_ = level; }

LogLevel Logger::GetLevel() { return level_; }

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "DEBUG";
      break;
    case LogLevel::kInfo:
      tag = "INFO";
      break;
    case LogLevel::kWarn:
      tag = "WARN";
      break;
    case LogLevel::kError:
      tag = "ERROR";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace tsq
