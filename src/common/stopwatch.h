// Copyright (c) 2026 The tsq Authors.
//
// Wall-clock stopwatch for the benchmark harness and query statistics.

#ifndef TSQ_COMMON_STOPWATCH_H_
#define TSQ_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace tsq {

/// Monotonic stopwatch. Started at construction; restartable.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Elapsed time in milliseconds (as a double, for report tables).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tsq

#endif  // TSQ_COMMON_STOPWATCH_H_
