// Copyright (c) 2026 The tsq Authors.
//
// Deterministic pseudo-random number generation for workload synthesis.
//
// Experiments must be exactly reproducible across runs and platforms, so tsq
// does not use std::mt19937/std::normal_distribution (libstdc++ and libc++
// produce different normal variates). Rng wraps a xoshiro256++ core with
// explicitly specified uniform / normal samplers.

#ifndef TSQ_COMMON_RANDOM_H_
#define TSQ_COMMON_RANDOM_H_

#include <cstdint>

namespace tsq {

/// xoshiro256++ PRNG (Blackman & Vigna) with platform-stable distribution
/// samplers. Not cryptographic; period 2^256 - 1.
class Rng {
 public:
  /// Seeds the generator. Any seed (including 0) is valid: the state is
  /// expanded with SplitMix64, which never yields the all-zero state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. Uses
  /// rejection sampling, so results are unbiased.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate via the Marsaglia polar method (deterministic
  /// given the seed, unlike std::normal_distribution across libraries).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
  // Marsaglia polar method produces variates in pairs; cache the spare.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace tsq

#endif  // TSQ_COMMON_RANDOM_H_
