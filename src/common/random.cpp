// Copyright (c) 2026 The tsq Authors.

#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace tsq {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64 — used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TSQ_DCHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TSQ_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace tsq
