// Copyright (c) 2026 The tsq Authors.
//
// Core preprocessor utilities shared across all tsq modules: invariant
// checks that abort with a readable message, and class boilerplate helpers.
//
// Following the database-engine convention (and the Google style guide),
// internal invariant violations are programming errors and terminate the
// process; *expected* failures (bad user input, I/O errors) are reported
// through tsq::Status instead (see common/status.h).

#ifndef TSQ_COMMON_MACROS_H_
#define TSQ_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a source-located message when `condition` is
/// false. Enabled in all build types: invariants in a storage engine must
/// hold in release builds too; the cost is a predictable branch.
#define TSQ_CHECK(condition)                                                 \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "TSQ_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #condition);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// TSQ_CHECK with a printf-style explanation appended to the failure text.
#define TSQ_CHECK_MSG(condition, ...)                                        \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "TSQ_CHECK failed at %s:%d: %s: ", __FILE__,      \
                   __LINE__, #condition);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only invariant check; compiles to nothing in NDEBUG builds. Use for
/// checks on hot paths (per-entry loops in node splits, distance kernels).
#ifdef NDEBUG
#define TSQ_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define TSQ_DCHECK(condition) TSQ_CHECK(condition)
#endif

/// Marks an intentionally unused variable (e.g. a parameter kept for API
/// symmetry).
#define TSQ_UNUSED(x) (void)(x)

/// Deletes copy construction/assignment. Place in the public section.
#define TSQ_DISALLOW_COPY(ClassName)      \
  ClassName(const ClassName&) = delete;   \
  ClassName& operator=(const ClassName&) = delete

/// Deletes copy and move construction/assignment.
#define TSQ_DISALLOW_COPY_AND_MOVE(ClassName) \
  TSQ_DISALLOW_COPY(ClassName);               \
  ClassName(ClassName&&) = delete;            \
  ClassName& operator=(ClassName&&) = delete

/// Propagates a non-OK tsq::Status from the current function.
#define TSQ_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::tsq::Status _tsq_status = (expr);           \
    if (!_tsq_status.ok()) return _tsq_status;    \
  } while (0)

/// Evaluates an expression yielding Result<T>; on success assigns the value
/// to `lhs`, on failure propagates the Status. `lhs` may declare a variable.
#define TSQ_ASSIGN_OR_RETURN(lhs, expr)                      \
  TSQ_ASSIGN_OR_RETURN_IMPL_(                                \
      TSQ_STATUS_MACROS_CONCAT_(_tsq_result, __LINE__), lhs, expr)

#define TSQ_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#define TSQ_STATUS_MACROS_CONCAT_(x, y) TSQ_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define TSQ_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // TSQ_COMMON_MACROS_H_
