// Copyright (c) 2026 The tsq Authors.

#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "common/stopwatch.h"

namespace tsq {
namespace engine {

QueryEngine::QueryEngine(const KIndex* index, const Relation* relation,
                         const SubsequenceIndex* subsequence_index,
                         const QueryEngineOptions& options)
    : index_(index),
      relation_(relation),
      subsequence_index_(subsequence_index),
      pool_(options.threads) {
  TSQ_CHECK(relation_ != nullptr);
}

void QueryEngine::RunOne(const BatchQuery& query, BatchResult* result) const {
  switch (query.kind) {
    case BatchQueryKind::kRange:
      if (index_ == nullptr) {
        result->status =
            Status::FailedPrecondition("range query without a KIndex");
        return;
      }
      result->status =
          IndexRangeQuery(*index_, *relation_, query.query, query.epsilon,
                          query.spec, &result->matches, &result->stats);
      return;
    case BatchQueryKind::kKnn:
      if (index_ == nullptr) {
        result->status =
            Status::FailedPrecondition("kNN query without a KIndex");
        return;
      }
      result->status =
          IndexKnnQuery(*index_, *relation_, query.query, query.k, query.spec,
                        &result->matches, &result->stats);
      return;
    case BatchQueryKind::kSubsequence:
      if (subsequence_index_ == nullptr) {
        result->status = Status::FailedPrecondition(
            "subsequence query without a SubsequenceIndex");
        return;
      }
      result->status = subsequence_index_->RangeSearch(
          query.query, query.epsilon,
          [this](SeriesId id) -> Result<RealVec> {
            TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation_->Get(id));
            return std::move(rec.values);
          },
          &result->subsequence_matches, &result->stats);
      return;
  }
  result->status = Status::InvalidArgument("unknown batch query kind");
}

std::vector<BatchResult> QueryEngine::RunBatch(
    const std::vector<BatchQuery>& queries, BatchStats* batch_stats) {
  std::vector<BatchResult> results(queries.size());
  Stopwatch wall;

  // Exact engine-wide traversal deltas, measured around the whole batch
  // (per-query deltas overlap under concurrency; see header).
  rtree::TraversalStats tree_before;
  BufferPoolStats pool_before;
  if (index_ != nullptr) {
    tree_before = index_->tree()->stats();
    pool_before = index_->pool()->stats();
  }

  // Work stealing over an atomic cursor: drivers (one per worker) pull the
  // next unclaimed query. Each query writes only its own slot, so the
  // output is identical for any thread count. Wait() below keeps every
  // captured reference alive until the drivers drain.
  std::atomic<size_t> cursor{0};
  const size_t drivers = std::min(pool_.size(), queries.size());
  for (size_t d = 0; d < drivers; ++d) {
    pool_.Submit([this, &cursor, &queries, &results] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) return;
        RunOne(queries[i], &results[i]);
      }
    });
  }
  pool_.Wait();

  if (batch_stats != nullptr) {
    *batch_stats = BatchStats();
    for (const BatchResult& r : results) {
      batch_stats->aggregate.Merge(r.stats);
    }
    if (index_ != nullptr) {
      const rtree::TraversalStats& t = index_->tree()->stats();
      const BufferPoolStats& p = index_->pool()->stats();
      batch_stats->aggregate.nodes_visited =
          t.nodes_visited - tree_before.nodes_visited;
      batch_stats->aggregate.rect_transforms =
          t.rect_transforms - tree_before.rect_transforms;
      batch_stats->aggregate.disk_reads =
          p.disk_reads - pool_before.disk_reads;
    }
    batch_stats->wall_ms = wall.ElapsedMillis();
  }
  return results;
}

Result<std::vector<JoinPair>> QueryEngine::SelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    QueryStats* stats) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("SelfJoin without a KIndex");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  Stopwatch watch;
  const rtree::TraversalStats tree_before = index_->tree()->stats();
  const BufferPoolStats pool_before = index_->pool()->stats();

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index_->space().ToAffineMap(*transform));
  }
  const spatial::AffineMap* map_ptr = map.has_value() ? &*map : nullptr;

  // Phase 1 (sequential, index space only): one synchronized descent of
  // the tree against its transformed self collects the candidate leaf
  // pairs — the same traversal TreeMatchSelfJoin performs.
  std::vector<std::pair<SeriesId, SeriesId>> candidates;
  TSQ_RETURN_IF_ERROR(index_->tree()->JoinWith(
      *index_->tree(), map_ptr, map_ptr,
      index_->space().MakeJoinPredicate(epsilon),
      [&candidates](uint64_t a, uint64_t b) {
        if (a != b) candidates.emplace_back(a, b);
        return true;
      }));

  // Phase 2a (parallel): fetch and transform every referenced record
  // exactly once into a dense shared cache — the same total work as the
  // sequential TreeMatchSelfJoin cache, just split across workers. Series
  // ids are dense (0..relation.size()-1), so a vector indexes the cache
  // and each slot is written by exactly one worker.
  const uint64_t relation_size = relation_->size();
  std::vector<uint8_t> referenced(relation_size, 0);
  for (const auto& [a, b] : candidates) {
    referenced[a] = 1;
    referenced[b] = 1;
  }
  std::vector<SeriesId> unique_ids;
  for (SeriesId id = 0; id < relation_size; ++id) {
    if (referenced[id] != 0) unique_ids.push_back(id);
  }

  const size_t fetch_partitions =
      std::max<size_t>(1, std::min(unique_ids.size(), pool_.size()));
  const size_t fetch_size =
      (unique_ids.size() + fetch_partitions - 1) / fetch_partitions;
  std::vector<ComplexVec> spectra(relation_size);
  std::vector<Status> fetch_status(fetch_partitions);
  for (size_t p = 0; p < fetch_partitions; ++p) {
    pool_.Submit([&, p] {
      const size_t begin = p * fetch_size;
      const size_t end = std::min(begin + fetch_size, unique_ids.size());
      for (size_t i = begin; i < end; ++i) {
        const SeriesId id = unique_ids[i];
        Result<SeriesRecord> rec = relation_->Get(id);
        if (!rec.ok()) {
          fetch_status[p] = rec.status();
          return;
        }
        spectra[id] = transform.has_value()
                          ? transform->spectral.Apply(rec->dft)
                          : std::move(rec->dft);
      }
    });
  }
  pool_.Wait();
  for (const Status& s : fetch_status) {
    TSQ_RETURN_IF_ERROR(s);
  }

  // Phase 2b (parallel): split the candidate pairs into contiguous
  // partitions and verify each on a worker against the now-immutable
  // shared cache. Partition answers land in per-partition vectors.
  const size_t num_partitions =
      std::max<size_t>(1, std::min(candidates.size(), pool_.size() * 8));
  const size_t partition_size =
      (candidates.size() + num_partitions - 1) / num_partitions;
  std::vector<std::vector<JoinPair>> partition_out(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    pool_.Submit([&, p] {
      const size_t begin = p * partition_size;
      const size_t end = std::min(begin + partition_size, candidates.size());
      for (size_t i = begin; i < end; ++i) {
        const auto& [a, b] = candidates[i];
        const double d = cvec::Distance(spectra[a], spectra[b]);
        if (d <= epsilon) partition_out[p].push_back(JoinPair{a, b, d});
      }
    });
  }
  pool_.Wait();

  // Phase 3 (sequential): merge in partition order. Partitions tile the
  // candidate sequence, so the concatenation is exactly the sequential
  // TreeMatchSelfJoin output — deterministic for any thread count.
  std::vector<JoinPair> out;
  size_t total = 0;
  for (const std::vector<JoinPair>& part : partition_out) {
    total += part.size();
  }
  out.reserve(total);
  for (std::vector<JoinPair>& part : partition_out) {
    out.insert(out.end(), part.begin(), part.end());
  }

  if (stats != nullptr) {
    stats->candidates += candidates.size();
    stats->verified += unique_ids.size();
    stats->answers += out.size();
    const rtree::TraversalStats& t = index_->tree()->stats();
    const BufferPoolStats& p = index_->pool()->stats();
    stats->nodes_visited += t.nodes_visited - tree_before.nodes_visited;
    stats->rect_transforms +=
        t.rect_transforms - tree_before.rect_transforms;
    stats->disk_reads += p.disk_reads - pool_before.disk_reads;
    stats->elapsed_ms += watch.ElapsedMillis();
  }
  return out;
}

}  // namespace engine
}  // namespace tsq
