// Copyright (c) 2026 The tsq Authors.

#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/stopwatch.h"
#include "core/search_rect.h"
#include "obs/trace.h"

namespace tsq {
namespace engine {

namespace {

/// Accumulates traversal/IO work tallied from many worker threads. Each
/// worker measures its own thread-local counter deltas (exact by the v2
/// contract) and adds them here.
struct TraversalTally {
  std::atomic<uint64_t> nodes_visited{0};
  std::atomic<uint64_t> rect_transforms{0};
  std::atomic<uint64_t> disk_reads{0};
};

/// Runs `fn`, adds the thread-local tree/pool counter deltas it caused on
/// this thread into `tally`, and forwards fn's return value (if any).
template <typename Fn>
auto RunTallied(TraversalTally* tally, Fn&& fn) {
  const rtree::ThreadTraversalCounters tree_before =
      rtree::ThisThreadTraversalCounters();
  const ThreadPoolCounters pool_before = ThisThreadPoolCounters();
  const auto record = [&] {
    const rtree::ThreadTraversalCounters& tree_after =
        rtree::ThisThreadTraversalCounters();
    const ThreadPoolCounters& pool_after = ThisThreadPoolCounters();
    tally->nodes_visited.fetch_add(
        tree_after.nodes_visited - tree_before.nodes_visited,
        std::memory_order_relaxed);
    tally->rect_transforms.fetch_add(
        tree_after.rect_transforms - tree_before.rect_transforms,
        std::memory_order_relaxed);
    tally->disk_reads.fetch_add(
        pool_after.disk_reads - pool_before.disk_reads,
        std::memory_order_relaxed);
  };
  if constexpr (std::is_void_v<std::invoke_result_t<Fn>>) {
    fn();
    record();
  } else {
    auto result = fn();
    record();
    return result;
  }
}

}  // namespace

QueryEngine::QueryEngine(SnapshotLoader loader, const Relation* relation,
                         const SubsequenceIndex* subsequence_index,
                         const QueryEngineOptions& options)
    : loader_(std::move(loader)),
      index_(nullptr),
      relation_(relation),
      subsequence_index_(subsequence_index),
      pool_(options.threads) {
  TSQ_CHECK(loader_ != nullptr);
  TSQ_CHECK(relation_ != nullptr);
}

QueryEngine::QueryEngine(const KIndex* index, const Relation* relation,
                         const SubsequenceIndex* subsequence_index,
                         const QueryEngineOptions& options)
    : index_(index),
      relation_(relation),
      subsequence_index_(subsequence_index),
      pool_(options.threads) {
  TSQ_CHECK(relation_ != nullptr);
}

QueryEngine::PinnedView QueryEngine::AcquireView() const {
  PinnedView pinned;
  if (loader_ != nullptr) {
    pinned.pin = loader_();
    if (pinned.pin != nullptr && pinned.pin->main != nullptr) {
      pinned.view.emplace(*pinned.pin);
    }
    return pinned;
  }
  if (index_ != nullptr) pinned.view.emplace(*index_);
  return pinned;
}

void QueryEngine::RunOne(const BatchQuery& query, const IndexView* view,
                         BatchResult* result) const {
  switch (query.kind) {
    case BatchQueryKind::kRange:
      if (view == nullptr) {
        result->status =
            Status::FailedPrecondition("range query without a KIndex");
        return;
      }
      result->status =
          IndexRangeQuery(*view, *relation_, query.query, query.epsilon,
                          query.spec, &result->matches, &result->stats);
      return;
    case BatchQueryKind::kKnn:
      if (view == nullptr) {
        result->status =
            Status::FailedPrecondition("kNN query without a KIndex");
        return;
      }
      result->status =
          IndexKnnQuery(*view, *relation_, query.query, query.k, query.spec,
                        query.knn, &result->matches, &result->stats);
      return;
    case BatchQueryKind::kSubsequence: {
      if (subsequence_index_ == nullptr) {
        result->status = Status::FailedPrecondition(
            "subsequence query without a SubsequenceIndex");
        return;
      }
      // The ST-index fills its own stats; stage deltas (the whole search
      // counts as descent, record fetches as refine) are captured here
      // since this path does not run through core/queries.cpp.
      StageStatsCapture stages(&result->stats);
      obs::StageTimer descent_span(obs::Stage::kDescent);
      result->status = subsequence_index_->RangeSearch(
          query.query, query.epsilon,
          [this](SeriesId id) -> Result<RealVec> {
            obs::StageTimer refine_span(obs::Stage::kRefine);
            TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation_->Get(id));
            return std::move(rec.values);
          },
          &result->subsequence_matches, &result->stats);
      return;
    }
  }
  result->status = Status::InvalidArgument("unknown batch query kind");
}

std::vector<BatchResult> QueryEngine::RunBatch(
    const std::vector<BatchQuery>& queries, BatchStats* batch_stats) {
  std::vector<BatchResult> results(queries.size());
  Stopwatch wall;

  // One snapshot per batch: every query of the batch answers from the
  // same epoch, pinned until the batch completes (grace period).
  const PinnedView pinned = AcquireView();
  const IndexView* view =
      pinned.view.has_value() ? &*pinned.view : nullptr;

  // Work stealing over an atomic cursor: each query writes only its own
  // slot, so the output is identical for any thread count.
  pool_.ParallelFor(queries.size(),
                    [this, view, &queries, &results](size_t i) {
                      RunOne(queries[i], view, &results[i]);
                    });

  if (batch_stats != nullptr) {
    *batch_stats = BatchStats();
    // Per-query stats are exact (thread-local counter deltas), so the
    // aggregate is simply their sum — no whole-batch shared-counter
    // measurement needed.
    for (const BatchResult& r : results) {
      batch_stats->aggregate.Merge(r.stats);
    }
    batch_stats->wall_ms = wall.ElapsedMillis();
  }
  return results;
}

Result<std::vector<JoinPair>> QueryEngine::SelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    QueryStats* stats) {
  // Pin one snapshot for the whole join (grace period across merges).
  const PinnedView pinned = AcquireView();
  if (!pinned.view.has_value()) {
    return Status::FailedPrecondition("SelfJoin without a KIndex");
  }
  const IndexView& view = *pinned.view;
  const KIndex& kindex = view.main();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  Stopwatch watch;
  TraversalTally tally;

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, kindex.space().ToAffineMap(*transform));
  }
  const spatial::AffineMap* map_ptr = map.has_value() ? &*map : nullptr;
  const rtree::RStarTree& tree = *kindex.tree();
  const auto may_join = kindex.space().MakeJoinPredicate(epsilon);

  // Phase 1 (parallel descent): the qualifying root-child pairs are
  // independent lockstep-descent tasks (JoinSeeds mirrors the order the
  // sequential traversal would recurse in). Each seed collects candidates
  // into its own buffer; concatenating the buffers in seed order yields
  // exactly the sequential JoinWith candidate sequence, so the join stays
  // bit-identical at every thread count.
  TSQ_ASSIGN_OR_RETURN(
      const std::vector<rtree::RStarTree::JoinSeed> seeds,
      RunTallied(&tally, [&] {
        return tree.JoinSeeds(tree, map_ptr, map_ptr, may_join);
      }));

  std::vector<std::vector<std::pair<SeriesId, SeriesId>>> seed_out(
      seeds.size());
  std::vector<Status> seed_status(seeds.size());
  pool_.ParallelFor(seeds.size(), [&](size_t i) {
    RunTallied(&tally, [&] {
      seed_status[i] = tree.JoinFrom(
          seeds[i], tree, map_ptr, map_ptr, may_join,
          [&out = seed_out[i]](uint64_t a, uint64_t b) {
            if (a != b) out.emplace_back(a, b);
            return true;
          });
    });
  });
  size_t num_candidates = 0;
  for (size_t i = 0; i < seeds.size(); ++i) {
    TSQ_RETURN_IF_ERROR(seed_status[i]);
    num_candidates += seed_out[i].size();
  }
  std::vector<std::pair<SeriesId, SeriesId>> candidates;
  candidates.reserve(num_candidates);
  for (std::vector<std::pair<SeriesId, SeriesId>>& part : seed_out) {
    candidates.insert(candidates.end(), part.begin(), part.end());
  }

  // Phase 1b (parallel): delta probes. Each unmerged series in view runs
  // one search-rectangle probe — against the main tree (emitting both
  // ordered pairs) and against the other delta entries (emitting its own
  // direction only; the partner's probe emits the reverse). Per-slot
  // buffers concatenated in slot order keep the candidate sequence — and
  // therefore the final output — identical to the sequential
  // TreeMatchSelfJoin at every thread count.
  if (view.has_delta()) {
    const DeltaIndex& delta = view.delta();
    const uint64_t begin_slot = view.delta_begin();
    const uint64_t num_slots = view.delta_size();
    std::vector<std::vector<std::pair<SeriesId, SeriesId>>> slot_out(
        num_slots);
    std::vector<Status> slot_status(num_slots);
    pool_.ParallelFor(num_slots, [&](size_t i) {
      RunTallied(&tally, [&] {
        const uint64_t slot = begin_slot + i;
        const SeriesId qid = delta.base() + slot;
        Result<SeriesRecord> qrec = relation_->Get(qid);
        if (!qrec.ok()) {
          slot_status[i] = qrec.status();
          return;
        }
        ComplexVec target = transform.has_value()
                                ? transform->spectral.Apply(qrec->dft)
                                : std::move(qrec->dft);
        const ComplexVec coeffs =
            kindex.extractor().StoredCoefficients(target);
        const spatial::Rect rect = BuildSearchRect(kindex.layout(), coeffs,
                                                   epsilon, std::nullopt);
        std::vector<SeriesId> main_partners;
        slot_status[i] =
            map_ptr != nullptr
                ? kindex.RangeCandidatesTransformed(*map_ptr, rect,
                                                    &main_partners)
                : kindex.RangeCandidates(rect, &main_partners);
        if (!slot_status[i].ok()) return;
        for (const SeriesId partner : main_partners) {
          slot_out[i].emplace_back(qid, partner);
          slot_out[i].emplace_back(partner, qid);
        }
        for (uint64_t other = begin_slot; other < begin_slot + num_slots;
             ++other) {
          if (other == slot) continue;
          spatial::Rect other_rect =
              spatial::Rect::FromPoint(delta.PointAt(other));
          if (map_ptr != nullptr) other_rect = map_ptr->Apply(other_rect);
          if (other_rect.Intersects(rect)) {
            slot_out[i].emplace_back(qid, delta.base() + other);
          }
        }
      });
    });
    for (uint64_t i = 0; i < num_slots; ++i) {
      TSQ_RETURN_IF_ERROR(slot_status[i]);
      candidates.insert(candidates.end(), slot_out[i].begin(),
                        slot_out[i].end());
    }
    if (stats != nullptr) stats->records_scanned += num_slots;
  }

  // Phase 2a (parallel): fetch and transform every referenced record
  // exactly once into a dense shared cache. Series ids are dense
  // (0..relation.size()-1), so a vector indexes the cache and each slot is
  // written by exactly one worker.
  const uint64_t relation_size = relation_->size();
  std::vector<uint8_t> referenced(relation_size, 0);
  for (const auto& [a, b] : candidates) {
    if (a >= relation_size || b >= relation_size) {
      // The sequential path would surface this as NotFound from
      // relation.Get; the dense cache must not turn it into an
      // out-of-bounds write.
      return Status::Corruption(
          "join candidate id out of range: index and relation disagree");
    }
    referenced[a] = 1;
    referenced[b] = 1;
  }
  std::vector<SeriesId> unique_ids;
  for (SeriesId id = 0; id < relation_size; ++id) {
    if (referenced[id] != 0) unique_ids.push_back(id);
  }

  std::vector<ComplexVec> spectra(relation_size);
  std::vector<Status> fetch_status(unique_ids.size());
  pool_.ParallelFor(unique_ids.size(), [&](size_t i) {
    const SeriesId id = unique_ids[i];
    Result<SeriesRecord> rec = relation_->Get(id);
    if (!rec.ok()) {
      fetch_status[i] = rec.status();
      return;
    }
    spectra[id] = transform.has_value() ? transform->spectral.Apply(rec->dft)
                                        : std::move(rec->dft);
  });
  for (const Status& s : fetch_status) {
    TSQ_RETURN_IF_ERROR(s);
  }

  // Phase 2b (parallel): split the candidate pairs into contiguous
  // partitions and verify each on a worker against the now-immutable
  // shared cache. Partition answers land in per-partition vectors.
  const size_t num_partitions =
      std::max<size_t>(1, std::min(candidates.size(), pool_.size() * 8));
  const size_t partition_size =
      (candidates.size() + num_partitions - 1) / num_partitions;
  std::vector<std::vector<JoinPair>> partition_out(num_partitions);
  pool_.ParallelFor(num_partitions, [&](size_t p) {
    const size_t begin = p * partition_size;
    const size_t end = std::min(begin + partition_size, candidates.size());
    for (size_t i = begin; i < end; ++i) {
      const auto& [a, b] = candidates[i];
      const double d = cvec::Distance(spectra[a], spectra[b]);
      if (d <= epsilon) partition_out[p].push_back(JoinPair{a, b, d});
    }
  });

  // Phase 3 (sequential): merge in partition order. Partitions tile the
  // candidate sequence, so the concatenation is exactly the sequential
  // TreeMatchSelfJoin output — deterministic for any thread count.
  std::vector<JoinPair> out;
  size_t total = 0;
  for (const std::vector<JoinPair>& part : partition_out) {
    total += part.size();
  }
  out.reserve(total);
  for (std::vector<JoinPair>& part : partition_out) {
    out.insert(out.end(), part.begin(), part.end());
  }

  if (stats != nullptr) {
    stats->candidates += candidates.size();
    stats->verified += unique_ids.size();
    stats->answers += out.size();
    stats->nodes_visited += tally.nodes_visited.load(std::memory_order_relaxed);
    stats->rect_transforms +=
        tally.rect_transforms.load(std::memory_order_relaxed);
    stats->disk_reads += tally.disk_reads.load(std::memory_order_relaxed);
    stats->elapsed_ms += watch.ElapsedMillis();
  }
  return out;
}

}  // namespace engine
}  // namespace tsq
