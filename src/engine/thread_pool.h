// Copyright (c) 2026 The tsq Authors.
//
// A fixed-size worker pool for the batch query engine. Deliberately
// minimal: FIFO task queue, Submit + Wait, no futures — the engine keeps
// results in caller-owned slots, so tasks only need to run, not return.
// Tasks must not throw (tsq never throws across library boundaries;
// fallible work records a Status in its result slot instead).

#ifndef TSQ_ENGINE_THREAD_POOL_H_
#define TSQ_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace tsq {
namespace engine {

/// Fixed pool of worker threads draining one shared FIFO queue.
///
/// Submit may be called from any thread, including from inside a task.
/// Wait blocks until every task submitted so far has finished; it may be
/// called from any non-worker thread (a worker calling Wait would
/// deadlock on itself). The destructor waits for outstanding tasks, then
/// joins the workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  TSQ_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every running task has finished.
  void Wait();

  /// Runs fn(i) for every i in [0, n) on the workers — one driver task per
  /// worker, stealing indices from a shared atomic cursor — and blocks
  /// until all n calls have finished. `fn` is invoked concurrently and
  /// must be reentrant; each index is claimed by exactly one driver.
  /// Completion is tracked per call (not via pool-wide Wait), so
  /// concurrent ParallelFor callers sharing the pool each return as soon
  /// as their own work drains. Like Wait, must be called from a
  /// non-worker thread.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // queue non-empty or stopping
  std::condition_variable idle_cv_;  // in_flight_ hit zero
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace engine
}  // namespace tsq

#endif  // TSQ_ENGINE_THREAD_POOL_H_
