// Copyright (c) 2026 The tsq Authors.

#include "engine/thread_pool.h"

#include <utility>

namespace tsq {
namespace engine {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // the standard allows an unknown count
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TSQ_CHECK_MSG(!stop_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace engine
}  // namespace tsq
