// Copyright (c) 2026 The tsq Authors.

#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace tsq {
namespace engine {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // the standard allows an unknown count
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TSQ_CHECK_MSG(!stop_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> cursor{0};
  const size_t drivers = std::min(size(), n);
  // Per-call completion (not pool-wide Wait): this caller returns as soon
  // as its own drivers have drained, so concurrent ParallelFor calls on a
  // shared pool don't convoy on each other's work. A driver exits only
  // after the cursor passes n, so once every driver has exited, all n
  // indices are claimed *and* finished — at which point this frame (and
  // the locals the drivers reference) may safely die.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t exited = 0;
  for (size_t d = 0; d < drivers; ++d) {
    Submit([&cursor, &fn, n, &done_mutex, &done_cv, &exited, drivers] {
      for (;;) {
        const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++exited == drivers) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&exited, drivers] { return exited == drivers; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace engine
}  // namespace tsq
