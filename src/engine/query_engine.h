// Copyright (c) 2026 The tsq Authors.
//
// The concurrent batch query engine: executes batches of range, kNN and
// subsequence queries — plus a parallel partitioned self-join — against a
// shared read-only KIndex + Relation (and optionally a SubsequenceIndex)
// on a fixed thread pool.
//
// Execution model. The index stack is frozen while an engine uses it (no
// Insert/BuildIndex concurrently); every query is a reentrant composition
// of the Algorithm 2 steps in core/queries.h, so workers share the tree,
// buffer pool and relation without copying them. Under the v3 pool,
// workers touching cached index pages never synchronize at all — a hit is
// an optimistic lock-free pin — and a worker's cache miss reads from disk
// without blocking same-shard hits by the others, so the only cross-
// worker contention left in the read path is frame claim/eviction on
// concurrent misses. Batches are executed with work stealing over an
// atomic cursor (ThreadPool::ParallelFor); each query writes into its own
// pre-allocated result slot, so results[i] always corresponds to
// queries[i] and the answer vectors are bit-identical for any thread
// count (each query's computation is sequential and self-contained).
//
// Stats (v3: exact, lock-free included). Every per-query counter —
// including the traversal fields nodes_visited, rect_transforms and
// disk_reads — is exact under any concurrency: a query runs entirely on
// one thread, and the tree and buffer pool mirror their shared atomic
// counters into thread-local ones (rtree::ThisThreadTraversalCounters,
// ThisThreadPoolCounters), so a query's before/after delta on its own
// thread can never include a neighbour query's work. The v3 pool
// classifies each fetch as hit or miss exactly once no matter how many
// optimistic retries or load-waits it goes through, so the deltas stay
// exact on the lock-free path too. BatchStats::aggregate is simply the
// sum of the per-query stats. The parallel self-join tallies each
// worker's thread-local deltas the same way, so its QueryStats are exact
// even while other batches run on the engine.

#ifndef TSQ_ENGINE_QUERY_ENGINE_H_
#define TSQ_ENGINE_QUERY_ENGINE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/k_index.h"
#include "core/queries.h"
#include "core/subsequence.h"
#include "engine/thread_pool.h"
#include "storage/relation.h"

namespace tsq {
namespace engine {

/// Engine construction parameters.
struct QueryEngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  size_t threads = 0;
};

/// What one batch entry asks for.
enum class BatchQueryKind {
  kRange,        ///< Algorithm 2 range query (needs the KIndex)
  kKnn,          ///< optimal multi-step kNN (needs the KIndex)
  kSubsequence,  ///< [FRM94] subsequence range search (needs the ST-index)
};

/// One query of a batch.
struct BatchQuery {
  BatchQueryKind kind = BatchQueryKind::kRange;
  RealVec query;
  double epsilon = 0.0;  ///< range / subsequence threshold
  size_t k = 0;          ///< kNN answer count
  QuerySpec spec;        ///< transform/mode/window (range and kNN)
};

/// One query's outcome. `status` is per-query: a malformed query fails
/// alone without aborting its batch.
struct BatchResult {
  Status status;
  std::vector<Match> matches;  ///< range/kNN answers
  std::vector<SubsequenceMatch> subsequence_matches;
  QueryStats stats;
};

/// A whole batch's outcome.
struct BatchStats {
  /// Sum of every per-query stats; exact (see header comment).
  QueryStats aggregate;
  /// Wall-clock time of the batch, parallelism included.
  double wall_ms = 0.0;
};

/// Concurrent executor over a frozen index/relation pair. Thread-safe:
/// RunBatch/SelfJoin may be called from several threads at once, sharing
/// the pool.
class QueryEngine {
 public:
  /// `index` may be null when the engine only serves subsequence queries;
  /// `subsequence_index` may be null when it only serves whole-series
  /// queries. `relation` must not be null. All referenced components must
  /// outlive the engine and must not be mutated while it runs.
  QueryEngine(const KIndex* index, const Relation* relation,
              const SubsequenceIndex* subsequence_index = nullptr,
              const QueryEngineOptions& options = {});

  TSQ_DISALLOW_COPY_AND_MOVE(QueryEngine);

  /// Number of worker threads.
  size_t threads() const { return pool_.size(); }

  /// Executes every query of the batch on the pool. results[i] answers
  /// queries[i]; identical output for any thread count. `batch_stats` is
  /// optional.
  std::vector<BatchResult> RunBatch(const std::vector<BatchQuery>& queries,
                                    BatchStats* batch_stats = nullptr);

  /// Fully parallel self-join. Phase 1 splits the synchronized R*-tree
  /// descent itself across the workers: the qualifying root-child pairs
  /// (rtree::RStarTree::JoinSeeds) are independent descent tasks, each
  /// worker collects candidates into a per-seed buffer, and the buffers
  /// are concatenated in seed order — exactly the sequential JoinWith
  /// candidate sequence. Phase 2 fetches+transforms every referenced
  /// record exactly once into a shared dense cache and partitions the
  /// candidate pairs across the workers for full-length verification,
  /// merging per-partition answers in partition order. The output
  /// reproduces TreeMatchSelfJoin exactly — same pairs, same order — for
  /// any thread count, and `stats` is exact (per-worker thread-local
  /// tallies). Requires a KIndex.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      QueryStats* stats = nullptr);

 private:
  void RunOne(const BatchQuery& query, BatchResult* result) const;

  const KIndex* index_;
  const Relation* relation_;
  const SubsequenceIndex* subsequence_index_;
  ThreadPool pool_;
};

}  // namespace engine
}  // namespace tsq

#endif  // TSQ_ENGINE_QUERY_ENGINE_H_
