// Copyright (c) 2026 The tsq Authors.
//
// The concurrent batch query engine: executes batches of range, kNN and
// subsequence queries — plus a parallel partitioned self-join — against an
// epoch-published index snapshot + Relation (and optionally a
// SubsequenceIndex) on a fixed thread pool.
//
// Execution model. The engine acquires one IndexSnapshot per operation
// through its snapshot loader (an acquire load of the database's epoch
// pointer) and pins it for the operation's whole lifetime, so a batch
// runs against a single frozen view — the main R*-tree plus the delta
// range visible at acquisition — no matter how many merges publish new
// epochs meanwhile; the shared_ptr pin is the grace period that keeps the
// old tree alive until the last in-flight operation drops it. Every query
// is a reentrant composition of the Algorithm 2 steps in core/queries.h,
// so workers share the tree, buffer pool and relation without copying
// them. (The legacy constructor over a bare KIndex pointer still treats
// the index as externally frozen.) Under the v3 pool,
// workers touching cached index pages never synchronize at all — a hit is
// an optimistic lock-free pin — and a worker's cache miss reads from disk
// without blocking same-shard hits by the others, so the only cross-
// worker contention left in the read path is frame claim/eviction on
// concurrent misses. Batches are executed with work stealing over an
// atomic cursor (ThreadPool::ParallelFor); each query writes into its own
// pre-allocated result slot, so results[i] always corresponds to
// queries[i] and the answer vectors are bit-identical for any thread
// count (each query's computation is sequential and self-contained).
//
// Stats (v3: exact, lock-free included). Every per-query counter —
// including the traversal fields nodes_visited, rect_transforms and
// disk_reads — is exact under any concurrency: a query runs entirely on
// one thread, and the tree and buffer pool mirror their shared atomic
// counters into thread-local ones (rtree::ThisThreadTraversalCounters,
// ThisThreadPoolCounters), so a query's before/after delta on its own
// thread can never include a neighbour query's work. The v3 pool
// classifies each fetch as hit or miss exactly once no matter how many
// optimistic retries or load-waits it goes through, so the deltas stay
// exact on the lock-free path too. BatchStats::aggregate is simply the
// sum of the per-query stats. The parallel self-join tallies each
// worker's thread-local deltas the same way, so its QueryStats are exact
// even while other batches run on the engine.

#ifndef TSQ_ENGINE_QUERY_ENGINE_H_
#define TSQ_ENGINE_QUERY_ENGINE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/index_snapshot.h"
#include "core/k_index.h"
#include "core/queries.h"
#include "core/subsequence.h"
#include "engine/thread_pool.h"
#include "storage/relation.h"

namespace tsq {
namespace engine {

/// Engine construction parameters.
struct QueryEngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  size_t threads = 0;
};

/// What one batch entry asks for.
enum class BatchQueryKind {
  kRange,        ///< Algorithm 2 range query (needs the KIndex)
  kKnn,          ///< optimal multi-step kNN (needs the KIndex)
  kSubsequence,  ///< [FRM94] subsequence range search (needs the ST-index)
};

/// One query of a batch.
struct BatchQuery {
  BatchQueryKind kind = BatchQueryKind::kRange;
  RealVec query;
  double epsilon = 0.0;  ///< range / subsequence threshold
  size_t k = 0;          ///< kNN answer count
  QuerySpec spec;        ///< transform/mode/window (range and kNN)
  KnnOptions knn;        ///< kNN approximation knobs (default = exact)
};

/// One query's outcome. `status` is per-query: a malformed query fails
/// alone without aborting its batch.
struct BatchResult {
  Status status;
  std::vector<Match> matches;  ///< range/kNN answers
  std::vector<SubsequenceMatch> subsequence_matches;
  QueryStats stats;
};

/// A whole batch's outcome.
struct BatchStats {
  /// Sum of every per-query stats; exact (see header comment).
  QueryStats aggregate;
  /// Wall-clock time of the batch, parallelism included.
  double wall_ms = 0.0;
};

/// Loads the current index snapshot; returns null when no index is
/// built yet. Must be callable from any thread (an atomic load).
using SnapshotLoader =
    std::function<std::shared_ptr<const IndexSnapshot>()>;

/// Concurrent executor over an epoch-published index + relation pair.
/// Thread-safe: RunBatch/SelfJoin may be called from several threads at
/// once, sharing the pool.
class QueryEngine {
 public:
  /// Epoch-published engine: each operation loads the loader's current
  /// snapshot and runs entirely against it, safely concurrent with
  /// ingest and merges. `loader` must not be null (it may return null
  /// while no index exists); `relation` must not be null;
  /// `subsequence_index` may be null when the engine only serves
  /// whole-series queries.
  QueryEngine(SnapshotLoader loader, const Relation* relation,
              const SubsequenceIndex* subsequence_index = nullptr,
              const QueryEngineOptions& options = {});

  /// Legacy frozen-index engine (tests, tools): `index` may be null when
  /// the engine only serves subsequence queries; it must not be mutated
  /// while the engine runs. `relation` must not be null.
  QueryEngine(const KIndex* index, const Relation* relation,
              const SubsequenceIndex* subsequence_index = nullptr,
              const QueryEngineOptions& options = {});

  TSQ_DISALLOW_COPY_AND_MOVE(QueryEngine);

  /// Number of worker threads.
  size_t threads() const { return pool_.size(); }

  /// Executes every query of the batch on the pool. results[i] answers
  /// queries[i]; identical output for any thread count. `batch_stats` is
  /// optional.
  std::vector<BatchResult> RunBatch(const std::vector<BatchQuery>& queries,
                                    BatchStats* batch_stats = nullptr);

  /// Fully parallel self-join. Phase 1 splits the synchronized R*-tree
  /// descent itself across the workers: the qualifying root-child pairs
  /// (rtree::RStarTree::JoinSeeds) are independent descent tasks, each
  /// worker collects candidates into a per-seed buffer, and the buffers
  /// are concatenated in seed order — exactly the sequential JoinWith
  /// candidate sequence. Phase 2 fetches+transforms every referenced
  /// record exactly once into a shared dense cache and partitions the
  /// candidate pairs across the workers for full-length verification,
  /// merging per-partition answers in partition order. The output
  /// reproduces TreeMatchSelfJoin exactly — same pairs, same order — for
  /// any thread count, and `stats` is exact (per-worker thread-local
  /// tallies). Requires a KIndex.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      QueryStats* stats = nullptr);

 private:
  /// One operation's pinned view: the shared_ptr keeps the snapshot (and
  /// its tree) alive until the operation finishes — the grace period of
  /// the epoch swap. `view` is empty when no index is available.
  struct PinnedView {
    std::shared_ptr<const IndexSnapshot> pin;
    std::optional<IndexView> view;
  };
  PinnedView AcquireView() const;

  void RunOne(const BatchQuery& query, const IndexView* view,
              BatchResult* result) const;

  SnapshotLoader loader_;   // null in legacy mode
  const KIndex* index_;     // legacy mode only
  const Relation* relation_;
  const SubsequenceIndex* subsequence_index_;
  ThreadPool pool_;
};

}  // namespace engine
}  // namespace tsq

#endif  // TSQ_ENGINE_QUERY_ENGINE_H_
