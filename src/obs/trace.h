// Copyright (c) 2026 The tsq Authors.
//
// Per-query stage tracing. The multi-step filter pipeline (Sec. 4 of the
// paper: DFT projection -> tree descent -> delta scan -> full-length
// refine, with buffer-pool I/O underneath) is instrumented with
// StageTimer spans; each span charges its *self* time — wall time minus
// enclosed child spans — to one Stage on a thread-local accumulator.
// Self-time accounting is what makes nesting honest: a pool read issued
// mid-descent lands in kPoolWait, not double-counted under kDescent.
//
// The accumulator follows the v2 exact-stats contract exactly like
// ThisThreadPoolCounters(): it is cumulative and monotone per thread, a
// query runs entirely on one thread, so a before/after delta around a
// query is that query's own stage breakdown with no cross-query bleed
// (core/queries.cpp captures the delta into QueryStats).
//
// Armed/disarmed like the metrics registry: TracingArmed() is one
// relaxed load, and a disarmed StageTimer constructor returns before
// reading any clock — queries with tracing off do no timing work beyond
// one branch per span site, which is the overhead contract bench_obs
// measures. Arming mid-span is safe (activity is latched at
// construction). When metrics are also armed, each span feeds its
// self-time into a per-stage global histogram
// (tsq_query_stage_self_us{stage="..."}).

#ifndef TSQ_OBS_TRACE_H_
#define TSQ_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>

namespace tsq {
namespace obs {

/// Pipeline stages, in pipeline order. Kept dense and small: QueryStats
/// carries one wire field per stage.
enum class Stage : int {
  kPrepare = 0,   ///< query validation + DFT feature projection
  kDescent = 1,   ///< R*-tree traversal (range collect / kNN stream)
  kDelta = 2,     ///< delta-index scan, sort and drain
  kPoolWait = 3,  ///< buffer-pool misses: disk reads + in-flight waits
  kRefine = 4,    ///< full-length verification distances
};
inline constexpr size_t kNumStages = 5;

/// Lower-case stable identifier ("prepare", "descent", ...) used in
/// metric labels and slow-query-log fields.
const char* StageName(Stage stage);

/// This thread's cumulative self-time per stage, in nanoseconds
/// (monotone; snapshot to diff — same contract as ThisThreadPoolCounters).
struct ThreadStageNanos {
  uint64_t ns[kNumStages] = {};
};
const ThreadStageNanos& ThisThreadStageNanos();

/// True when stage spans should record. One relaxed load.
bool TracingArmed();
void ArmTracing();
void DisarmTracing();

/// RAII stage span. Nested spans charge parents only with the time the
/// child did not consume (self-time accounting, via a thread-local span
/// stack). Cheap enough for per-candidate sites only when coarse; keep
/// spans at stage granularity (one per pipeline phase per query), not
/// per record.
class StageTimer {
 public:
  explicit StageTimer(Stage stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  bool active_;
  StageTimer* parent_ = nullptr;
  int64_t start_ns_ = 0;
  int64_t child_ns_ = 0;
};

}  // namespace obs
}  // namespace tsq

#endif  // TSQ_OBS_TRACE_H_
