// Copyright (c) 2026 The tsq Authors.

#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace tsq {
namespace obs {

namespace {

std::atomic<int> g_tracing_armed{0};

thread_local ThreadStageNanos tls_stage_nanos;
thread_local StageTimer* tls_span_top = nullptr;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Histogram* StageHistogram(Stage stage) {
  // One histogram per stage, registered once per process; indexed lookup
  // after that so the armed path stays allocation- and lock-free.
  static Histogram* histograms[kNumStages] = {
      RegisterHistogram("tsq_query_stage_self_us", "stage=\"prepare\""),
      RegisterHistogram("tsq_query_stage_self_us", "stage=\"descent\""),
      RegisterHistogram("tsq_query_stage_self_us", "stage=\"delta\""),
      RegisterHistogram("tsq_query_stage_self_us", "stage=\"pool_wait\""),
      RegisterHistogram("tsq_query_stage_self_us", "stage=\"refine\""),
  };
  return histograms[static_cast<int>(stage)];
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kPrepare:
      return "prepare";
    case Stage::kDescent:
      return "descent";
    case Stage::kDelta:
      return "delta";
    case Stage::kPoolWait:
      return "pool_wait";
    case Stage::kRefine:
      return "refine";
  }
  return "unknown";
}

const ThreadStageNanos& ThisThreadStageNanos() { return tls_stage_nanos; }

bool TracingArmed() {
  return g_tracing_armed.load(std::memory_order_relaxed) != 0;
}

void ArmTracing() { g_tracing_armed.store(1, std::memory_order_relaxed); }

void DisarmTracing() { g_tracing_armed.store(0, std::memory_order_relaxed); }

StageTimer::StageTimer(Stage stage)
    : stage_(stage), active_(TracingArmed()) {
  if (!active_) return;
  parent_ = tls_span_top;
  tls_span_top = this;
  start_ns_ = NowNanos();
}

StageTimer::~StageTimer() {
  if (!active_) return;
  const int64_t total = NowNanos() - start_ns_;
  int64_t self = total - child_ns_;
  if (self < 0) self = 0;  // clock steps are not our problem to amplify
  tls_stage_nanos.ns[static_cast<int>(stage_)] +=
      static_cast<uint64_t>(self);
  if (parent_ != nullptr) parent_->child_ns_ += total;
  tls_span_top = parent_;
  if (MetricsArmed()) {
    StageHistogram(stage_)->Observe(static_cast<uint64_t>(self));
  }
}

}  // namespace obs
}  // namespace tsq
