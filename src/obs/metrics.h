// Copyright (c) 2026 The tsq Authors.
//
// Lock-light metrics registry: named counters, gauges and log2-bucket
// latency histograms with a Prometheus-style text exposition. The design
// follows the failpoint registry (common/failpoint.h):
//
//   - Registration returns a raw pointer that stays valid for the life of
//     the registry; call sites cache it in a function-local static so the
//     name lookup happens once per site, not per event.
//   - The hot path is branch-plus-relaxed-atomic: every instrumented site
//     gates on MetricsArmed() — a single relaxed load of one global atomic
//     — so a binary that never scrapes pays one predictable-not-taken
//     branch per site and touches no shared cache line. Arming is a
//     coarse, process-wide switch (tsqd arms at Server::Start; tests and
//     benches arm explicitly); there is no per-metric arming.
//   - Updates are relaxed fetch_add/store on per-metric atomics. A scrape
//     is a racy-but-coherent snapshot: each value read is some value the
//     metric actually held, counters never appear to decrease, and a
//     quiesced registry renders exact totals (asserted in obs_test).
//
// The registry itself is instantiable (tests build private ones); the
// process-wide instance behind Registry::Global() is what the free
// RegisterCounter/RegisterGauge/RegisterHistogram helpers and tsqd's
// METRICS verb use. Global() leaks deliberately, so instrumented code in
// static destructors can still tick counters.

#ifndef TSQ_OBS_METRICS_H_
#define TSQ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsq {
namespace obs {

/// True when some consumer (a scraper, a bench, a test) wants metric
/// updates. One relaxed load; instrumented sites skip their fetch_add
/// entirely while disarmed, so the disarmed cost per site is one branch.
bool MetricsArmed();
void ArmMetrics();
void DisarmMetrics();

/// Monotone counter. Add() is a relaxed fetch_add; call sites gate on
/// MetricsArmed() themselves (the registry does not re-check, so tests
/// can tick metrics without arming the process).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value, set whole (typically from a StatsSnapshot at
/// scrape time rather than maintained on a hot path).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram over microseconds with power-of-two
/// upper bounds: bucket i counts observations with value <= 2^i us
/// (i = 0..kFiniteBuckets-1), and one final +Inf bucket. Fixed buckets
/// mean Observe() is an index computation plus two relaxed fetch_adds —
/// no allocation, no lock, no per-histogram configuration to validate.
/// The sum is kept in integer nanoseconds so it is a single relaxed
/// fetch_add too (Prometheus exposition converts to us at render time).
class Histogram {
 public:
  /// 2^0 .. 2^25 us (~33.5 s) finite bounds, then +Inf.
  static constexpr size_t kFiniteBuckets = 26;
  static constexpr size_t kBuckets = kFiniteBuckets + 1;

  void Observe(uint64_t nanos);

  /// Upper bound of finite bucket i, in microseconds.
  static uint64_t BucketUpperMicros(size_t i) { return uint64_t{1} << i; }

  /// A coherent-enough copy for rendering and quantile estimation; under
  /// concurrent Observe() the copy may straddle an update (count and sum
  /// read at slightly different instants), never torn values.
  struct Snapshot {
    uint64_t counts[kBuckets] = {};  // per-bucket (non-cumulative)
    uint64_t total = 0;
    uint64_t sum_nanos = 0;
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// a - b, fieldwise: the histogram activity between two snapshots of the
/// same (monotone) histogram.
Histogram::Snapshot SnapshotDelta(const Histogram::Snapshot& a,
                                  const Histogram::Snapshot& b);

/// Quantile estimate in microseconds from bucket counts (q in [0,1]):
/// linear interpolation within the selected bucket; observations in the
/// +Inf bucket report the largest finite bound. 0 for an empty snapshot.
double SnapshotQuantileMicros(const Histogram::Snapshot& snap, double q);

/// Named-metric registry. `labels` is the pre-rendered Prometheus label
/// body without braces (e.g. `verb="query"`), empty for an unlabeled
/// metric; one family may carry many label sets but only one type.
/// Get* is idempotent on (family, labels) and aborts on a type conflict
/// (two sites disagreeing about a family is a bug, not an input).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (never destroyed).
  static Registry& Global();

  Counter* GetCounter(const std::string& family,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& family, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& family,
                          const std::string& labels = "");

  /// Prometheus text exposition: one `# TYPE` line per family (in first-
  /// registration order), then one sample line per label set — counters
  /// and gauges as `family{labels} value`, histograms as cumulative
  /// `family_bucket{...,le="..."}` series plus `family_sum` (us) and
  /// `family_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string family;
    std::string labels;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& family, const std::string& labels,
                      Type type);
  static void RenderEntry(const Entry& e, std::string* out);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// Global-registry registration helpers — the spelling instrumented call
/// sites use, cached in a function-local static:
///
///   static obs::Counter* hits = obs::RegisterCounter("tsq_foo_total");
///   if (obs::MetricsArmed()) hits->Add();
Counter* RegisterCounter(const std::string& family,
                         const std::string& labels = "");
Gauge* RegisterGauge(const std::string& family,
                     const std::string& labels = "");
Histogram* RegisterHistogram(const std::string& family,
                             const std::string& labels = "");

}  // namespace obs
}  // namespace tsq

#endif  // TSQ_OBS_METRICS_H_
