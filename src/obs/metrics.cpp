// Copyright (c) 2026 The tsq Authors.

#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace tsq {
namespace obs {

namespace {

std::atomic<int> g_metrics_armed{0};

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

void AppendSampleName(std::string* out, const std::string& family,
                      const std::string& labels, const char* suffix = "",
                      const std::string& extra_label = "") {
  out->append(family);
  out->append(suffix);
  if (!labels.empty() || !extra_label.empty()) {
    out->push_back('{');
    out->append(labels);
    if (!labels.empty() && !extra_label.empty()) out->push_back(',');
    out->append(extra_label);
    out->push_back('}');
  }
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out->append(buf);
}

}  // namespace

bool MetricsArmed() {
  return g_metrics_armed.load(std::memory_order_relaxed) != 0;
}

void ArmMetrics() { g_metrics_armed.store(1, std::memory_order_relaxed); }

void DisarmMetrics() { g_metrics_armed.store(0, std::memory_order_relaxed); }

void Histogram::Observe(uint64_t nanos) {
  // Round up to whole microseconds so a sub-us observation lands in the
  // le="1" bucket instead of vanishing below the scale.
  const uint64_t us = nanos / 1000 + (nanos % 1000 != 0 ? 1 : 0);
  // Smallest i with us <= 2^i; values above the largest finite bound go
  // to the +Inf bucket (index kFiniteBuckets).
  size_t idx = 0;
  if (us > 1) idx = static_cast<size_t>(std::bit_width(us - 1));
  if (idx > kFiniteBuckets) idx = kFiniteBuckets;
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  for (size_t i = 0; i < kBuckets; ++i) {
    out.counts[i] = counts_[i].load(std::memory_order_relaxed);
    out.total += out.counts[i];
  }
  out.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  return out;
}

Histogram::Snapshot SnapshotDelta(const Histogram::Snapshot& a,
                                  const Histogram::Snapshot& b) {
  Histogram::Snapshot out;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    out.counts[i] = a.counts[i] - b.counts[i];
    out.total += out.counts[i];
  }
  out.sum_nanos = a.sum_nanos - b.sum_nanos;
  return out;
}

double SnapshotQuantileMicros(const Histogram::Snapshot& snap, double q) {
  if (snap.total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(snap.total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t in_bucket = snap.counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= Histogram::kFiniteBuckets) {
        // +Inf bucket: no upper bound; report the largest finite bound.
        return static_cast<double>(
            Histogram::BucketUpperMicros(Histogram::kFiniteBuckets - 1));
      }
      const double upper =
          static_cast<double>(Histogram::BucketUpperMicros(i));
      const double lower = i == 0 ? 0.0 : upper / 2.0;
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * into;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(
      Histogram::BucketUpperMicros(Histogram::kFiniteBuckets - 1));
}

Registry& Registry::Global() {
  // Leaked: metrics may be ticked from static destructors, and the
  // pointers handed out by Get* must never dangle.
  static Registry* global = new Registry();
  return *global;
}

Registry::Entry* Registry::FindOrCreate(const std::string& family,
                                        const std::string& labels,
                                        Type type) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->family == family && e->labels == labels) {
      if (e->type != type) {
        TSQ_LOG(kError) << "metric family '" << family
                        << "' re-registered as " << TypeName(int(type))
                        << " (was " << TypeName(int(e->type)) << ")";
        std::abort();
      }
      return e.get();
    }
    if (e->family == family && e->type != type) {
      TSQ_LOG(kError) << "metric family '" << family
                      << "' carries mixed types";
      std::abort();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->family = family;
  entry->labels = labels;
  entry->type = type;
  switch (type) {
    case Type::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* Registry::GetCounter(const std::string& family,
                              const std::string& labels) {
  return FindOrCreate(family, labels, Type::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& family,
                          const std::string& labels) {
  return FindOrCreate(family, labels, Type::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& family,
                                  const std::string& labels) {
  return FindOrCreate(family, labels, Type::kHistogram)->histogram.get();
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // Families in first-registration order, every label set of a family
  // under one # TYPE line (the exposition format requires grouping,
  // and label sets of one family register interleaved with others).
  std::vector<const Entry*> group;
  for (size_t i = 0; i < entries_.size(); ++i) {
    bool first_of_family = true;
    for (size_t j = 0; j < i; ++j) {
      if (entries_[j]->family == entries_[i]->family) {
        first_of_family = false;
        break;
      }
    }
    if (!first_of_family) continue;
    group.clear();
    for (const std::unique_ptr<Entry>& e : entries_) {
      if (e->family == entries_[i]->family) group.push_back(e.get());
    }
    out.append("# TYPE ");
    out.append(entries_[i]->family);
    out.push_back(' ');
    out.append(TypeName(int(entries_[i]->type)));
    out.push_back('\n');
    for (const Entry* e : group) RenderEntry(*e, &out);
  }
  return out;
}

void Registry::RenderEntry(const Entry& e, std::string* outp) {
  std::string& out = *outp;
  switch (e.type) {
    case Type::kCounter:
      AppendSampleName(&out, e.family, e.labels);
      out.push_back(' ');
      AppendUint(&out, e.counter->Value());
      out.push_back('\n');
      break;
    case Type::kGauge: {
      AppendSampleName(&out, e.family, e.labels);
      out.push_back(' ');
      const int64_t v = e.gauge->Value();
      if (v < 0) out.push_back('-');
      AppendUint(&out, static_cast<uint64_t>(v < 0 ? -v : v));
      out.push_back('\n');
      break;
    }
    case Type::kHistogram: {
      const Histogram::Snapshot snap = e.histogram->Snap();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < Histogram::kFiniteBuckets; ++i) {
        cumulative += snap.counts[i];
        std::string le = "le=\"";
        char bound[32];
        std::snprintf(bound, sizeof(bound), "%" PRIu64,
                      Histogram::BucketUpperMicros(i));
        le.append(bound);
        le.push_back('"');
        AppendSampleName(&out, e.family, e.labels, "_bucket", le);
        out.push_back(' ');
        AppendUint(&out, cumulative);
        out.push_back('\n');
      }
      AppendSampleName(&out, e.family, e.labels, "_bucket", "le=\"+Inf\"");
      out.push_back(' ');
      AppendUint(&out, snap.total);
      out.push_back('\n');
      AppendSampleName(&out, e.family, e.labels, "_sum");
      out.push_back(' ');
      AppendDouble(&out, static_cast<double>(snap.sum_nanos) / 1000.0);
      out.push_back('\n');
      AppendSampleName(&out, e.family, e.labels, "_count");
      out.push_back(' ');
      AppendUint(&out, snap.total);
      out.push_back('\n');
      break;
    }
  }
}

Counter* RegisterCounter(const std::string& family,
                         const std::string& labels) {
  return Registry::Global().GetCounter(family, labels);
}

Gauge* RegisterGauge(const std::string& family, const std::string& labels) {
  return Registry::Global().GetGauge(family, labels);
}

Histogram* RegisterHistogram(const std::string& family,
                             const std::string& labels) {
  return Registry::Global().GetHistogram(family, labels);
}

}  // namespace obs
}  // namespace tsq
