// Copyright (c) 2026 The tsq Authors.

#include "workload/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tsq {
namespace workload {

namespace {

/// Splits on commas; does not support quoted cells (series names with
/// commas are not a thing tsq needs).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool ParseDouble(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno != 0 || end == cell.c_str()) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

std::string Strip(const std::string& s) {
  size_t from = s.find_first_not_of(" \t\r\n");
  if (from == std::string::npos) return "";
  size_t to = s.find_last_not_of(" \t\r\n");
  return s.substr(from, to - from + 1);
}

}  // namespace

Result<TimeSeries> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells = SplitCsv(line);
  if (cells.size() < 2) {
    return Status::InvalidArgument("CSV row needs a name and at least one "
                                   "value: '" +
                                   line + "'");
  }
  RealVec values;
  values.reserve(cells.size() - 1);
  for (size_t i = 1; i < cells.size(); ++i) {
    double v = 0.0;
    if (!ParseDouble(Strip(cells[i]), &v)) {
      return Status::InvalidArgument("CSV cell " + std::to_string(i) +
                                     " is not a number: '" + cells[i] + "'");
    }
    values.push_back(v);
  }
  return TimeSeries(std::move(values), Strip(cells[0]));
}

Result<std::vector<TimeSeries>> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open CSV file '" + path + "'");
  }
  std::vector<TimeSeries> out;
  std::string line;
  size_t line_number = 0;
  size_t expected_length = 0;
  bool first_data_row = true;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = Strip(line);
    if (stripped.empty() || stripped[0] == '#') continue;

    if (first_data_row) {
      // Header detection: if no cell after the first parses as a number,
      // treat the row as a header and skip it.
      std::vector<std::string> cells = SplitCsv(stripped);
      bool any_number = false;
      for (size_t i = 1; i < cells.size(); ++i) {
        double v;
        if (ParseDouble(Strip(cells[i]), &v)) {
          any_number = true;
          break;
        }
      }
      first_data_row = false;
      if (!any_number && cells.size() >= 2) continue;  // header row
    }

    Result<TimeSeries> series = ParseCsvLine(stripped);
    if (!series.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + series.status().message());
    }
    if (expected_length == 0) {
      expected_length = series->length();
    } else if (series->length() != expected_length) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": series length " +
          std::to_string(series->length()) + " != " +
          std::to_string(expected_length) + " of earlier rows");
    }
    out.push_back(std::move(*series));
  }
  if (out.empty()) {
    return Status::InvalidArgument("CSV file '" + path +
                                   "' contains no series");
  }
  return out;
}

Status SaveCsv(const std::string& path,
               const std::vector<TimeSeries>& series) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot create CSV file '" + path + "'");
  }
  out.precision(17);
  for (const TimeSeries& s : series) {
    out << s.name();
    for (double v : s.values()) out << ',' << v;
    out << '\n';
  }
  if (!out.good()) {
    return Status::IOError("write failed for CSV file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace workload
}  // namespace tsq
