// Copyright (c) 2026 The tsq Authors.

#include "workload/random_walk.h"

#include <cstdio>

#include "common/macros.h"

namespace tsq {
namespace workload {

RealVec RandomWalkSeries(Rng* rng, size_t length,
                         const RandomWalkOptions& options) {
  TSQ_CHECK(rng != nullptr);
  TSQ_CHECK_MSG(length >= 1, "random walk needs length >= 1");
  TSQ_CHECK(options.y_lo < options.y_hi && options.z_lo < options.z_hi);

  double start = 0.0;
  switch (options.start) {
    case StartDistribution::kUniform:
      start = rng->Uniform(options.y_lo, options.y_hi);
      break;
    case StartDistribution::kTruncatedNormal: {
      const double mid = 0.5 * (options.y_lo + options.y_hi);
      const double sd = 0.25 * (options.y_hi - options.y_lo);
      do {
        start = rng->Normal(mid, sd);
      } while (start < options.y_lo || start > options.y_hi);
      break;
    }
  }

  RealVec out(length);
  out[0] = start;
  for (size_t i = 1; i < length; ++i) {
    out[i] = out[i - 1] + rng->Uniform(options.z_lo, options.z_hi);
  }
  return out;
}

std::vector<TimeSeries> MakeRandomWalkDataset(
    uint64_t seed, size_t count, size_t length,
    const RandomWalkOptions& options) {
  Rng rng(seed);
  std::vector<TimeSeries> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "RW%06zu", i);
    out.emplace_back(RandomWalkSeries(&rng, length, options), name);
  }
  return out;
}

}  // namespace workload
}  // namespace tsq
