// Copyright (c) 2026 The tsq Authors.

#include "workload/paper_data.h"

#include "common/random.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace workload {
namespace paper {

TimeSeries Fig1SeriesS1() {
  return TimeSeries({36, 38, 40, 38, 42, 38, 36, 36, 37, 38, 39, 38, 40, 38,
                     37},
                    "s1");
}

TimeSeries Fig1SeriesS2() {
  return TimeSeries({40, 37, 37, 42, 41, 35, 40, 35, 34, 42, 38, 35, 45, 36,
                     34},
                    "s2");
}

TimeSeries Fig2SeriesS() {
  return TimeSeries({20, 20, 21, 21, 20, 20, 23, 23}, "s");
}

TimeSeries Fig2SeriesP() { return TimeSeries({20, 21, 20, 23}, "p"); }

namespace {

// Fixed seeds: the stand-ins must be identical across runs and platforms so
// EXPERIMENTS.md numbers are reproducible.
constexpr uint64_t kTrendingSeed = 20260101;
constexpr uint64_t kOppositeSeed = 20260202;
constexpr uint64_t kDissimilarSeed = 20260303;
constexpr size_t kDays = 128;

}  // namespace

std::pair<TimeSeries, TimeSeries> TrendingPair() {
  Rng rng(kTrendingSeed);
  // A stock and a fund tracking the same underlying trend at a different
  // price level and sensitivity, with substantial *day-to-day* price noise
  // on the fund (the BBA/ZTR shape: shifting and scaling help some, and
  // the 20-day moving average — which removes the iid daily noise but not
  // the shared trend — produces the big drop).
  RealVec base = GeometricWalk(&rng, kDays, 9.5, 0.0015, 0.02);

  // The fund's log price tracks 12% of the stock's log excursions.
  RealVec tracked(kDays);
  for (size_t t = 0; t < kDays; ++t) {
    tracked[t] = 0.12 * (std::log(base[t]) - std::log(base[0]));
  }
  // Scale the iid noise to the tracked signal so the normal-form distance
  // is dominated by daily fluctuations the moving average removes.
  double mean = 0.0;
  for (double v : tracked) mean += v;
  mean /= static_cast<double>(kDays);
  double var = 0.0;
  for (double v : tracked) var += (v - mean) * (v - mean);
  const double signal_sd = std::sqrt(var / static_cast<double>(kDays));

  RealVec partner(kDays);
  for (size_t t = 0; t < kDays; ++t) {
    partner[t] =
        8.6 * std::exp(tracked[t] + 0.45 * signal_sd * rng.Normal());
  }
  return {TimeSeries(std::move(base), "BBA.sim"),
          TimeSeries(std::move(partner), "ZTR.sim")};
}

std::pair<TimeSeries, TimeSeries> OppositePair() {
  Rng rng(kOppositeSeed);
  RealVec base = GeometricWalk(&rng, kDays, 22.0, 0.002, 0.018);
  RealVec partner(kDays);
  partner[0] = 33.0;
  for (size_t t = 1; t < kDays; ++t) {
    const double r = std::log(base[t] / base[t - 1]);
    partner[t] = partner[t - 1] * std::exp(-r + 0.002 * rng.Normal());
  }
  return {TimeSeries(std::move(base), "CC.sim"),
          TimeSeries(std::move(partner), "VAR.sim")};
}

std::pair<TimeSeries, TimeSeries> DissimilarPair() {
  Rng rng(kDissimilarSeed);
  // Independent walks with different drifts: no amount of smoothing aligns
  // them (the DMIC/MXF shape).
  RealVec a = GeometricWalk(&rng, kDays, 15.0, 0.004, 0.03);
  RealVec b = GeometricWalk(&rng, kDays, 28.0, -0.003, 0.012);
  return {TimeSeries(std::move(a), "DMIC.sim"),
          TimeSeries(std::move(b), "MXF.sim")};
}

}  // namespace paper
}  // namespace workload
}  // namespace tsq
