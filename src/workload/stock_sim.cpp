// Copyright (c) 2026 The tsq Authors.

#include "workload/stock_sim.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "series/normal_form.h"

namespace tsq {
namespace workload {

RealVec GeometricWalk(Rng* rng, size_t length, double start_price,
                      double drift, double volatility) {
  TSQ_CHECK(rng != nullptr);
  TSQ_CHECK(length >= 1 && start_price > 0.0);
  RealVec out(length);
  out[0] = start_price;
  for (size_t t = 1; t < length; ++t) {
    out[t] = out[t - 1] * std::exp(drift + volatility * rng->Normal());
  }
  return out;
}

namespace {

/// Standard deviation of a series' daily log returns.
double ReturnSd(const RealVec& prices) {
  const size_t n = prices.size();
  if (n < 2) return 0.0;
  double sum = 0.0;
  double sq = 0.0;
  for (size_t t = 1; t < n; ++t) {
    const double r = std::log(prices[t] / prices[t - 1]);
    sum += r;
    sq += r * r;
  }
  const double steps = static_cast<double>(n - 1);
  const double var = std::max(0.0, sq / steps - (sum / steps) * (sum / steps));
  return std::sqrt(var);
}

/// A partner series with the same (noised) log-returns, possibly negated,
/// re-based at an independent price level. The noise is *relative*: its
/// per-step standard deviation is `noise` times the base series' own
/// return volatility, so partners stay equally similar across low- and
/// high-volatility regimes (the property the planted join answers need).
RealVec DerivedWalk(Rng* rng, const RealVec& base, double noise, bool negate,
                    double start_price) {
  const size_t n = base.size();
  const double return_sd = ReturnSd(base);
  RealVec out(n);
  out[0] = start_price;
  for (size_t t = 1; t < n; ++t) {
    double r = std::log(base[t] / base[t - 1]);
    if (negate) r = -r;
    r += noise * return_sd * rng->Normal();
    out[t] = out[t - 1] * std::exp(r);
  }
  return out;
}

/// Multiplies iid daily price noise into a series (high-frequency jitter a
/// moving average removes).
void AddDailyPriceNoise(Rng* rng, RealVec* prices, double relative_sd,
                        double return_sd) {
  for (double& p : *prices) {
    p *= std::exp(relative_sd * return_sd * rng->Normal());
  }
}

}  // namespace

std::vector<TimeSeries> MakeStockMarket(uint64_t seed,
                                        const StockMarketOptions& options) {
  const size_t planted = 2 * (options.similar_pairs + options.opposite_pairs);
  TSQ_CHECK_MSG(options.num_series >= planted,
                "num_series %zu too small for %zu planted series",
                options.num_series, planted);
  Rng rng(seed);
  std::vector<TimeSeries> out;
  out.reserve(options.num_series);
  char name[40];

  auto fresh_walk = [&]() {
    const double start = rng.Uniform(options.price_lo, options.price_hi);
    const double drift = rng.Uniform(options.drift_lo, options.drift_hi);
    const double vol = rng.Uniform(options.vol_lo, options.vol_hi);
    return GeometricWalk(&rng, options.length, start, drift, vol);
  };

  for (size_t i = 0; i < options.similar_pairs; ++i) {
    RealVec base = fresh_walk();
    RealVec partner =
        DerivedWalk(&rng, base, options.similar_noise, /*negate=*/false,
                    rng.Uniform(options.price_lo, options.price_hi));
    AddDailyPriceNoise(&rng, &partner, options.similar_daily_noise,
                       ReturnSd(base));
    std::snprintf(name, sizeof(name), "SIMa%04zu", i);
    out.emplace_back(std::move(base), name);
    std::snprintf(name, sizeof(name), "SIMb%04zu", i);
    out.emplace_back(std::move(partner), name);
  }
  for (size_t i = 0; i < options.opposite_pairs; ++i) {
    RealVec base = fresh_walk();
    // Mirror in (normalized) *price* space — the space Trev acts on: the
    // partner's normal form approximates the negated normal form of the
    // base. A log-return negation would only mirror in log space, which
    // the exp nonlinearity distorts for volatile walks.
    NormalForm nf = ToNormalForm(base);
    const double level = rng.Uniform(options.price_lo, options.price_hi);
    const double swing = 0.08;  // keeps prices positive (|nf| <~ 4)
    RealVec partner(options.length);
    for (size_t t = 0; t < options.length; ++t) {
      const double jitter =
          options.opposite_noise * swing * rng.Normal();
      partner[t] = level * (1.0 - swing * nf.normalized[t] + jitter);
    }
    std::snprintf(name, sizeof(name), "OPPa%04zu", i);
    out.emplace_back(std::move(base), name);
    std::snprintf(name, sizeof(name), "OPPb%04zu", i);
    out.emplace_back(std::move(partner), name);
  }
  for (size_t i = out.size(); i < options.num_series; ++i) {
    std::snprintf(name, sizeof(name), "STK%06zu", i);
    out.emplace_back(fresh_walk(), name);
  }
  return out;
}

}  // namespace workload
}  // namespace tsq
