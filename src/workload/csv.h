// Copyright (c) 2026 The tsq Authors.
//
// CSV import/export for time series — the bridge between tsq and real data
// sets (e.g. daily closing prices exported from any market data source,
// the modern equivalent of the paper's ftp.ai.mit.edu files).
//
// Format: one series per row,
//     name,v1,v2,...,vn
// All rows must have the same number of values. Lines starting with '#'
// and blank lines are skipped. An optional header row is detected when the
// first data cell of the first row does not parse as a number.

#ifndef TSQ_WORKLOAD_CSV_H_
#define TSQ_WORKLOAD_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "series/time_series.h"

namespace tsq {
namespace workload {

/// Parses one CSV line into a series. Exposed for testing.
Result<TimeSeries> ParseCsvLine(const std::string& line);

/// Loads every series from a CSV file. Fails with InvalidArgument on
/// malformed rows or inconsistent lengths, IOError when the file cannot
/// be read.
Result<std::vector<TimeSeries>> LoadCsv(const std::string& path);

/// Writes series to a CSV file (one row per series, full precision).
Status SaveCsv(const std::string& path,
               const std::vector<TimeSeries>& series);

}  // namespace workload
}  // namespace tsq

#endif  // TSQ_WORKLOAD_CSV_H_
