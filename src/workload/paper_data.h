// Copyright (c) 2026 The tsq Authors.
//
// The sequences printed verbatim in the paper, plus fixed-seed simulated
// stand-ins for its real-stock example pairs (the original data set is
// unavailable; see DESIGN.md "Substitutions").
//
// Exact data:
//   * Fig. 1: s1, s2 with D(s1,s2) = 11.92 and D(MA3(s1), MA3(s2)) = 0.47;
//   * Fig. 2: s (length 8) and p (length 4), where stretching p's time
//     axis by 2 yields s exactly.
//
// Simulated stand-ins (deterministic seeds):
//   * TrendingPair   — Ex. 2.1 (BBA/ZTR): each normalization/smoothing step
//     shrinks the distance substantially;
//   * OppositePair   — Ex. 2.2 (CC/VAR): reverse + smoothing makes them
//     close;
//   * DissimilarPair — Ex. 2.3 (DMIC/MXF): smoothing barely helps.

#ifndef TSQ_WORKLOAD_PAPER_DATA_H_
#define TSQ_WORKLOAD_PAPER_DATA_H_

#include <utility>

#include "series/time_series.h"

namespace tsq {
namespace workload {
namespace paper {

/// Fig. 1(a): ~s1 (length 15).
TimeSeries Fig1SeriesS1();

/// Fig. 1(b): ~s2 (length 15).
TimeSeries Fig1SeriesS2();

/// Example 1.2: ~s = (20,20,21,21,20,20,23,23) (length 8).
///
/// The example text prints (20,21,21,21,20,21,23,23) while the figure
/// caption prints (20,20,21,21,20,20,23,23); only the caption version is
/// consistent with the claim that scaling ~p's time dimension by 2 yields
/// ~s, so tsq ships the caption (warp-consistent) sequence.
TimeSeries Fig2SeriesS();

/// Example 1.2: ~p = (20,21,20,23) (length 4).
TimeSeries Fig2SeriesP();

/// Ex. 2.1 stand-in: two stocks with the same underlying trend at
/// different price levels and volatilities (128 days).
std::pair<TimeSeries, TimeSeries> TrendingPair();

/// Ex. 2.2 stand-in: two stocks with mirrored price movements (128 days).
std::pair<TimeSeries, TimeSeries> OppositePair();

/// Ex. 2.3 stand-in: two stocks with genuinely different trends (128 days).
std::pair<TimeSeries, TimeSeries> DissimilarPair();

}  // namespace paper
}  // namespace workload
}  // namespace tsq

#endif  // TSQ_WORKLOAD_PAPER_DATA_H_
