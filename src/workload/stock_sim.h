// Copyright (c) 2026 The tsq Authors.
//
// Simulated stock-market data set. The paper's real-data experiments
// (Figures 3-5, 12 and Table 1) ran on 1067 daily-close series of length
// 128 from "ftp.ai.mit.edu/pub/stocks/results/", which no longer exists.
// This generator substitutes a statistically comparable synthetic market:
//
//   * base series: geometric random walks p_{t+1} = p_t * exp(mu + sigma*N)
//     with per-series drift/volatility regimes (prices stay positive and
//     heteroscedastic like real closes);
//   * planted *similar pairs*: a clone of another series with small
//     multiplicative noise and an arbitrary price level (similar after
//     normal form + smoothing — what Table 1's join finds);
//   * planted *opposite pairs*: returns negated plus noise (Ex. 2.2's
//     CC/VAR behaviour, found by joining with Trev);
//   * a volatility mix so that normal forms are non-trivially spread.
//
// The substitution preserves what the experiments measure: join/range
// selectivities in the same regime (answer sets of tens out of ~1000), and
// transformation pipelines (normal form -> moving average -> distance)
// showing the same qualitative distance drops as Figures 3-5.

#ifndef TSQ_WORKLOAD_STOCK_SIM_H_
#define TSQ_WORKLOAD_STOCK_SIM_H_

#include <vector>

#include "common/random.h"
#include "series/time_series.h"

namespace tsq {
namespace workload {

/// Market generator parameters; defaults mirror the paper's data set shape.
struct StockMarketOptions {
  size_t num_series = 1067;
  size_t length = 128;
  /// Planted near-duplicate pairs (become join answers under smoothing).
  size_t similar_pairs = 10;
  /// Return noise applied to planted similar partners, as a fraction of the
  /// base series' return volatility (shared-trend fidelity).
  double similar_noise = 0.02;
  /// iid daily price noise on similar partners, as a fraction of the base
  /// return volatility. This is the Ex. 1.1 ingredient: it pushes the raw
  /// normal-form distance up while the 20-day moving average removes it,
  /// so the planted pairs are found by the *smoothed* join (paper method
  /// d) but mostly missed by the unsmoothed one (method c).
  double similar_daily_noise = 0.6;
  /// Planted opposite-mover pairs (join answers under Trev).
  size_t opposite_pairs = 8;
  double opposite_noise = 0.02;
  /// Per-series drift range (daily log-return mean).
  double drift_lo = -0.004;
  double drift_hi = 0.004;
  /// Per-series volatility range (daily log-return sd).
  double vol_lo = 0.005;
  double vol_hi = 0.04;
  /// Starting price range.
  double price_lo = 5.0;
  double price_hi = 80.0;
};

/// Generates the market. Planted pairs occupy the first
/// 2*(similar_pairs + opposite_pairs) slots: (SIMa_i, SIMb_i) then
/// (OPPa_i, OPPb_i); the rest are independent walks named "STK...".
std::vector<TimeSeries> MakeStockMarket(uint64_t seed,
                                        const StockMarketOptions& options = {});

/// A single geometric-random-walk close series.
RealVec GeometricWalk(Rng* rng, size_t length, double start_price,
                      double drift, double volatility);

}  // namespace workload
}  // namespace tsq

#endif  // TSQ_WORKLOAD_STOCK_SIM_H_
