// Copyright (c) 2026 The tsq Authors.
//
// The paper's synthetic workload (Sec. 5): random-walk sequences
//     x_0 = y,          y drawn from [20, 99]
//     x_i = x_{i-1} + z_i,  z_i drawn from [-4, 4].
// (The paper says "a normally distributed random number in the range
// [20,99]", a truncated normal; both that and the plain uniform reading are
// provided — the distance distributions they induce are indistinguishable
// for the experiments, see tests.)

#ifndef TSQ_WORKLOAD_RANDOM_WALK_H_
#define TSQ_WORKLOAD_RANDOM_WALK_H_

#include <vector>

#include "common/random.h"
#include "dft/complex_vec.h"
#include "series/time_series.h"

namespace tsq {
namespace workload {

/// Distribution of the starting value y.
enum class StartDistribution {
  kUniform,          ///< uniform on [y_lo, y_hi]
  kTruncatedNormal,  ///< normal(mid, range/4) resampled into [y_lo, y_hi]
};

/// Generator parameters (defaults = the paper's).
struct RandomWalkOptions {
  double y_lo = 20.0;
  double y_hi = 99.0;
  double z_lo = -4.0;
  double z_hi = 4.0;
  StartDistribution start = StartDistribution::kUniform;
};

/// One random-walk sequence of the given length.
RealVec RandomWalkSeries(Rng* rng, size_t length,
                         const RandomWalkOptions& options = {});

/// A data set of `count` sequences of `length`, deterministically derived
/// from `seed`. Names are "RW000000", "RW000001", ...
std::vector<TimeSeries> MakeRandomWalkDataset(
    uint64_t seed, size_t count, size_t length,
    const RandomWalkOptions& options = {});

}  // namespace workload
}  // namespace tsq

#endif  // TSQ_WORKLOAD_RANDOM_WALK_H_
