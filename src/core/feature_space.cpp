// Copyright (c) 2026 The tsq Authors.

#include "core/feature_space.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "simd/simd.h"
#include "spatial/metrics.h"

namespace tsq {

namespace {

constexpr double kPi = std::numbers::pi;

/// MINDIST in Srect: plain rectangular MINDIST over the spectral dims,
/// computed by the kernel layer. The batch override resolves the kernel
/// table once per node instead of once per rect.
class RectSpaceMetric final : public rtree::NnMetric {
 public:
  RectSpaceMetric(spatial::Point query, size_t spectral_offset)
      : query_(std::move(query)), offset_(spectral_offset) {}

  double MinDistSquared(const spatial::Rect& rect) const override {
    return simd::MinDistSquared(query_.data() + offset_,
                                rect.lo().data() + offset_,
                                rect.hi().data() + offset_,
                                query_.size() - offset_);
  }

  void MinDistSquaredBatch(const spatial::Rect* const* rects, size_t count,
                           double* out) const override {
    const auto& k = simd::Kernels();
    const double* q = query_.data() + offset_;
    const size_t n = query_.size() - offset_;
    for (size_t i = 0; i < count; ++i) {
      out[i] = k.min_dist_squared(q, rects[i]->lo().data() + offset_,
                                  rects[i]->hi().data() + offset_, n);
    }
  }

 private:
  spatial::Point query_;
  size_t offset_;
};

/// MINDIST in Spol: per coefficient, the exact distance from the query's
/// complex value to the annular sector {r in [m0,m1], theta in [t0,t1]}
/// described by the rect's (magnitude, angle) interval pair. For degenerate
/// rects this reduces to the exact complex distance, as NnMetric requires.
class PolarSpaceMetric final : public rtree::NnMetric {
 public:
  PolarSpaceMetric(spatial::Point query, size_t spectral_offset,
                   size_t num_coefficients)
      : query_(std::move(query)),
        offset_(spectral_offset),
        num_coefficients_(num_coefficients) {}

  double MinDistSquared(const spatial::Rect& rect) const override {
    double acc = 0.0;
    for (size_t j = 0; j < num_coefficients_; ++j) {
      const size_t md = offset_ + 2 * j;      // magnitude dim
      const size_t ad = offset_ + 2 * j + 1;  // angle dim
      acc += SectorDistSquared(query_[md], query_[ad], rect.lo(md),
                               rect.hi(md), rect.lo(ad), rect.hi(ad));
    }
    return acc;
  }

  /// Squared distance from the complex point (qm, qa) [polar] to the
  /// annular sector r in [m0, m1], theta in [t0, t1].
  static double SectorDistSquared(double qm, double qa, double m0, double m1,
                                  double t0, double t1) {
    m0 = std::max(0.0, m0);
    // Full-circle angular interval: pure radial gap.
    if (t1 - t0 >= 2.0 * kPi - 1e-12) {
      const double gap = (qm < m0) ? (m0 - qm) : (qm > m1 ? qm - m1 : 0.0);
      return gap * gap;
    }
    // Inside the angular span (the span never wraps: wrapping intervals
    // are widened to the full circle upstream): radial gap only.
    if (qa >= t0 && qa <= t1) {
      const double gap = (qm < m0) ? (m0 - qm) : (qm > m1 ? qm - m1 : 0.0);
      return gap * gap;
    }
    // Outside: the nearest sector point lies on one of the two radial
    // boundary segments (from m0 to m1 at angle t0 / t1).
    const double qx = qm * std::cos(qa);
    const double qy = qm * std::sin(qa);
    const double d0 = spatial::PointSegmentDistSquared(
        qx, qy, m0 * std::cos(t0), m0 * std::sin(t0), m1 * std::cos(t0),
        m1 * std::sin(t0));
    const double d1 = spatial::PointSegmentDistSquared(
        qx, qy, m0 * std::cos(t1), m0 * std::sin(t1), m1 * std::cos(t1),
        m1 * std::sin(t1));
    return std::min(d0, d1);
  }

 private:
  spatial::Point query_;
  size_t offset_;
  size_t num_coefficients_;
};

}  // namespace

FeatureTransform FeatureTransform::ShiftScale(size_t n, double delta,
                                              double factor) {
  FeatureTransform t{LinearTransform::Identity(n), factor, delta,
                     std::abs(factor)};
  return t;
}

Result<spatial::AffineMap> FeatureSpace::ToAffineMap(
    const FeatureTransform& t) const {
  const size_t k = layout_.num_coefficients;
  const size_t first = layout_.first_coefficient;
  if (t.spectral.size() < first + k) {
    return Status::InvalidArgument(
        "spectral transform length " + std::to_string(t.spectral.size()) +
        " shorter than layout coefficient range");
  }

  std::vector<double> scale(dims(), 1.0);
  std::vector<double> offset(dims(), 0.0);
  std::vector<bool> angular(dims(), false);

  if (layout_.include_mean_std) {
    scale[0] = t.mean_scale;
    offset[0] = t.mean_offset;
    scale[1] = t.std_scale;
    offset[1] = 0.0;
  }

  const size_t off = layout_.spectral_offset();
  if (layout_.space == CoordinateSpace::kRectangular) {
    // Theorem 2: requires real a (complex b allowed).
    if (!t.spectral.IsSafeRect()) {
      return Status::InvalidArgument(
          "transform '" + t.spectral.name() +
          "' has complex stretch a; not safe in Srect (Theorem 2)");
    }
    for (size_t j = 0; j < k; ++j) {
      const Complex a = t.spectral.a()[first + j];
      const Complex b = t.spectral.b()[first + j];
      scale[off + 2 * j] = a.real();
      offset[off + 2 * j] = b.real();
      scale[off + 2 * j + 1] = a.real();
      offset[off + 2 * j + 1] = b.imag();
    }
  } else {
    // Theorem 3: requires b = 0 (complex a allowed).
    if (!t.spectral.IsSafePolar()) {
      return Status::InvalidArgument(
          "transform '" + t.spectral.name() +
          "' has nonzero translation b; not safe in Spol (Theorem 3)");
    }
    for (size_t j = 0; j < k; ++j) {
      const Complex a = t.spectral.a()[first + j];
      scale[off + 2 * j] = std::abs(a);
      offset[off + 2 * j] = 0.0;
      scale[off + 2 * j + 1] = 1.0;
      offset[off + 2 * j + 1] = std::arg(a);
      angular[off + 2 * j + 1] = true;
    }
  }
  return spatial::AffineMap(std::move(scale), std::move(offset),
                            std::move(angular));
}

std::unique_ptr<rtree::NnMetric> FeatureSpace::MakeNnMetric(
    spatial::Point query) const {
  TSQ_CHECK_MSG(query.size() == dims(), "query point dims %zu != space %zu",
                query.size(), dims());
  if (layout_.space == CoordinateSpace::kRectangular) {
    return std::make_unique<RectSpaceMetric>(std::move(query),
                                             layout_.spectral_offset());
  }
  return std::make_unique<PolarSpaceMetric>(
      std::move(query), layout_.spectral_offset(), layout_.num_coefficients);
}

namespace {

/// Exact Cartesian bounding box of the annular sector r in [m0, m1],
/// theta in [t0, t1] (canonical non-wrapping interval). Returns
/// (x_lo, x_hi, y_lo, y_hi).
struct SectorBBox {
  double x_lo, x_hi, y_lo, y_hi;
};

SectorBBox SectorBoundingBox(double m0, double m1, double t0, double t1) {
  m0 = std::max(0.0, m0);
  // Range of cos over [t0, t1] within [-pi, pi]: cos is increasing on
  // [-pi, 0], decreasing on [0, pi], so the max is at 0 when the interval
  // contains it, else at an endpoint; the min is at an endpoint (the
  // interval cannot wrap past +-pi).
  const double c0 = std::cos(t0);
  const double c1 = std::cos(t1);
  const double cmax = (t0 <= 0.0 && t1 >= 0.0) ? 1.0 : std::max(c0, c1);
  const double cmin = std::min(c0, c1);
  // Range of sin: max at +pi/2, min at -pi/2 when contained.
  const double s0 = std::sin(t0);
  const double s1 = std::sin(t1);
  const double smax =
      (t0 <= kPi / 2 && t1 >= kPi / 2) ? 1.0 : std::max(s0, s1);
  const double smin =
      (t0 <= -kPi / 2 && t1 >= -kPi / 2) ? -1.0 : std::min(s0, s1);

  // Interval product [m0, m1] x [cmin, cmax]; all m >= 0.
  auto scale_interval = [m0, m1](double lo, double hi, double* out_lo,
                                 double* out_hi) {
    const double candidates[4] = {m0 * lo, m0 * hi, m1 * lo, m1 * hi};
    *out_lo = std::min(std::min(candidates[0], candidates[1]),
                       std::min(candidates[2], candidates[3]));
    *out_hi = std::max(std::max(candidates[0], candidates[1]),
                       std::max(candidates[2], candidates[3]));
  };
  SectorBBox box{};
  scale_interval(cmin, cmax, &box.x_lo, &box.x_hi);
  scale_interval(smin, smax, &box.y_lo, &box.y_hi);
  return box;
}

/// Squared gap between 1-D intervals [a0, a1] and [b0, b1]; 0 on overlap.
double IntervalGapSquared(double a0, double a1, double b0, double b1) {
  double gap = 0.0;
  if (a1 < b0) {
    gap = b0 - a1;
  } else if (b1 < a0) {
    gap = a0 - b1;
  }
  return gap * gap;
}

}  // namespace

double FeatureSpace::MinSpectralDistanceBetweenRects(
    const spatial::Rect& a, const spatial::Rect& b) const {
  TSQ_CHECK(a.dims() == dims() && b.dims() == dims());
  const size_t off = layout_.spectral_offset();
  double acc = 0.0;
  if (layout_.space == CoordinateSpace::kRectangular) {
    for (size_t d = off; d < dims(); ++d) {
      acc += IntervalGapSquared(a.lo(d), a.hi(d), b.lo(d), b.hi(d));
    }
  } else {
    for (size_t j = 0; j < layout_.num_coefficients; ++j) {
      const size_t md = off + 2 * j;
      const size_t ad = off + 2 * j + 1;
      const SectorBBox ba =
          SectorBoundingBox(a.lo(md), a.hi(md), a.lo(ad), a.hi(ad));
      const SectorBBox bb =
          SectorBoundingBox(b.lo(md), b.hi(md), b.lo(ad), b.hi(ad));
      acc += IntervalGapSquared(ba.x_lo, ba.x_hi, bb.x_lo, bb.x_hi);
      acc += IntervalGapSquared(ba.y_lo, ba.y_hi, bb.y_lo, bb.y_hi);
    }
  }
  return std::sqrt(acc);
}

std::function<bool(const spatial::Rect&, const spatial::Rect&)>
FeatureSpace::MakeJoinPredicate(double eps) const {
  TSQ_CHECK_MSG(eps >= 0.0, "negative join threshold");
  return [this, eps](const spatial::Rect& a, const spatial::Rect& b) {
    return MinSpectralDistanceBetweenRects(a, b) <= eps;
  };
}

double FeatureSpace::SpectralDistance(const spatial::Point& a,
                                      const spatial::Point& b) const {
  TSQ_CHECK(a.size() == dims() && b.size() == dims());
  const size_t off = layout_.spectral_offset();
  double acc = 0.0;
  for (size_t j = 0; j < layout_.num_coefficients; ++j) {
    Complex ca;
    Complex cb;
    if (layout_.space == CoordinateSpace::kRectangular) {
      ca = Complex(a[off + 2 * j], a[off + 2 * j + 1]);
      cb = Complex(b[off + 2 * j], b[off + 2 * j + 1]);
    } else {
      ca = std::polar(a[off + 2 * j], a[off + 2 * j + 1]);
      cb = std::polar(b[off + 2 * j], b[off + 2 * j + 1]);
    }
    acc += std::norm(ca - cb);
  }
  return std::sqrt(acc);
}

}  // namespace tsq
