// Copyright (c) 2026 The tsq Authors.

#include "core/queries.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/stopwatch.h"
#include "core/search_rect.h"

namespace tsq {

namespace {

/// Captures this thread's tree/pool counter deltas around a query (the v2
/// exact-stats contract: traversals mirror their shared atomic counters
/// into thread-local ones, and a query runs entirely on one thread, so
/// the delta can never include a concurrent query's work).
class StatsScope {
 public:
  explicit StatsScope(QueryStats* stats)
      : stats_(stats),
        tree_before_(rtree::ThisThreadTraversalCounters()),
        pool_before_(ThisThreadPoolCounters()) {}
  ~StatsScope() {
    if (stats_ == nullptr) return;
    const rtree::ThreadTraversalCounters& t =
        rtree::ThisThreadTraversalCounters();
    const ThreadPoolCounters& p = ThisThreadPoolCounters();
    stats_->nodes_visited += t.nodes_visited - tree_before_.nodes_visited;
    stats_->rect_transforms +=
        t.rect_transforms - tree_before_.rect_transforms;
    stats_->disk_reads += p.disk_reads - pool_before_.disk_reads;
    stats_->elapsed_ms += watch_.ElapsedMillis();
  }

 private:
  QueryStats* stats_;
  rtree::ThreadTraversalCounters tree_before_;
  ThreadPoolCounters pool_before_;
  Stopwatch watch_;
};

Status ValidateQuery(const KIndex& index, const RealVec& query) {
  if (query.size() != index.series_length()) {
    return Status::InvalidArgument(
        "query length " + std::to_string(query.size()) +
        " != indexed series length " +
        std::to_string(index.series_length()));
  }
  return Status::OK();
}

}  // namespace

Result<PreparedQuery> PrepareQuery(const KIndex& index, const RealVec& query,
                                   const QuerySpec& spec) {
  TSQ_RETURN_IF_ERROR(ValidateQuery(index, query));
  const SeriesFeatures qf = index.extractor().Extract(query);
  PreparedQuery out;
  out.mean = qf.mean;
  out.std = qf.std;
  if (spec.transform.has_value() && spec.mode == TransformMode::kBoth) {
    const FeatureTransform& t = *spec.transform;
    out.full_spectrum = t.spectral.Apply(qf.spectrum);
    out.mean = t.mean_scale * qf.mean + t.mean_offset;
    out.std = t.std_scale * qf.std;
  } else {
    out.full_spectrum = qf.spectrum;
  }
  out.coefficients = index.extractor().StoredCoefficients(out.full_spectrum);
  return out;
}

Status RangeSearchCandidates(const KIndex& index, const PreparedQuery& prepared,
                             double epsilon, const QuerySpec& spec,
                             std::vector<SeriesId>* out) {
  TSQ_CHECK(out != nullptr);
  const spatial::Rect search_rect = BuildSearchRect(
      index.layout(), prepared.coefficients, epsilon, spec.window);
  if (spec.transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(const spatial::AffineMap map,
                         index.space().ToAffineMap(*spec.transform));
    return index.RangeCandidatesTransformed(map, search_rect, out);
  }
  return index.RangeCandidates(search_rect, out);
}

double VerifyDistance(const ComplexVec& data_spectrum,
                      const std::optional<FeatureTransform>& transform,
                      const ComplexVec& query_target) {
  if (transform.has_value()) {
    return cvec::Distance(transform->spectral.Apply(data_spectrum),
                          query_target);
  }
  return cvec::Distance(data_spectrum, query_target);
}

Status VerifyRangeCandidates(const Relation& relation,
                             const std::vector<SeriesId>& candidates,
                             const PreparedQuery& prepared,
                             const QuerySpec& spec, double epsilon,
                             std::vector<Match>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  for (const SeriesId id : candidates) {
    TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation.Get(id));
    if (stats != nullptr) ++stats->verified;
    const double d =
        VerifyDistance(rec.dft, spec.transform, prepared.full_spectrum);
    if (d <= epsilon) {
      out->push_back(Match{id, std::move(rec.name), d});
    }
  }
  return Status::OK();
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
}

Status IndexRangeQuery(const KIndex& index, const Relation& relation,
                       const RealVec& query, double epsilon,
                       const QuerySpec& spec, std::vector<Match>* out,
                       QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative query threshold");
  }
  StatsScope scope(stats);

  // Step 1 — preprocessing.
  TSQ_ASSIGN_OR_RETURN(const PreparedQuery prepared,
                       PrepareQuery(index, query, spec));

  // Step 2 — search, with the transformed traversal when applicable.
  std::vector<SeriesId> candidates;
  TSQ_RETURN_IF_ERROR(
      RangeSearchCandidates(index, prepared, epsilon, spec, &candidates));
  if (stats != nullptr) stats->candidates += candidates.size();

  // Step 3 — postprocessing against full database records.
  TSQ_RETURN_IF_ERROR(VerifyRangeCandidates(relation, candidates, prepared,
                                            spec, epsilon, out, stats));
  SortMatches(out);
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

Status IndexKnnQuery(const KIndex& index, const Relation& relation,
                     const RealVec& query, size_t k, const QuerySpec& spec,
                     std::vector<Match>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (k == 0) {
    TSQ_RETURN_IF_ERROR(ValidateQuery(index, query));
    return Status::OK();
  }
  StatsScope scope(stats);

  TSQ_ASSIGN_OR_RETURN(const PreparedQuery prepared,
                       PrepareQuery(index, query, spec));
  const spatial::Point query_point = index.extractor().ToPointFromCoefficients(
      prepared.coefficients, prepared.mean, prepared.std);
  const auto metric = index.space().MakeNnMetric(query_point);

  std::optional<spatial::AffineMap> map;
  if (spec.transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*spec.transform));
  }

  // Optimal multi-step kNN: verify candidates in ascending lower-bound
  // order; once k answers are verified and the next lower bound exceeds the
  // k-th verified distance, no better answer can exist (the lower bound is
  // admissible w.r.t. the full-length distance).
  struct Verified {
    double distance;
    SeriesId id;
    std::string name;
    bool operator<(const Verified& other) const {
      return distance < other.distance ||
             (distance == other.distance && id < other.id);
    }
  };
  std::vector<Verified> best;  // kept as a max-heap on distance
  auto heap_cmp = [](const Verified& a, const Verified& b) { return a < b; };

  Status inner_status;
  uint64_t candidates = 0;
  TSQ_RETURN_IF_ERROR(index.StreamNearest(
      *metric, map.has_value() ? &*map : nullptr,
      [&](SeriesId id, double lower_bound) {
        if (best.size() == k && lower_bound > best.front().distance) {
          return false;  // no unexplored candidate can improve the answer
        }
        ++candidates;
        Result<SeriesRecord> rec = relation.Get(id);
        if (!rec.ok()) {
          inner_status = rec.status();
          return false;
        }
        const double d = VerifyDistance(rec->dft, spec.transform,
                                        prepared.full_spectrum);
        if (best.size() < k) {
          best.push_back(Verified{d, id, std::move(rec->name)});
          std::push_heap(best.begin(), best.end(), heap_cmp);
        } else if (d < best.front().distance) {
          std::pop_heap(best.begin(), best.end(), heap_cmp);
          best.back() = Verified{d, id, std::move(rec->name)};
          std::push_heap(best.begin(), best.end(), heap_cmp);
        }
        return true;
      }));
  TSQ_RETURN_IF_ERROR(inner_status);

  std::sort(best.begin(), best.end());
  for (Verified& v : best) {
    out->push_back(Match{v.id, std::move(v.name), v.distance});
  }
  if (stats != nullptr) {
    stats->candidates += candidates;
    stats->verified += candidates;
    stats->answers += out->size();
  }
  return Status::OK();
}

Status IndexSelfJoin(const KIndex& index, const Relation& relation,
                     double epsilon,
                     const std::optional<FeatureTransform>& transform,
                     std::vector<JoinPair>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  StatsScope scope(stats);

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*transform));
  }

  // Paper Sec. 5 methods c/d: scan the relation; for every sequence build a
  // search rectangle and pose it to the (transformed) index as a range
  // query; verify candidates with full-length distances.
  const uint64_t n = relation.size();
  for (SeriesId qid = 0; qid < n; ++qid) {
    TSQ_ASSIGN_OR_RETURN(SeriesRecord qrec, relation.Get(qid));
    if (stats != nullptr) ++stats->records_scanned;

    ComplexVec target = transform.has_value()
                            ? transform->spectral.Apply(qrec.dft)
                            : qrec.dft;
    const ComplexVec coeffs = index.extractor().StoredCoefficients(target);
    const spatial::Rect rect =
        BuildSearchRect(index.layout(), coeffs, epsilon, std::nullopt);

    std::vector<SeriesId> candidates;
    if (map.has_value()) {
      TSQ_RETURN_IF_ERROR(
          index.RangeCandidatesTransformed(*map, rect, &candidates));
    } else {
      TSQ_RETURN_IF_ERROR(index.RangeCandidates(rect, &candidates));
    }
    if (stats != nullptr) stats->candidates += candidates.size();

    for (const SeriesId cid : candidates) {
      if (cid == qid) continue;
      TSQ_ASSIGN_OR_RETURN(SeriesRecord crec, relation.Get(cid));
      if (stats != nullptr) ++stats->verified;
      const double d = VerifyDistance(crec.dft, transform, target);
      if (d <= epsilon) {
        out->push_back(JoinPair{qid, cid, d});
      }
    }
  }
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

Status TreeMatchSelfJoin(const KIndex& index, const Relation& relation,
                         double epsilon,
                         const std::optional<FeatureTransform>& transform,
                         std::vector<JoinPair>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  StatsScope scope(stats);

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*transform));
  }
  const spatial::AffineMap* map_ptr = map.has_value() ? &*map : nullptr;

  // One synchronized descent collects candidate pairs; full-length
  // verification resolves them, caching transformed spectra so each record
  // is fetched and transformed once.
  std::vector<std::pair<SeriesId, SeriesId>> candidates;
  TSQ_RETURN_IF_ERROR(index.tree()->JoinWith(
      *index.tree(), map_ptr, map_ptr,
      index.space().MakeJoinPredicate(epsilon),
      [&candidates](uint64_t a, uint64_t b) {
        if (a != b) candidates.emplace_back(a, b);
        return true;
      }));
  if (stats != nullptr) stats->candidates += candidates.size();

  std::unordered_map<SeriesId, ComplexVec> transformed_cache;
  auto transformed_spectrum =
      [&](SeriesId id) -> Result<const ComplexVec*> {
    auto it = transformed_cache.find(id);
    if (it == transformed_cache.end()) {
      TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation.Get(id));
      if (stats != nullptr) ++stats->verified;
      ComplexVec spectrum = transform.has_value()
                                ? transform->spectral.Apply(rec.dft)
                                : std::move(rec.dft);
      it = transformed_cache.emplace(id, std::move(spectrum)).first;
    }
    return &it->second;
  };

  for (const auto& [a, b] : candidates) {
    TSQ_ASSIGN_OR_RETURN(const ComplexVec* sa, transformed_spectrum(a));
    TSQ_ASSIGN_OR_RETURN(const ComplexVec* sb, transformed_spectrum(b));
    const double d = cvec::Distance(*sa, *sb);
    if (d <= epsilon) out->push_back(JoinPair{a, b, d});
  }
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

}  // namespace tsq
