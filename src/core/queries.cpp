// Copyright (c) 2026 The tsq Authors.

#include "core/queries.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/stopwatch.h"
#include "core/search_rect.h"
#include "obs/trace.h"

namespace tsq {

static_assert(obs::kNumStages == 5,
              "StageStatsCapture and the QueryStats stage fields assume "
              "five pipeline stages");

StageStatsCapture::StageStatsCapture(QueryStats* stats)
    : stats_(stats), active_(stats != nullptr && obs::TracingArmed()) {
  if (!active_) return;
  const obs::ThreadStageNanos& s = obs::ThisThreadStageNanos();
  for (size_t i = 0; i < obs::kNumStages; ++i) before_ns_[i] = s.ns[i];
}

StageStatsCapture::~StageStatsCapture() {
  if (!active_) return;
  const obs::ThreadStageNanos& s = obs::ThisThreadStageNanos();
  double ms[obs::kNumStages];
  for (size_t i = 0; i < obs::kNumStages; ++i) {
    ms[i] = static_cast<double>(s.ns[i] - before_ns_[i]) * 1e-6;
  }
  stats_->traced = true;
  stats_->prepare_ms += ms[static_cast<int>(obs::Stage::kPrepare)];
  stats_->descent_ms += ms[static_cast<int>(obs::Stage::kDescent)];
  stats_->delta_ms += ms[static_cast<int>(obs::Stage::kDelta)];
  stats_->pool_wait_ms += ms[static_cast<int>(obs::Stage::kPoolWait)];
  stats_->refine_ms += ms[static_cast<int>(obs::Stage::kRefine)];
}

namespace {

/// Captures this thread's tree/pool counter deltas around a query (the v2
/// exact-stats contract: traversals mirror their shared atomic counters
/// into thread-local ones, and a query runs entirely on one thread, so
/// the delta can never include a concurrent query's work). Stage-timer
/// deltas ride the same contract through the embedded StageStatsCapture.
class StatsScope {
 public:
  explicit StatsScope(QueryStats* stats)
      : stats_(stats),
        tree_before_(rtree::ThisThreadTraversalCounters()),
        pool_before_(ThisThreadPoolCounters()),
        stages_(stats) {}
  ~StatsScope() {
    if (stats_ == nullptr) return;
    const rtree::ThreadTraversalCounters& t =
        rtree::ThisThreadTraversalCounters();
    const ThreadPoolCounters& p = ThisThreadPoolCounters();
    stats_->nodes_visited += t.nodes_visited - tree_before_.nodes_visited;
    stats_->rect_transforms +=
        t.rect_transforms - tree_before_.rect_transforms;
    stats_->disk_reads += p.disk_reads - pool_before_.disk_reads;
    stats_->elapsed_ms += watch_.ElapsedMillis();
  }

 private:
  QueryStats* stats_;
  rtree::ThreadTraversalCounters tree_before_;
  ThreadPoolCounters pool_before_;
  StageStatsCapture stages_;
  Stopwatch watch_;
};

Status ValidateQuery(const KIndex& index, const RealVec& query) {
  if (query.size() != index.series_length()) {
    return Status::InvalidArgument(
        "query length " + std::to_string(query.size()) +
        " != indexed series length " +
        std::to_string(index.series_length()));
  }
  return Status::OK();
}

/// Appends the view's delta candidates for a range search: each visible
/// delta point goes through exactly the tree's leaf test — (transformed)
/// point rectangle intersects the search rectangle — in id order.
void AppendDeltaRangeCandidates(const IndexView& view,
                                const spatial::AffineMap* map,
                                const spatial::Rect& search_rect,
                                std::vector<SeriesId>* out) {
  if (!view.has_delta()) return;
  const DeltaIndex& delta = view.delta();
  for (uint64_t slot = view.delta_begin(); slot < view.delta_end(); ++slot) {
    spatial::Rect rect = spatial::Rect::FromPoint(delta.PointAt(slot));
    if (map != nullptr) rect = map->Apply(rect);
    if (rect.Intersects(search_rect)) out->push_back(delta.base() + slot);
  }
}

}  // namespace

Result<PreparedQuery> PrepareQuery(const IndexView& view, const RealVec& query,
                                   const QuerySpec& spec) {
  obs::StageTimer span(obs::Stage::kPrepare);
  const KIndex& index = view.main();
  TSQ_RETURN_IF_ERROR(ValidateQuery(index, query));
  const SeriesFeatures qf = index.extractor().Extract(query);
  PreparedQuery out;
  out.mean = qf.mean;
  out.std = qf.std;
  if (spec.transform.has_value() && spec.mode == TransformMode::kBoth) {
    const FeatureTransform& t = *spec.transform;
    out.full_spectrum = t.spectral.Apply(qf.spectrum);
    out.mean = t.mean_scale * qf.mean + t.mean_offset;
    out.std = t.std_scale * qf.std;
  } else {
    out.full_spectrum = qf.spectrum;
  }
  out.coefficients = index.extractor().StoredCoefficients(out.full_spectrum);
  return out;
}

Status RangeSearchCandidates(const IndexView& view,
                             const PreparedQuery& prepared,
                             double epsilon, const QuerySpec& spec,
                             std::vector<SeriesId>* out) {
  TSQ_CHECK(out != nullptr);
  const KIndex& index = view.main();
  const spatial::Rect search_rect = BuildSearchRect(
      index.layout(), prepared.coefficients, epsilon, spec.window);
  std::optional<spatial::AffineMap> map;
  {
    obs::StageTimer span(obs::Stage::kDescent);
    if (spec.transform.has_value()) {
      TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*spec.transform));
      TSQ_RETURN_IF_ERROR(
          index.RangeCandidatesTransformed(*map, search_rect, out));
    } else {
      TSQ_RETURN_IF_ERROR(index.RangeCandidates(search_rect, out));
    }
  }
  obs::StageTimer span(obs::Stage::kDelta);
  AppendDeltaRangeCandidates(view, map.has_value() ? &*map : nullptr,
                             search_rect, out);
  return Status::OK();
}

double VerifyDistanceSquared(const ComplexVec& data_spectrum,
                             const std::optional<FeatureTransform>& transform,
                             const ComplexVec& query_target) {
  if (transform.has_value()) {
    return cvec::DistanceSquared(transform->spectral.Apply(data_spectrum),
                                 query_target);
  }
  return cvec::DistanceSquared(data_spectrum, query_target);
}

double VerifyDistance(const ComplexVec& data_spectrum,
                      const std::optional<FeatureTransform>& transform,
                      const ComplexVec& query_target) {
  return std::sqrt(
      VerifyDistanceSquared(data_spectrum, transform, query_target));
}

Status VerifyRangeCandidates(const Relation& relation,
                             const std::vector<SeriesId>& candidates,
                             const PreparedQuery& prepared,
                             const QuerySpec& spec, double epsilon,
                             std::vector<Match>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  obs::StageTimer span(obs::Stage::kRefine);
  for (const SeriesId id : candidates) {
    TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation.Get(id));
    if (stats != nullptr) ++stats->verified;
    const double d =
        VerifyDistance(rec.dft, spec.transform, prepared.full_spectrum);
    if (d <= epsilon) {
      out->push_back(Match{id, std::move(rec.name), d});
    }
  }
  return Status::OK();
}

void SortMatches(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& a, const Match& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.id < b.id);
            });
}

Status IndexRangeQuery(const IndexView& index, const Relation& relation,
                       const RealVec& query, double epsilon,
                       const QuerySpec& spec, std::vector<Match>* out,
                       QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative query threshold");
  }
  StatsScope scope(stats);

  // Step 1 — preprocessing.
  TSQ_ASSIGN_OR_RETURN(const PreparedQuery prepared,
                       PrepareQuery(index, query, spec));

  // Step 2 — search, with the transformed traversal when applicable.
  std::vector<SeriesId> candidates;
  TSQ_RETURN_IF_ERROR(
      RangeSearchCandidates(index, prepared, epsilon, spec, &candidates));
  if (stats != nullptr) stats->candidates += candidates.size();

  // Step 3 — postprocessing against full database records.
  TSQ_RETURN_IF_ERROR(VerifyRangeCandidates(relation, candidates, prepared,
                                            spec, epsilon, out, stats));
  SortMatches(out);
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

Status IndexKnnQuery(const IndexView& view, const Relation& relation,
                     const RealVec& query, size_t k, const QuerySpec& spec,
                     const KnnOptions& options, std::vector<Match>* out,
                     QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  const KIndex& index = view.main();
  out->clear();
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("negative kNN error tolerance");
  }
  if (k == 0) {
    TSQ_RETURN_IF_ERROR(ValidateQuery(index, query));
    return Status::OK();
  }
  StatsScope scope(stats);

  TSQ_ASSIGN_OR_RETURN(const PreparedQuery prepared,
                       PrepareQuery(view, query, spec));
  const spatial::Point query_point = index.extractor().ToPointFromCoefficients(
      prepared.coefficients, prepared.mean, prepared.std);
  const auto metric = index.space().MakeNnMetric(query_point);

  std::optional<spatial::AffineMap> map;
  if (spec.transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*spec.transform));
  }

  // Optimal multi-step kNN: verify candidates in ascending lower-bound
  // order; once k answers are verified and the next lower bound exceeds the
  // k-th verified distance, no better answer can exist (the lower bound is
  // admissible w.r.t. the full-length distance). Everything runs in
  // SQUARED space — bounds arrive squared from the stream, candidates are
  // verified with VerifyDistanceSquared against a squared cutoff, and the
  // one sqrt per answer happens at materialization. sqrt is monotone, so
  // every comparison decides exactly as its sqrt'ed counterpart.
  //
  // Approximation (KnnOptions) relaxes the stop rule: with tolerance
  // epsilon the cutoff fires once L^2 * (1+epsilon)^2 > d_k^2 — i.e. the
  // true k-th neighbor can undercut the reported one by at most a factor
  // (1+epsilon). epsilon = 0 makes the factor exactly 1.0 and multiplying
  // by 1.0 is exact, so the epsilon-0 path is bit-identical to exact. The
  // probe budget and first-leaf knobs stop unconditionally; whatever
  // bound was in effect at the stop yields the observed max_error.
  struct Verified {
    double dist_sq;
    SeriesId id;
    std::string name;
    bool operator<(const Verified& other) const {
      return dist_sq < other.dist_sq ||
             (dist_sq == other.dist_sq && id < other.id);
    }
  };
  std::vector<Verified> best;  // kept as a max-heap on squared distance
  auto heap_cmp = [](const Verified& a, const Verified& b) { return a < b; };

  const double relax = (1.0 + options.epsilon) * (1.0 + options.epsilon);
  Status inner_status;
  uint64_t visited = 0;
  bool stopped = false;          // any stop rule fired (incl. exact cutoff)
  double stop_bound_sq = std::numeric_limits<double>::infinity();

  auto visit = [&](SeriesId id, double lower_bound_sq) -> bool {
    if (best.size() == k) {
      if (lower_bound_sq * relax > best.front().dist_sq) {
        stopped = true;  // exact (or epsilon-relaxed) optimality cutoff
        stop_bound_sq = lower_bound_sq;
        return false;
      }
      if (options.stop_after_first_leaf) {
        stopped = true;
        stop_bound_sq = lower_bound_sq;
        return false;
      }
    }
    if (options.probe_budget > 0 && visited >= options.probe_budget) {
      stopped = true;
      stop_bound_sq = lower_bound_sq;
      return false;
    }
    ++visited;
    obs::StageTimer span(obs::Stage::kRefine);
    Result<SeriesRecord> rec = relation.Get(id);
    if (!rec.ok()) {
      inner_status = rec.status();
      return false;
    }
    const double d_sq = VerifyDistanceSquared(rec->dft, spec.transform,
                                              prepared.full_spectrum);
    if (best.size() < k) {
      best.push_back(Verified{d_sq, id, std::move(rec->name)});
      std::push_heap(best.begin(), best.end(), heap_cmp);
    } else if (d_sq < best.front().dist_sq) {
      std::pop_heap(best.begin(), best.end(), heap_cmp);
      best.back() = Verified{d_sq, id, std::move(rec->name)};
      std::push_heap(best.begin(), best.end(), heap_cmp);
    }
    return true;
  };

  // Delta candidates with the same admissible lower bound the tree
  // computes for its leaf entries (MinDistSquared on the transformed
  // point rectangle), sorted ascending by (bound, id). The merged visit
  // order is globally nondecreasing in the bound — delta entries drain
  // strictly below each tree emission, ties go to the tree — so the
  // optimal multi-step cutoff treats main + delta as one index.
  struct DeltaCandidate {
    double lower_bound_sq;
    SeriesId id;
  };
  std::vector<DeltaCandidate> delta_candidates;
  if (view.has_delta()) {
    obs::StageTimer span(obs::Stage::kDelta);
    const DeltaIndex& delta = view.delta();
    for (uint64_t slot = view.delta_begin(); slot < view.delta_end();
         ++slot) {
      spatial::Rect rect = spatial::Rect::FromPoint(delta.PointAt(slot));
      if (map.has_value()) rect = map->Apply(rect);
      delta_candidates.push_back(DeltaCandidate{metric->MinDistSquared(rect),
                                                delta.base() + slot});
    }
    std::sort(delta_candidates.begin(), delta_candidates.end(),
              [](const DeltaCandidate& a, const DeltaCandidate& b) {
                return a.lower_bound_sq < b.lower_bound_sq ||
                       (a.lower_bound_sq == b.lower_bound_sq && a.id < b.id);
              });
  }
  size_t next_delta = 0;
  bool keep_going = true;
  auto drain_delta_below = [&](double bound_sq) {
    while (keep_going && next_delta < delta_candidates.size() &&
           delta_candidates[next_delta].lower_bound_sq < bound_sq) {
      keep_going = visit(delta_candidates[next_delta].id,
                         delta_candidates[next_delta].lower_bound_sq);
      ++next_delta;
    }
  };

  {
    // The stream span covers the best-first traversal; per-candidate
    // verification inside `visit` opens its own kRefine span, so descent
    // self-time is pure tree work.
    obs::StageTimer span(obs::Stage::kDescent);
    TSQ_RETURN_IF_ERROR(index.StreamNearest(
        *metric, map.has_value() ? &*map : nullptr,
        [&](SeriesId id, double lower_bound_sq) {
          drain_delta_below(lower_bound_sq);
          if (!keep_going) return false;
          keep_going = visit(id, lower_bound_sq);
          return keep_going;
        }));
  }
  TSQ_RETURN_IF_ERROR(inner_status);
  if (keep_going) {
    // Tree exhausted without hitting the cutoff; remaining delta
    // candidates all bound at or above every tree emission.
    obs::StageTimer span(obs::Stage::kDelta);
    drain_delta_below(std::numeric_limits<double>::infinity());
    TSQ_RETURN_IF_ERROR(inner_status);
  }

  std::sort(best.begin(), best.end());
  out->reserve(best.size());
  for (Verified& v : best) {
    out->push_back(Match{v.id, std::move(v.name), std::sqrt(v.dist_sq)});
  }

  // Observed error bound: when the search stopped at lower bound L with
  // L < d_k, the true k-th distance lies in [L, d_k], so every reported
  // distance is within d_k / L of its true rank's distance. When the
  // index was exhausted, or the stopping bound already dominates d_k
  // (every exact run), the answer is provably exact: error 0. A probe
  // budget can stop the search before k answers were even found; the
  // distances of the missing ranks are then unbounded, so no finite
  // error can be certified.
  double max_error = 0.0;
  if (stopped) {
    if (best.size() < k) {
      max_error = std::numeric_limits<double>::infinity();
    } else {
      const double d_k_sq = best.back().dist_sq;  // k-th: best is sorted now
      if (stop_bound_sq < d_k_sq) {
        max_error = stop_bound_sq > 0.0
                        ? std::sqrt(d_k_sq / stop_bound_sq) - 1.0
                        : std::numeric_limits<double>::infinity();
      }
    }
  }

  if (stats != nullptr) {
    stats->candidates += visited;
    stats->verified += visited;
    stats->answers += out->size();
    const uint64_t total = view.total_series();
    stats->pruned += total > visited ? total - visited : 0;
    if (max_error > stats->max_error) stats->max_error = max_error;
    stats->approx = stats->approx || !options.is_default();
  }
  return Status::OK();
}

Status IndexKnnQuery(const IndexView& view, const Relation& relation,
                     const RealVec& query, size_t k, const QuerySpec& spec,
                     std::vector<Match>* out, QueryStats* stats) {
  return IndexKnnQuery(view, relation, query, k, spec, KnnOptions{}, out,
                       stats);
}

Status IndexSelfJoin(const IndexView& view, const Relation& relation,
                     double epsilon,
                     const std::optional<FeatureTransform>& transform,
                     std::vector<JoinPair>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  const KIndex& index = view.main();
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  StatsScope scope(stats);

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*transform));
  }

  // Paper Sec. 5 methods c/d: for every sequence in view build a search
  // rectangle and pose it to the (transformed) index — tree plus delta —
  // as a range query; verify candidates with full-length distances. The
  // view bounds the iteration (not relation.size()): ids ingested after
  // the view was taken are invisible to it, keeping the join closed over
  // one consistent set of series under concurrent ingest.
  const uint64_t n = view.total_series();
  for (SeriesId qid = 0; qid < n; ++qid) {
    std::vector<SeriesId> candidates;
    ComplexVec target;
    {
      obs::StageTimer prepare_span(obs::Stage::kPrepare);
      TSQ_ASSIGN_OR_RETURN(SeriesRecord qrec, relation.Get(qid));
      if (stats != nullptr) ++stats->records_scanned;
      target = transform.has_value() ? transform->spectral.Apply(qrec.dft)
                                     : qrec.dft;
    }
    const ComplexVec coeffs = index.extractor().StoredCoefficients(target);
    const spatial::Rect rect =
        BuildSearchRect(index.layout(), coeffs, epsilon, std::nullopt);

    {
      obs::StageTimer descent_span(obs::Stage::kDescent);
      if (map.has_value()) {
        TSQ_RETURN_IF_ERROR(
            index.RangeCandidatesTransformed(*map, rect, &candidates));
      } else {
        TSQ_RETURN_IF_ERROR(index.RangeCandidates(rect, &candidates));
      }
    }
    {
      obs::StageTimer delta_span(obs::Stage::kDelta);
      AppendDeltaRangeCandidates(view, map.has_value() ? &*map : nullptr,
                                 rect, &candidates);
    }
    if (stats != nullptr) stats->candidates += candidates.size();

    obs::StageTimer refine_span(obs::Stage::kRefine);
    for (const SeriesId cid : candidates) {
      if (cid == qid) continue;
      TSQ_ASSIGN_OR_RETURN(SeriesRecord crec, relation.Get(cid));
      if (stats != nullptr) ++stats->verified;
      const double d = VerifyDistance(crec.dft, transform, target);
      if (d <= epsilon) {
        out->push_back(JoinPair{qid, cid, d});
      }
    }
  }
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

Status TreeMatchSelfJoin(const IndexView& view, const Relation& relation,
                         double epsilon,
                         const std::optional<FeatureTransform>& transform,
                         std::vector<JoinPair>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  const KIndex& index = view.main();
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  StatsScope scope(stats);

  std::optional<spatial::AffineMap> map;
  if (transform.has_value()) {
    TSQ_ASSIGN_OR_RETURN(map, index.space().ToAffineMap(*transform));
  }
  const spatial::AffineMap* map_ptr = map.has_value() ? &*map : nullptr;

  // One synchronized descent collects candidate pairs; full-length
  // verification resolves them, caching transformed spectra so each record
  // is fetched and transformed once.
  std::vector<std::pair<SeriesId, SeriesId>> candidates;
  {
    obs::StageTimer span(obs::Stage::kDescent);
    TSQ_RETURN_IF_ERROR(index.tree()->JoinWith(
        *index.tree(), map_ptr, map_ptr,
        index.space().MakeJoinPredicate(epsilon),
        [&candidates](uint64_t a, uint64_t b) {
          if (a != b) candidates.emplace_back(a, b);
          return true;
        }));
  }

  // Delta probes, appended after the tree-match pairs in slot order. Each
  // unmerged series poses one search rectangle: against the main tree it
  // emits both ordered pairs (the tree descent would have found each
  // direction); against the other delta entries it emits only its own
  // (qid, cid) — the partner's probe emits the reverse. The rectangle
  // filter is admissible (Lemma 1), so verification below yields exactly
  // the pairs a single all-in-one tree would.
  if (view.has_delta()) {
    obs::StageTimer span(obs::Stage::kDelta);
    const DeltaIndex& delta = view.delta();
    for (uint64_t slot = view.delta_begin(); slot < view.delta_end();
         ++slot) {
      const SeriesId qid = delta.base() + slot;
      TSQ_ASSIGN_OR_RETURN(SeriesRecord qrec, relation.Get(qid));
      if (stats != nullptr) ++stats->records_scanned;
      ComplexVec target = transform.has_value()
                              ? transform->spectral.Apply(qrec.dft)
                              : std::move(qrec.dft);
      const ComplexVec coeffs = index.extractor().StoredCoefficients(target);
      const spatial::Rect rect =
          BuildSearchRect(index.layout(), coeffs, epsilon, std::nullopt);

      std::vector<SeriesId> main_partners;
      if (map_ptr != nullptr) {
        TSQ_RETURN_IF_ERROR(
            index.RangeCandidatesTransformed(*map_ptr, rect, &main_partners));
      } else {
        TSQ_RETURN_IF_ERROR(index.RangeCandidates(rect, &main_partners));
      }
      for (const SeriesId partner : main_partners) {
        candidates.emplace_back(qid, partner);
        candidates.emplace_back(partner, qid);
      }
      for (uint64_t other = view.delta_begin(); other < view.delta_end();
           ++other) {
        if (other == slot) continue;
        spatial::Rect other_rect =
            spatial::Rect::FromPoint(delta.PointAt(other));
        if (map_ptr != nullptr) other_rect = map_ptr->Apply(other_rect);
        if (other_rect.Intersects(rect)) {
          candidates.emplace_back(qid, delta.base() + other);
        }
      }
    }
  }
  if (stats != nullptr) stats->candidates += candidates.size();

  std::unordered_map<SeriesId, ComplexVec> transformed_cache;
  auto transformed_spectrum =
      [&](SeriesId id) -> Result<const ComplexVec*> {
    auto it = transformed_cache.find(id);
    if (it == transformed_cache.end()) {
      TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation.Get(id));
      if (stats != nullptr) ++stats->verified;
      ComplexVec spectrum = transform.has_value()
                                ? transform->spectral.Apply(rec.dft)
                                : std::move(rec.dft);
      it = transformed_cache.emplace(id, std::move(spectrum)).first;
    }
    return &it->second;
  };

  obs::StageTimer refine_span(obs::Stage::kRefine);
  for (const auto& [a, b] : candidates) {
    TSQ_ASSIGN_OR_RETURN(const ComplexVec* sa, transformed_spectrum(a));
    TSQ_ASSIGN_OR_RETURN(const ComplexVec* sb, transformed_spectrum(b));
    const double d = cvec::Distance(*sa, *sb);
    if (d <= epsilon) out->push_back(JoinPair{a, b, d});
  }
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

}  // namespace tsq
