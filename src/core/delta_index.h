// Copyright (c) 2026 The tsq Authors.
//
// The delta index: the small, append-friendly half of the epoch-published
// index pair (see IndexSnapshot in index_snapshot.h). Where the main
// R*-tree is immutable once published, the delta absorbs the feature
// points of freshly ingested series until a background merge folds them
// into a fresh tree. It is the structure that lets queries run without
// any reader-writer lock: readers only ever consult a dense visible
// prefix published with release stores, mirroring the relation's
// lock-free id directory (storage/relation.h).
//
// Concurrency contract:
//
// * One externally serialized writer. Put may only be called under the
//   owner's delta writer mutex (Database::delta_put_mutex_); concurrent
//   InsertBatch calls finish their relation appends in any order, so
//   Puts still arrive out of id order — each Put lands in its id's slot
//   and marks it ready, and the dense visible watermark advances over
//   every contiguously ready slot.
// * Lock-free readers. visible() is an acquire load; every slot below it
//   has fully written coordinates (the watermark's release store orders
//   the plain coordinate writes before it). Readers never look at ready
//   flags and never take a lock.
// * Slots are addressed by id: slot = id - base(). A batch that fails
//   mid-append never marks its slots ready, so the watermark freezes at
//   the last dense prefix — exactly the relation's poisoning behavior.
// * Compact (merge-time) runs under the same writer mutex and copies
//   every ready slot at or above the merge cutoff into a fresh delta
//   whose base is the cutoff, preserving in-flight batches that landed
//   after the merge chose its cutoff.

#ifndef TSQ_CORE_DELTA_INDEX_H_
#define TSQ_CORE_DELTA_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "series/time_series.h"
#include "spatial/point.h"

namespace tsq {

/// Append-friendly store of feature points for ids >= base(), with a
/// dense lock-free visible watermark. Fixed-capacity chunked slab: chunks
/// never move once allocated, so readers index without locks.
class DeltaIndex {
 public:
  static constexpr size_t kChunkEntries = 1024;
  static constexpr size_t kMaxChunks = 4096;  // ~4.2M unmerged entries

  /// An empty delta for ids starting at `base`, holding `dims`-dimensional
  /// feature points.
  DeltaIndex(SeriesId base, size_t dims);
  TSQ_DISALLOW_COPY_AND_MOVE(DeltaIndex);
  ~DeltaIndex();

  /// A fresh delta with base `cutoff` carrying every ready slot of `old`
  /// with id >= cutoff (the entries a merge up to `cutoff` did not fold).
  /// Caller must hold the writer mutex (no concurrent Put on `old`).
  /// Requires old.base() <= cutoff.
  static std::unique_ptr<DeltaIndex> Compact(const DeltaIndex& old,
                                             SeriesId cutoff);

  /// Stores the feature point for `id` and advances the dense watermark
  /// over every contiguously ready slot. Caller must hold the writer
  /// mutex. Fails with OutOfRange when the slot is beyond the
  /// fixed capacity (the caller merges and retries) and InvalidArgument
  /// on an id below base() or a dimension mismatch.
  Status Put(SeriesId id, const spatial::Point& point);

  /// First id this delta covers: slot s holds id base() + s.
  SeriesId base() const { return base_; }

  /// Feature dimensionality.
  size_t dims() const { return dims_; }

  /// Dense visible watermark in slots: every slot below it is fully
  /// written and readable (acquire). Monotone under a live writer.
  uint64_t visible() const { return visible_.load(std::memory_order_acquire); }

  /// The feature point in `slot`. Requires slot < visible() for lock-free
  /// readers (or, under the writer mutex, any ready slot).
  spatial::Point PointAt(uint64_t slot) const;

 private:
  struct Chunk {
    explicit Chunk(size_t dims);
    std::vector<double> coords;   // kChunkEntries * dims
    std::vector<uint8_t> ready;   // writer-only; readers gate on visible()
  };

  Chunk* chunk(size_t index) const {
    return chunks_[index].load(std::memory_order_acquire);
  }

  const SeriesId base_;
  const size_t dims_;
  std::vector<std::atomic<Chunk*>> chunks_;
  std::atomic<uint64_t> visible_{0};
  uint64_t high_water_ = 0;  // writer-only: one past the highest ready slot
};

}  // namespace tsq

#endif  // TSQ_CORE_DELTA_INDEX_H_
