// Copyright (c) 2026 The tsq Authors.
//
// Sequential-scan baselines (paper Sec. 5). The paper tunes its scan to be
// a fair opponent: it scans the relation that stores the series in the
// *frequency* domain — because energy concentrates in the leading
// coefficients, an early-abandoning distance loop skips most of each
// sequence — and it stops each distance computation as soon as the running
// sum exceeds eps. Both the naive (full-distance) and the early-abandoning
// variants are provided; Table 1's methods a and b are exactly
// SeqScanSelfJoin with early_abandon = false / true.

#ifndef TSQ_CORE_SEQ_SCAN_H_
#define TSQ_CORE_SEQ_SCAN_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/feature.h"
#include "core/queries.h"
#include "storage/relation.h"

namespace tsq {

/// Range query by scanning the relation. `extractor` must match the layout
/// the relation's spectra were stored under. Reentrant over a frozen
/// relation.
Status SeqScanRangeQuery(const Relation& relation,
                         const FeatureExtractor& extractor,
                         const RealVec& query, double epsilon,
                         const QuerySpec& spec, bool early_abandon,
                         std::vector<Match>* out, QueryStats* stats);

/// Self-join by scanning: a nested-loop join over the disk-resident
/// relation that compares every sequence with every later one (paper
/// method a with early_abandon = false, method b with true). Every inner
/// comparison re-reads the record from storage, as the paper's methods do.
/// The transformation, when present, applies to both sides of each
/// comparison. Emits unordered pairs (first < second), matching the
/// paper's counting for methods a/b.
Status SeqScanSelfJoin(const Relation& relation, double epsilon,
                       const std::optional<FeatureTransform>& transform,
                       bool early_abandon, std::vector<JoinPair>* out,
                       QueryStats* stats);

/// Fused transform+distance kernel with early abandoning, exploiting
/// T(x) - T(y) = a ∗ (x - y) when both sides are transformed (b cancels).
/// Returns nullopt once the partial sum exceeds epsilon.
std::optional<double> EarlyAbandonPairDistance(const ComplexVec& x,
                                               const ComplexVec& y,
                                               const LinearTransform* t,
                                               double epsilon);

}  // namespace tsq

#endif  // TSQ_CORE_SEQ_SCAN_H_
