// Copyright (c) 2026 The tsq Authors.
//
// FeatureSpace: the bridge between the transformation language and the
// spatial index. It
//   * converts a FeatureTransform (spectral LinearTransform + optional
//     affine action on the mean/std dims) into the per-dimension AffineMap
//     that Algorithm 1 applies to R-tree MBRs, enforcing the safety
//     theorems (real `a` in Srect, zero `b` in Spol);
//   * provides the NN lower-bound metric in either coordinate space — for
//     Spol this is the exact point-to-annular-sector distance per
//     coefficient, which generalizes MINDIST to polar MBRs.

#ifndef TSQ_CORE_FEATURE_SPACE_H_
#define TSQ_CORE_FEATURE_SPACE_H_

#include <functional>
#include <memory>
#include <optional>

#include "common/status.h"
#include "core/feature.h"
#include "rtree/rstar_tree.h"
#include "spatial/affine_map.h"
#include "transform/linear_transform.h"

namespace tsq {

/// A similarity transformation lifted to the full feature space: the
/// spectral part acts on the stored DFT coefficients (and must be safe for
/// the chosen coordinate space); the mean/std parts cover [GK95]-style
/// shifts and scales on the two extra dimensions ("despite using the polar
/// representation, we could still have simple shifts", Sec. 5).
struct FeatureTransform {
  /// Full-length (series length n) spectral transform.
  LinearTransform spectral;
  /// Action on the mean dimension: mean -> mean_scale * mean + mean_offset.
  double mean_scale = 1.0;
  double mean_offset = 0.0;
  /// Action on the std dimension: std -> std_scale * std (std has no
  /// meaningful offset).
  double std_scale = 1.0;

  /// Lifts a purely spectral transform (mean/std untouched).
  static FeatureTransform Spectral(LinearTransform t) {
    return FeatureTransform{std::move(t), 1.0, 0.0, 1.0};
  }

  /// [GK95] shift+scale: v -> factor * v + delta on raw samples, which
  /// moves mean to factor*mean + delta and std to |factor|*std while
  /// leaving the normal form — and hence its spectrum — untouched.
  static FeatureTransform ShiftScale(size_t n, double delta, double factor);
};

/// Layout-aware operations over the index feature space.
class FeatureSpace {
 public:
  explicit FeatureSpace(FeatureLayout layout)
      : layout_(layout), extractor_(layout) {}

  const FeatureLayout& layout() const { return layout_; }
  size_t dims() const { return layout_.dims(); }
  const FeatureExtractor& extractor() const { return extractor_; }

  /// Builds the AffineMap realizing `t` on index rectangles (Theorems 2/3).
  /// Fails with InvalidArgument when `t` is not safe in this space.
  Result<spatial::AffineMap> ToAffineMap(const FeatureTransform& t) const;

  /// The NN lower-bound metric anchored at a query point (which must be in
  /// this space's coordinates). Spectral dims only: mean/std dims do not
  /// contribute to similarity distance.
  std::unique_ptr<rtree::NnMetric> MakeNnMetric(spatial::Point query) const;

  /// Exact spectral distance between two feature points — the Euclidean
  /// distance between the complex coefficient vectors the points encode
  /// (independent of coordinate space). Used by tests and for ranking.
  double SpectralDistance(const spatial::Point& a,
                          const spatial::Point& b) const;

  /// Lower bound of the spectral distance between any point of rect `a`
  /// and any point of rect `b` (both already transformed). In Srect this
  /// is the rectangle-rectangle MINDIST over the spectral dims; in Spol
  /// each (magnitude, angle) interval pair is treated as an annular sector
  /// via its exact Cartesian bounding box. Used by the tree-match join:
  /// a node pair prunes when the bound exceeds epsilon.
  double MinSpectralDistanceBetweenRects(const spatial::Rect& a,
                                         const spatial::Rect& b) const;

  /// Join predicate for an epsilon-join: true when rects a and b may
  /// contain a pair within spectral distance eps.
  std::function<bool(const spatial::Rect&, const spatial::Rect&)>
  MakeJoinPredicate(double eps) const;

 private:
  FeatureLayout layout_;
  FeatureExtractor extractor_;
};

}  // namespace tsq

#endif  // TSQ_CORE_FEATURE_SPACE_H_
