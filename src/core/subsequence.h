// Copyright (c) 2026 The tsq Authors.
//
// Subsequence matching in the style of Faloutsos, Ranganathan &
// Manolopoulos [FRM94] — the companion indexing method the paper cites for
// queries like its introduction's "stocks that increased linearly up to
// October 1987, and then crashed": find every *subsequence* of any stored
// series within epsilon of a query pattern.
//
// The ST-index construction:
//   * slide a window of length w over every stored series; each position
//     maps to a point in feature space (first k DFT coefficients of the
//     raw window, rectangular coordinates — the [AFS93] layout);
//   * consecutive window positions form a *trail* through feature space;
//     instead of indexing every point, the trail is cut into pieces and
//     each piece's MBR is stored in the R*-tree (far fewer, fatter
//     entries);
//   * a range query grows the query's feature point by eps (Sec. 3.1
//     rectangle), collects intersecting trail pieces, and verifies every
//     window position in each candidate piece against the full data with
//     an early-abandoning time-domain distance.
// The prefix-distance bound makes the candidate set a superset of the
// answers (no false dismissals), exactly as in the whole-match case.
//
// tsq uses fixed-length trail pieces (a simplification of [FRM94]'s
// adaptive segmentation; the piece length is a tuning knob) and an O(1)
// *sliding DFT* update per window step, resynchronized periodically to
// bound floating-point drift.

#ifndef TSQ_CORE_SUBSEQUENCE_H_
#define TSQ_CORE_SUBSEQUENCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/queries.h"
#include "dft/complex_vec.h"
#include "rtree/rstar_tree.h"
#include "series/time_series.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq {

/// Construction parameters for a SubsequenceIndex.
struct SubsequenceIndexOptions {
  /// Window length w: queries must have exactly this length.
  size_t window = 64;
  /// Number of complex DFT coefficients per window (from X_0); the feature
  /// space has 2*coefficients dimensions.
  size_t coefficients = 3;
  /// Window positions per trail piece (one R-tree entry each).
  size_t trail_piece = 16;
  /// Backing page file.
  std::string path = "tsq_subseq.pages";
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 1024;
  rtree::RTreeOptions rtree;
};

/// One subsequence answer: series `id`, window starting at `offset`.
struct SubsequenceMatch {
  SeriesId id = kInvalidSeriesId;
  size_t offset = 0;
  double distance = 0.0;
};

/// Callback used by searches to fetch a stored series' samples by id.
using SeriesFetcher = std::function<Result<RealVec>(SeriesId)>;

/// Computes the unitary DFT feature points of every length-`window`
/// sliding window of `values`, keeping the first `coefficients`
/// coefficients. Exposed for testing (the incremental update must match
/// per-window DFTs). Returns values.size() - window + 1 points.
std::vector<ComplexVec> SlidingWindowSpectra(const RealVec& values,
                                             size_t window,
                                             size_t coefficients);

/// The ST-index: an R*-tree over trail-piece MBRs of sliding-window
/// features. AddSeries requires external exclusion; RangeSearch is safe
/// from any number of threads once building is done (const traversal over
/// the frozen tree — the batch engine relies on this).
class SubsequenceIndex {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(SubsequenceIndex);
  ~SubsequenceIndex() = default;

  /// Creates an empty index.
  static Result<std::unique_ptr<SubsequenceIndex>> Create(
      const SubsequenceIndexOptions& options);

  /// Indexes every window position of a series. The series must be at
  /// least `window` long; ids must be unique and fit in 32 bits (the
  /// payload packs (id, piece start offset) into one u64).
  Status AddSeries(SeriesId id, const RealVec& values);

  /// Finds all subsequences of length `window` within `epsilon` of
  /// `query` (Euclidean, time domain). `fetch` resolves series ids to
  /// their samples for postprocessing. Results sorted by (id, offset).
  Status RangeSearch(const RealVec& query, double epsilon,
                     const SeriesFetcher& fetch,
                     std::vector<SubsequenceMatch>* out,
                     QueryStats* stats) const;

  /// Number of indexed trail pieces / total window positions.
  uint64_t num_pieces() const { return tree_->size(); }
  uint64_t num_windows() const { return num_windows_; }
  size_t window() const { return options_.window; }

  /// The underlying tree (stats, white-box tests).
  rtree::RStarTree* tree() { return tree_.get(); }
  const rtree::RStarTree* tree() const { return tree_.get(); }

 private:
  explicit SubsequenceIndex(SubsequenceIndexOptions options)
      : options_(std::move(options)) {}

  SubsequenceIndexOptions options_;
  uint64_t num_windows_ = 0;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<rtree::RStarTree> tree_;
};

/// Brute-force subsequence scan (the baseline): every offset of every
/// series, early-abandoning distance. Same answer set as
/// SubsequenceIndex::RangeSearch.
Status ScanSubsequences(const std::vector<TimeSeries>& series, size_t window,
                        const RealVec& query, double epsilon,
                        std::vector<SubsequenceMatch>* out);

}  // namespace tsq

#endif  // TSQ_CORE_SUBSEQUENCE_H_
