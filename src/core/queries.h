// Copyright (c) 2026 The tsq Authors.
//
// The paper's query processing (Sec. 4, Algorithm 2) over a KIndex plus the
// sequence Relation:
//
//   1. Preprocessing  — transform the query into the frequency domain,
//      apply the transformation where the mode calls for it, and build the
//      search rectangle (Sec. 3.1).
//   2. Search         — traverse the R*-tree, applying the transformation
//      to every MBR on the fly (Algorithm 1), collecting candidates.
//   3. Postprocessing — fetch each candidate's full record and keep it iff
//      its full-length Euclidean distance is within the threshold.
//
// Lemma 1 guarantees step 2 returns a superset of the answers, so the
// combination is exact.
//
// Supported queries: range, k-nearest-neighbor (optimal multi-step: verify
// candidates in ascending lower-bound order, stop when the bound passes the
// k-th verified distance), and the all-pairs self-join of Sec. 5 (Table 1).
//
// Every entry point takes an IndexView (index_snapshot.h): the immutable
// main R*-tree plus the delta slot range visible when the view was taken.
// Search consults both structures — delta feature points go through the
// same rectangle / lower-bound tests as tree leaf entries, so Lemma 1's
// no-false-dismissal property and the optimal multi-step kNN cutoff hold
// over the pair exactly as over one tree. A bare KIndex converts
// implicitly to an all-main view.

#ifndef TSQ_CORE_QUERIES_H_
#define TSQ_CORE_QUERIES_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/index_snapshot.h"
#include "core/k_index.h"
#include "core/search_rect.h"
#include "storage/relation.h"

namespace tsq {

/// Which side(s) of the comparison the transformation applies to.
enum class TransformMode {
  /// Compare T(data) against T(query) — the motivating use ("their 3-day
  /// moving averages look the same", Ex. 1.1; both sides smoothed).
  kBoth,
  /// Compare T(data) against the query as given — the paper's formal Query
  /// of Sec. 4 ("find all objects o in T(e) with D(o, q) < eps").
  kDataOnly,
};

/// One similarity answer.
struct Match {
  SeriesId id = kInvalidSeriesId;
  std::string name;
  double distance = 0.0;
};

/// One join answer; ordered pair (the paper's Table 1 counts (a,b) and
/// (b,a) separately for the transformed join).
struct JoinPair {
  SeriesId first = kInvalidSeriesId;
  SeriesId second = kInvalidSeriesId;
  double distance = 0.0;
};

/// Everything a query run measures. Disk/node counters are deltas captured
/// around the query.
struct QueryStats {
  uint64_t candidates = 0;       ///< leaf hits emitted by the index
  uint64_t verified = 0;         ///< records fetched in postprocessing
  uint64_t answers = 0;
  uint64_t nodes_visited = 0;    ///< R-tree nodes touched
  uint64_t rect_transforms = 0;  ///< MBR transformations (Algorithm 1 work)
  uint64_t disk_reads = 0;       ///< buffer-pool misses gone to disk
  uint64_t records_scanned = 0;  ///< relation records read (scans)
  double elapsed_ms = 0.0;
  /// kNN only: series in the view never fetched for verification
  /// (total_series - candidates). Measures how much work the index —
  /// or an approximation knob — saved.
  uint64_t pruned = 0;
  /// Approximate kNN: observed upper bound on the relative error of the
  /// k-th reported distance, (d_k / L) - 1 against the stopping lower
  /// bound L. 0 whenever the run provably returned the exact answer
  /// (including every exact-mode query). Guaranteed <= the requested
  /// KnnOptions::epsilon.
  double max_error = 0.0;
  /// True iff the result was produced under non-default KnnOptions.
  bool approx = false;
  /// True iff stage tracing (obs::TracingArmed) was on while this query
  /// ran — the stage fields below are meaningful only then. Tracing only
  /// reads clocks; answers are bit-identical either way.
  bool traced = false;
  /// Per-stage self-time breakdown of elapsed_ms (obs/trace.h): where
  /// inside the multi-step filter pipeline the query spent its time. The
  /// stages are exclusive (a pool read during descent counts under
  /// pool_wait_ms only), so they sum to at most elapsed_ms.
  double prepare_ms = 0.0;    ///< validation + DFT feature projection
  double descent_ms = 0.0;    ///< R*-tree traversal
  double delta_ms = 0.0;      ///< delta-index scan/sort/drain
  double pool_wait_ms = 0.0;  ///< buffer-pool disk reads + load waits
  double refine_ms = 0.0;     ///< full-length verification distances

  /// Accumulates `other` into this. Batch execution merges the per-query
  /// stats of every worker; elapsed_ms sums, so after a parallel batch it
  /// reads as aggregate compute time, not wall-clock time; max_error is
  /// the max over merged queries (a batch-level guarantee).
  void Merge(const QueryStats& other) {
    candidates += other.candidates;
    verified += other.verified;
    answers += other.answers;
    nodes_visited += other.nodes_visited;
    rect_transforms += other.rect_transforms;
    disk_reads += other.disk_reads;
    records_scanned += other.records_scanned;
    elapsed_ms += other.elapsed_ms;
    pruned += other.pruned;
    if (other.max_error > max_error) max_error = other.max_error;
    approx = approx || other.approx;
    traced = traced || other.traced;
    prepare_ms += other.prepare_ms;
    descent_ms += other.descent_ms;
    delta_ms += other.delta_ms;
    pool_wait_ms += other.pool_wait_ms;
    refine_ms += other.refine_ms;
  }
};

/// Captures this thread's stage-timer deltas (obs/trace.h) into `stats`
/// at destruction, following the same thread-local before/after contract
/// as the tree/pool counters: a query runs on one thread, so the delta is
/// exactly that query's stage breakdown. No-op (beyond one relaxed load)
/// while tracing is disarmed or stats is null.
class StageStatsCapture {
 public:
  explicit StageStatsCapture(QueryStats* stats);
  ~StageStatsCapture();

  StageStatsCapture(const StageStatsCapture&) = delete;
  StageStatsCapture& operator=(const StageStatsCapture&) = delete;

 private:
  QueryStats* stats_;
  bool active_;
  uint64_t before_ns_[5] = {};
};

/// Shared query parameters.
struct QuerySpec {
  std::optional<FeatureTransform> transform;
  TransformMode mode = TransformMode::kBoth;
  std::optional<MeanStdWindow> window;
};

/// Approximation knobs for kNN (all default to exact search). The three
/// knobs compose; whichever stops the search first wins, and the observed
/// quality is reported in QueryStats (candidates visited, pruned,
/// max_error).
struct KnnOptions {
  /// Relative error tolerance: stop once the next lower bound L satisfies
  /// L * (1 + epsilon) > d_k, guaranteeing every reported distance is
  /// within (1 + epsilon) of the true k-th distance. 0 = exact — and
  /// structurally identical to the exact code path, so epsilon = 0
  /// answers are bit-identical to a default-options run.
  double epsilon = 0.0;
  /// Hard cap on candidates fetched and verified; 0 = unlimited. The
  /// error of the answers at the moment the budget ran out is reported
  /// as QueryStats::max_error (no a-priori guarantee).
  uint64_t probe_budget = 0;
  /// Stop as soon as k candidates have been verified — the ng-approx
  /// "first leaf" heuristic: the best-first descent's opening candidates
  /// come from the leaf nearest the query, which is where the true
  /// neighbors concentrate. Observed error reported, no guarantee.
  bool stop_after_first_leaf = false;

  bool is_default() const {
    return epsilon == 0.0 && probe_budget == 0 && !stop_after_first_leaf;
  }
};

// ---------------------------------------------------------------------------
// Algorithm 2 as reentrant steps.
//
// Each step is a free function over const index/relation views and keeps
// all its state in values owned by the caller, so any number of threads
// can run queries against one shared (frozen) KIndex + Relation. The
// whole-query entry points below compose them, and the batch engine
// (src/engine/) runs those reentrant compositions from its workers; the
// steps are exported so future pipelines (e.g. a staged executor that
// batches verification I/O) can recombine them.
// ---------------------------------------------------------------------------

/// Step 1 output — the query lifted into the frequency domain with the
/// transformation applied per QuerySpec::mode. Self-contained values, no
/// references into the index.
struct PreparedQuery {
  ComplexVec full_spectrum;  ///< comparison target, full length
  ComplexVec coefficients;   ///< stored slice for the search rectangle
  double mean = 0.0;         ///< (transformed) query mean
  double std = 0.0;          ///< (transformed) query std
};

/// Step 1 — preprocessing: validates the query length and extracts its
/// (transformed) features.
Result<PreparedQuery> PrepareQuery(const IndexView& index, const RealVec& query,
                                   const QuerySpec& spec);

/// Step 2 — search: builds the Sec. 3.1 rectangle for `prepared` and
/// collects candidate ids from the (transformed) index traversal — tree
/// leaves first, then the view's delta entries in id order.
Status RangeSearchCandidates(const IndexView& index,
                             const PreparedQuery& prepared,
                             double epsilon, const QuerySpec& spec,
                             std::vector<SeriesId>* out);

/// Step 3 kernel — the full-length verification distance
/// D(T(X_data), Q_target) (Parseval: computed in the frequency domain).
double VerifyDistance(const ComplexVec& data_spectrum,
                      const std::optional<FeatureTransform>& transform,
                      const ComplexVec& query_target);

/// Squared form of VerifyDistance — the kNN refine compares candidates
/// against a squared cutoff and takes one sqrt per materialized answer,
/// not one per candidate (VerifyDistance is exactly the sqrt of this).
double VerifyDistanceSquared(const ComplexVec& data_spectrum,
                             const std::optional<FeatureTransform>& transform,
                             const ComplexVec& query_target);

/// Step 3 — postprocessing: fetches every candidate record and appends the
/// ones within `epsilon` to `out` (unsorted; callers order the final
/// answer set). Bumps stats->verified per fetched record when given.
Status VerifyRangeCandidates(const Relation& relation,
                             const std::vector<SeriesId>& candidates,
                             const PreparedQuery& prepared,
                             const QuerySpec& spec, double epsilon,
                             std::vector<Match>* out, QueryStats* stats);

/// Deterministic answer ordering shared by all range paths: ascending
/// distance, ties by id.
void SortMatches(std::vector<Match>* matches);

// ---------------------------------------------------------------------------
// Whole-query entry points (compositions of the steps above). All are
// reentrant over a frozen index/relation pair.
// ---------------------------------------------------------------------------

/// Range query via the index (Algorithm 2).
Status IndexRangeQuery(const IndexView& index, const Relation& relation,
                       const RealVec& query, double epsilon,
                       const QuerySpec& spec, std::vector<Match>* out,
                       QueryStats* stats);

/// k-nearest-neighbor query via the index (optimal multi-step). With
/// non-default `options` the search may stop before the exactness proof
/// completes; QueryStats reports the observed (candidates, pruned,
/// max_error) triple so recall is measurable.
Status IndexKnnQuery(const IndexView& index, const Relation& relation,
                     const RealVec& query, size_t k, const QuerySpec& spec,
                     const KnnOptions& options, std::vector<Match>* out,
                     QueryStats* stats);

/// Exact-mode convenience overload (default KnnOptions).
Status IndexKnnQuery(const IndexView& index, const Relation& relation,
                     const RealVec& query, size_t k, const QuerySpec& spec,
                     std::vector<Match>* out, QueryStats* stats);

/// All-pairs self-join via the index: for every stored series, a range
/// query against the (transformed) index — the paper's methods c (no
/// transformation) and d (with transformation). Emits ordered pairs
/// (a, b), a != b.
Status IndexSelfJoin(const IndexView& index, const Relation& relation,
                     double epsilon,
                     const std::optional<FeatureTransform>& transform,
                     std::vector<JoinPair>* out, QueryStats* stats);

/// All-pairs self-join via a single synchronized traversal of the R*-tree
/// against its (transformed) self — the tree-matching extension of the
/// paper's method d: one lockstep descent instead of one range query per
/// record. Same answers as IndexSelfJoin (ordered pairs, a != b).
Status TreeMatchSelfJoin(const IndexView& index, const Relation& relation,
                         double epsilon,
                         const std::optional<FeatureTransform>& transform,
                         std::vector<JoinPair>* out, QueryStats* stats);

}  // namespace tsq

#endif  // TSQ_CORE_QUERIES_H_
