// Copyright (c) 2026 The tsq Authors.
//
// Feature extraction: time series -> point in the index feature space.
//
// The paper's pipeline (Sec. 5): transform the series to its normal form
// ([GK95], Eq. 9), take the DFT, drop X_0 (zero for normal forms), and
// store per series
//   dim 1: mean          dim 2: std
//   dim 3: |X_1|         dim 4: angle(X_1)
//   dim 5: |X_2|         dim 6: angle(X_2)
// using the polar representation Spol (chosen because multiplicative
// transforms — moving average — are safe there, Theorem 3).
//
// FeatureLayout parameterizes every choice so the ablations (rectangular
// vs polar, more coefficients, raw [AFS93]-style features) reuse the same
// machinery.

#ifndef TSQ_CORE_FEATURE_H_
#define TSQ_CORE_FEATURE_H_

#include <cstddef>

#include "common/status.h"
#include "dft/complex_vec.h"
#include "series/normal_form.h"
#include "spatial/point.h"

namespace tsq {

/// How complex coefficients become real index dimensions (Sec. 3.1).
enum class CoordinateSpace {
  kRectangular,  ///< Srect: (Re, Im) per coefficient
  kPolar,        ///< Spol: (|.|, angle) per coefficient
};

/// Which orthonormal transform produces the indexed coefficients. Both
/// preserve Euclidean distances (Parseval), so the k-index machinery is
/// identical; the paper uses Fourier, Haar is the classic follow-up basis.
/// Haar coefficients are real (imaginary parts zero) and support only
/// real-stretch transformations (identity/scale/reverse); the filter
/// transformations (moving average, warp) are DFT transfer functions and
/// apply to the Fourier basis only.
enum class FeatureBasis {
  kFourier,
  kHaar,  ///< requires power-of-two lengths and kRectangular space
};

/// Complete description of the index feature space.
struct FeatureLayout {
  CoordinateSpace space = CoordinateSpace::kPolar;
  /// Coefficient basis; the paper's DFT by default.
  FeatureBasis basis = FeatureBasis::kFourier;
  /// Store the spectrum of the normal form (true) or of the raw series.
  bool normalize = true;
  /// Prepend (mean, std) of the original series as two linear dimensions.
  bool include_mean_std = true;
  /// Index of the first stored DFT coefficient (1 skips the X_0 that is
  /// zero for normal forms; raw AFS93 layouts start at 0).
  size_t first_coefficient = 1;
  /// Number of stored DFT coefficients.
  size_t num_coefficients = 2;

  /// The paper's exact 6-D layout (Sec. 5).
  static FeatureLayout Paper();

  /// [AFS93]-style layout: raw series, first k coefficients from X_0,
  /// rectangular coordinates, no mean/std dims.
  static FeatureLayout Agrawal(size_t k);

  /// Haar-basis layout: normal-form Haar coefficients 1..k (coefficient 0
  /// is the scaled mean, zero for normal forms), rectangular space,
  /// mean/std dims kept. Requires power-of-two series lengths.
  static FeatureLayout Haar(size_t k);

  /// Total real dimensions.
  size_t dims() const {
    return (include_mean_std ? 2 : 0) + 2 * num_coefficients;
  }

  /// Index dimension where spectral dims start.
  size_t spectral_offset() const { return include_mean_std ? 2 : 0; }

  /// Validates against a series length; all stored coefficients must exist.
  Status Validate(size_t series_length) const;
};

/// Everything extracted from one series.
struct SeriesFeatures {
  double mean = 0.0;
  double std = 0.0;
  /// Full spectrum of the stored representation (normal form when
  /// layout.normalize, else raw), length n.
  ComplexVec spectrum;
};

/// Stateless extractor bound to a layout.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureLayout layout) : layout_(layout) {}

  const FeatureLayout& layout() const { return layout_; }

  /// Runs the full pipeline on raw samples.
  SeriesFeatures Extract(const RealVec& values) const;

  /// Features for a record read back from the relation: mean/std are
  /// recomputed from the stored samples by exactly the code Extract runs
  /// (one shared moments helper), and the stored spectrum — written by
  /// Extract at insert time — is adopted unchanged. So for any series,
  /// FromStored(values, Extract(values).spectrum) == Extract(values)
  /// field for field, which is what keeps the incremental index path
  /// (Insert) and the bulk path (BuildIndex's relation scan) provably
  /// identical.
  SeriesFeatures FromStored(const RealVec& values, ComplexVec spectrum) const;

  /// Index point for extracted features (truncates the spectrum to the
  /// layout's coefficient range).
  spatial::Point ToPoint(const SeriesFeatures& features) const;

  /// Index point from an explicit coefficient prefix — used for query
  /// points whose spectrum was already transformed. `coefficients` must
  /// hold exactly layout.num_coefficients values, already offset by
  /// first_coefficient.
  spatial::Point ToPointFromCoefficients(const ComplexVec& coefficients,
                                         double mean, double std) const;

  /// The layout's stored coefficient slice of a full spectrum.
  ComplexVec StoredCoefficients(const ComplexVec& spectrum) const;

  /// Per-dimension angular mask (true for Spol phase dims).
  std::vector<bool> AngularMask() const;

 private:
  FeatureLayout layout_;
};

}  // namespace tsq

#endif  // TSQ_CORE_FEATURE_H_
