// Copyright (c) 2026 The tsq Authors.

#include "core/search_rect.h"

#include <cmath>
#include <complex>
#include <limits>
#include <numbers>

#include "common/macros.h"

namespace tsq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPi = std::numbers::pi;
}  // namespace

MeanStdWindow MeanStdWindow::Unbounded() {
  return MeanStdWindow{-kInf, kInf, -kInf, kInf};
}

spatial::Rect BuildSearchRect(const FeatureLayout& layout,
                              const ComplexVec& coefficients, double eps,
                              const std::optional<MeanStdWindow>& window) {
  TSQ_CHECK_MSG(coefficients.size() == layout.num_coefficients,
                "expected %zu coefficients, got %zu", layout.num_coefficients,
                coefficients.size());
  TSQ_CHECK_MSG(eps >= 0.0, "negative query threshold");

  // Rounding slack: the stored (transformed) point and the query-side
  // coefficients travel through different floating-point expressions
  // (e.g. wrapped angle sums vs arg of a product), so a zero-width
  // rectangle could falsely dismiss an exact match. Widening by a few ulps
  // keeps the rectangle a superset; postprocessing removes the extras.
  double slack = 1e-9;
  for (const Complex& c : coefficients) {
    slack = std::max(slack, 1e-12 * std::abs(c));
  }
  eps += slack;

  spatial::Point lo(layout.dims());
  spatial::Point hi(layout.dims());

  if (layout.include_mean_std) {
    const MeanStdWindow w = window.value_or(MeanStdWindow::Unbounded());
    TSQ_CHECK_MSG(w.mean_lo <= w.mean_hi && w.std_lo <= w.std_hi,
                  "inverted mean/std window");
    lo[0] = w.mean_lo;
    hi[0] = w.mean_hi;
    lo[1] = w.std_lo;
    hi[1] = w.std_hi;
  }

  const size_t off = layout.spectral_offset();
  for (size_t j = 0; j < layout.num_coefficients; ++j) {
    const Complex c = coefficients[j];
    if (layout.space == CoordinateSpace::kRectangular) {
      lo[off + 2 * j] = c.real() - eps;
      hi[off + 2 * j] = c.real() + eps;
      lo[off + 2 * j + 1] = c.imag() - eps;
      hi[off + 2 * j + 1] = c.imag() + eps;
    } else {
      const double m = std::abs(c);
      const double alpha = std::arg(c);
      lo[off + 2 * j] = std::max(0.0, m - eps);
      hi[off + 2 * j] = m + eps;
      if (m > eps) {
        const double theta = std::asin(eps / m);
        const double a0 = alpha - theta;
        const double a1 = alpha + theta;
        if (a0 < -kPi || a1 > kPi) {
          // The interval leaves the canonical parametrization; cover the
          // whole circle (conservative superset).
          lo[off + 2 * j + 1] = -kPi;
          hi[off + 2 * j + 1] = kPi;
        } else {
          lo[off + 2 * j + 1] = a0;
          hi[off + 2 * j + 1] = a1;
        }
      } else {
        // The eps-disk around c contains the origin: every phase angle is
        // possible (Fig. 7 degenerates).
        lo[off + 2 * j + 1] = -kPi;
        hi[off + 2 * j + 1] = kPi;
      }
    }
  }
  return spatial::Rect(std::move(lo), std::move(hi));
}

}  // namespace tsq
