// Copyright (c) 2026 The tsq Authors.
//
// Search-rectangle construction (Sec. 3.1, Fig. 7): the minimum bounding
// rectangle, in index coordinates, of all points within Euclidean distance
// eps of the query's complex coefficients.
//
//   * Srect: (q_d - eps, q_d + eps) per dimension — the trivial case.
//   * Spol: per coefficient with polar (m, alpha): magnitude in
//     [max(0, m - eps), m + eps]; angle in alpha +- asin(eps / m) when
//     m > eps, otherwise the whole circle (the eps-disk contains the
//     origin, so every phase is reachable). Angle intervals that cross the
//     +-pi cut are widened to the full circle (conservative superset —
//     preserves Lemma 1).
//
// The mean/std dimensions are not part of the spectral distance; they are
// constrained only by an optional explicit window (GK95-style predicates),
// otherwise left unbounded.

#ifndef TSQ_CORE_SEARCH_RECT_H_
#define TSQ_CORE_SEARCH_RECT_H_

#include <optional>

#include "core/feature.h"
#include "dft/complex_vec.h"
#include "spatial/rect.h"

namespace tsq {

/// Optional rectangle predicate on the (mean, std) index dimensions.
struct MeanStdWindow {
  double mean_lo;
  double mean_hi;
  double std_lo;
  double std_hi;

  /// A window containing everything (the default predicate).
  static MeanStdWindow Unbounded();
};

/// Builds the eps search rectangle around a query described by its stored
/// coefficient slice (already transformed if the query side is
/// transformed). `coefficients` must hold exactly layout.num_coefficients
/// complex values. Requires eps >= 0.
spatial::Rect BuildSearchRect(const FeatureLayout& layout,
                              const ComplexVec& coefficients, double eps,
                              const std::optional<MeanStdWindow>& window);

}  // namespace tsq

#endif  // TSQ_CORE_SEARCH_RECT_H_
