// Copyright (c) 2026 The tsq Authors.

#include "core/delta_index.h"

#include <algorithm>

namespace tsq {

DeltaIndex::Chunk::Chunk(size_t dims)
    : coords(kChunkEntries * dims, 0.0), ready(kChunkEntries, 0) {}

DeltaIndex::DeltaIndex(SeriesId base, size_t dims)
    : base_(base), dims_(dims), chunks_(kMaxChunks) {
  for (auto& slot : chunks_) slot.store(nullptr, std::memory_order_relaxed);
}

DeltaIndex::~DeltaIndex() {
  for (auto& slot : chunks_) delete slot.load(std::memory_order_relaxed);
}

std::unique_ptr<DeltaIndex> DeltaIndex::Compact(const DeltaIndex& old,
                                                SeriesId cutoff) {
  TSQ_DCHECK(cutoff >= old.base_);
  auto fresh = std::make_unique<DeltaIndex>(cutoff, old.dims_);
  const uint64_t from_slot = cutoff - old.base_;
  // Walk every allocated chunk; copy ready slots at or above the cutoff.
  // Runs under the writer mutex, so ready flags and coords are stable.
  for (size_t c = 0; c < kMaxChunks; ++c) {
    const Chunk* src = old.chunk(c);
    if (src == nullptr) continue;
    for (size_t i = 0; i < kChunkEntries; ++i) {
      if (!src->ready[i]) continue;
      const uint64_t slot = c * kChunkEntries + i;
      if (slot < from_slot) continue;
      const double* p = src->coords.data() + i * old.dims_;
      spatial::Point point(p, p + old.dims_);
      Status s = fresh->Put(old.base_ + slot, point);
      TSQ_DCHECK(s.ok());
      (void)s;
    }
  }
  return fresh;
}

Status DeltaIndex::Put(SeriesId id, const spatial::Point& point) {
  if (id < base_) {
    return Status::InvalidArgument("delta Put below base id");
  }
  if (point.size() != dims_) {
    return Status::InvalidArgument("delta Put dimension mismatch");
  }
  const uint64_t slot = id - base_;
  const size_t chunk_index = slot / kChunkEntries;
  if (chunk_index >= kMaxChunks) {
    return Status::OutOfRange("delta index full — merge required");
  }
  Chunk* c = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (c == nullptr) {
    c = new Chunk(dims_);
    // Release so a reader that learns of this chunk's slots through the
    // visible watermark also sees the chunk pointer and its contents.
    chunks_[chunk_index].store(c, std::memory_order_release);
  }
  const size_t entry = slot % kChunkEntries;
  std::copy(point.begin(), point.end(), c->coords.begin() + entry * dims_);
  c->ready[entry] = 1;
  high_water_ = std::max(high_water_, slot + 1);

  // Advance the dense watermark over every contiguously ready slot. Single
  // writer (external mutex), so a plain scan + release store suffices; the
  // release publishes every coordinate written above to acquire readers.
  uint64_t v = visible_.load(std::memory_order_relaxed);
  while (v < high_water_) {
    const Chunk* vc = chunks_[v / kChunkEntries].load(std::memory_order_relaxed);
    if (vc == nullptr || !vc->ready[v % kChunkEntries]) break;
    ++v;
  }
  visible_.store(v, std::memory_order_release);
  return Status::OK();
}

spatial::Point DeltaIndex::PointAt(uint64_t slot) const {
  const Chunk* c = chunk(slot / kChunkEntries);
  TSQ_DCHECK(c != nullptr);
  const double* p = c->coords.data() + (slot % kChunkEntries) * dims_;
  return spatial::Point(p, p + dims_);
}

}  // namespace tsq
