// Copyright (c) 2026 The tsq Authors.
//
// Epoch-published index snapshots: the read half of the v4 index
// concurrency contract (docs/ARCHITECTURE.md). A snapshot pairs the
// immutable main R*-tree with the mutable delta index and a cursor into
// it; Database publishes snapshots through a single
// std::atomic<std::shared_ptr<const IndexSnapshot>>. A query loads the
// pointer once (acquire), reads the delta watermark once, and then runs
// entirely against that frozen view — no lock, no epoch can be yanked
// out from under it, and the shared_ptr refcount is the grace period: a
// merge that publishes a successor epoch cannot reclaim the old tree
// while any in-flight query still pins it.

#ifndef TSQ_CORE_INDEX_SNAPSHOT_H_
#define TSQ_CORE_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "core/delta_index.h"
#include "core/k_index.h"

namespace tsq {

/// One published index epoch. Immutable once stored in the database's
/// snapshot pointer, except that `delta` keeps absorbing Puts — readers
/// bound their view by reading the delta watermark once (IndexView).
struct IndexSnapshot {
  uint64_t epoch = 0;

  /// The immutable main R*-tree, covering ids [0, main->size()).
  std::shared_ptr<KIndex> main;

  /// The live delta, covering ids [delta->base(), ...). Never null once
  /// a snapshot is published.
  std::shared_ptr<DeltaIndex> delta;

  /// First live delta slot: slots below this were folded into `main` by
  /// the merge that published this epoch. Ids below
  /// delta->base() + delta_begin are answered by `main` alone.
  uint64_t delta_begin = 0;
};

/// A query's frozen view of one snapshot: the main tree plus the delta
/// slot range [begin, end) that was visible when the view was taken.
/// Cheap to copy; does not own the snapshot — the caller keeps the
/// shared_ptr pinned for the view's lifetime. Implicitly constructible
/// from a bare KIndex so pre-epoch call sites (tests, tools) can pass a
/// tree directly as an all-main view.
class IndexView {
 public:
  /// Whole-index view with no delta (legacy call sites).
  IndexView(const KIndex& main)  // NOLINT: implicit by design
      : main_(&main) {}

  explicit IndexView(const IndexSnapshot& snap)
      : main_(snap.main.get()),
        delta_(snap.delta.get()),
        begin_(snap.delta_begin),
        end_(snap.delta ? snap.delta->visible() : 0) {
    if (end_ < begin_) end_ = begin_;  // stale begin never exceeds visible
  }

  const KIndex& main() const { return *main_; }

  /// True when the view includes unmerged delta entries.
  bool has_delta() const { return delta_ != nullptr && end_ > begin_; }

  const DeltaIndex& delta() const { return *delta_; }
  uint64_t delta_begin() const { return begin_; }
  uint64_t delta_end() const { return end_; }

  /// Number of delta entries in view.
  uint64_t delta_size() const { return end_ - begin_; }

  /// Total series answerable from this view: the main tree's entries
  /// plus the delta range. Ids are dense, so this is also one past the
  /// highest visible id.
  uint64_t total_series() const {
    return main_->size() + (end_ - begin_);
  }

 private:
  const KIndex* main_ = nullptr;
  const DeltaIndex* delta_ = nullptr;
  uint64_t begin_ = 0;
  uint64_t end_ = 0;
};

}  // namespace tsq

#endif  // TSQ_CORE_INDEX_SNAPSHOT_H_
