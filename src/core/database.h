// Copyright (c) 2026 The tsq Authors.
//
// The tsq public facade: a small time-series database with similarity
// queries under safe transformations. Wraps the sequence Relation (heap
// file), the KIndex (R*-tree over DFT features) and the query processors
// behind one object.
//
// Typical use:
//
//   DatabaseOptions options;
//   options.directory = "/tmp/stocks";
//   auto db = Database::Create(options).value();
//   for (const auto& s : series) db->Insert(s.name(), s.values()).value();
//   db->BuildIndex();
//   QuerySpec spec;
//   spec.transform =
//       FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
//   auto matches = db->RangeQuery(q, /*epsilon=*/2.0, spec).value();

#ifndef TSQ_CORE_DATABASE_H_
#define TSQ_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/k_index.h"
#include "core/queries.h"
#include "core/seq_scan.h"
#include "engine/query_engine.h"
#include "storage/relation.h"

namespace tsq {

/// How a self-join is executed (Table 1's four methods).
enum class JoinMethod {
  kScanFull,          ///< (a) full scan-scan, no early abandoning
  kScanEarlyAbandon,  ///< (b) scan-scan, abandon at eps
  kIndexPlain,        ///< (c) index join, transformation ignored
  kIndexTransformed,  ///< (d) index join through the transformed index
  /// tsq extension: one synchronized tree-against-itself traversal instead
  /// of one range query per record (see TreeMatchSelfJoin).
  kTreeMatch,
};

/// Database construction parameters.
struct DatabaseOptions {
  /// Directory for the backing files (must exist).
  std::string directory = ".";
  /// Base name: files are <directory>/<name>.rel and <name>.idx.
  std::string name = "tsq";
  /// Feature space of the index; the paper's 6-D polar layout by default.
  FeatureLayout layout = FeatureLayout::Paper();
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 1024;
  /// Buffer-pool shard count; 0 = automatic (see BufferPool).
  size_t buffer_pool_shards = 0;
  rtree::RTreeOptions rtree;
  /// Build the index with STR bulk loading (default) or with repeated
  /// insertions (the ablation baseline; see bench_ablation).
  bool bulk_load = true;
};

/// A similarity-searchable collection of equal-length time series.
///
/// Single-query methods are not thread-safe (they share last_stats_).
/// RunBatch/ParallelSelfJoin execute many queries concurrently on an
/// internal engine; while one runs, no mutating call (Insert, BuildIndex)
/// may execute — the engine treats the index stack as frozen. Concurrent
/// queries share the index's v3 buffer pool: cached-page access is
/// lock-free (optimistic pins) and a cache miss performs its disk read
/// without blocking other fetches of its shard, so read throughput scales
/// with cores rather than with pool-mutex luck. RunBatch itself may be
/// called from several threads at once (engines are cached per thread
/// count under a lock and never destroyed while the index stands);
/// concurrent ParallelSelfJoin calls return correct results but race on
/// last_stats() — callers needing concurrent join stats should drive
/// engine::QueryEngine::SelfJoin with their own QueryStats.
class Database {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Database);
  ~Database() = default;

  /// Creates a fresh database (truncates existing files of the same name).
  static Result<std::unique_ptr<Database>> Create(
      const DatabaseOptions& options);

  /// Reopens an existing database: the relation directory is rebuilt from
  /// the heap file and, when an index file exists and `options` matches
  /// its layout, the index is reopened too. Requires at least one stored
  /// series (an empty database has no recoverable state).
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  /// Appends a series. The first insert fixes the series length; later
  /// inserts must match it. When the index is built, the series is indexed
  /// immediately.
  Result<SeriesId> Insert(const std::string& name, const RealVec& values);

  /// Builds the k-index over everything inserted so far. Requires at least
  /// one series.
  Status BuildIndex();

  /// True once BuildIndex has succeeded.
  bool index_built() const { return index_ != nullptr; }

  /// Number of stored series / their common length (0 before first insert).
  uint64_t size() const { return relation_->size(); }
  size_t series_length() const { return series_length_; }

  /// Range query through the index (Algorithm 2). Requires BuildIndex.
  Result<std::vector<Match>> RangeQuery(const RealVec& query, double epsilon,
                                        const QuerySpec& spec = {});

  /// k-nearest neighbors through the index. Requires BuildIndex.
  Result<std::vector<Match>> Knn(const RealVec& query, size_t k,
                                 const QuerySpec& spec = {});

  /// Range query by sequential scan (the baseline; works without an index).
  Result<std::vector<Match>> ScanRangeQuery(const RealVec& query,
                                            double epsilon,
                                            const QuerySpec& spec = {},
                                            bool early_abandon = true);

  /// All-pairs self-join with the chosen execution method. Index methods
  /// require BuildIndex. Scan methods emit unordered pairs; index methods
  /// emit ordered pairs (each unordered pair twice), matching Table 1.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, JoinMethod method,
      const std::optional<FeatureTransform>& transform);

  /// Executes a batch of range/kNN queries concurrently on `threads`
  /// workers (0 = hardware concurrency). Requires BuildIndex. results[i]
  /// answers queries[i] with a per-query status; the answer vectors are
  /// identical for any thread count. Aggregate counters (optional
  /// `batch_stats`) replace last_stats() for batches.
  Result<std::vector<engine::BatchResult>> RunBatch(
      const std::vector<engine::BatchQuery>& queries, size_t threads = 0,
      engine::BatchStats* batch_stats = nullptr);

  /// Fully parallel self-join: JoinMethod::kTreeMatch with both the
  /// synchronized R*-tree descent (split by root-child pairs) and the
  /// verification phase spread across `threads` workers (0 = hardware
  /// concurrency). Same answers, same order as the sequential kTreeMatch
  /// method. Requires BuildIndex.
  Result<std::vector<JoinPair>> ParallelSelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      size_t threads = 0);

  /// Reads one stored record back.
  Result<SeriesRecord> Get(SeriesId id) { return relation_->Get(id); }

  /// Flushes the relation and (when built) the index to disk so Open can
  /// recover them.
  Status Flush();

  /// Statistics of the most recent query (reset per query).
  const QueryStats& last_stats() const { return last_stats_; }

  /// Underlying components, exposed for benchmarks and white-box tests.
  Relation* relation() { return relation_.get(); }
  KIndex* index() { return index_.get(); }
  const FeatureExtractor& extractor() const { return extractor_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)), extractor_(options_.layout) {}

  /// Returns the cached batch engine for `threads`, building it on first
  /// use. Thread-safe; an engine, once built, lives as long as the
  /// Database — so a concurrent caller can never have its engine
  /// destroyed mid-batch by another caller asking for a different thread
  /// count. (Engines exist only after BuildIndex succeeded, and
  /// BuildIndex refuses to run twice, so index_ can never be replaced
  /// under a live engine.)
  engine::QueryEngine* EnsureEngine(size_t threads);

  DatabaseOptions options_;
  FeatureExtractor extractor_;
  std::unique_ptr<Relation> relation_;
  std::unique_ptr<KIndex> index_;
  size_t series_length_ = 0;
  QueryStats last_stats_;
  // Lazily built by RunBatch/ParallelSelfJoin, one engine per requested
  // thread count so repeated batches reuse a thread pool. Engines hold
  // pointers into index_/relation_; declared after them so they are
  // destroyed first.
  std::mutex engines_mutex_;
  std::map<size_t, std::unique_ptr<engine::QueryEngine>> engines_;
};

}  // namespace tsq

#endif  // TSQ_CORE_DATABASE_H_
