// Copyright (c) 2026 The tsq Authors.
//
// The tsq public facade: a small time-series database with similarity
// queries under safe transformations. Wraps the sequence Relation
// (segmented heap store), the KIndex (R*-tree over DFT features) and the
// query processors behind one object.
//
// Typical use:
//
//   DatabaseOptions options;
//   options.directory = "/tmp/stocks";
//   auto db = Database::Create(options).value();
//   db->InsertBatch(names, values).value();  // parallel ingest
//   db->BuildIndex();
//   QuerySpec spec;
//   spec.transform =
//       FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
//   auto matches = db->RangeQuery(q, /*epsilon=*/2.0, spec).value();

#ifndef TSQ_CORE_DATABASE_H_
#define TSQ_CORE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/k_index.h"
#include "core/queries.h"
#include "core/seq_scan.h"
#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "storage/relation.h"

namespace tsq {

/// How a self-join is executed (Table 1's four methods).
enum class JoinMethod {
  kScanFull,          ///< (a) full scan-scan, no early abandoning
  kScanEarlyAbandon,  ///< (b) scan-scan, abandon at eps
  kIndexPlain,        ///< (c) index join, transformation ignored
  kIndexTransformed,  ///< (d) index join through the transformed index
  /// tsq extension: one synchronized tree-against-itself traversal instead
  /// of one range query per record (see TreeMatchSelfJoin).
  kTreeMatch,
};

/// Database construction parameters.
struct DatabaseOptions {
  /// Directory for the backing files (must exist).
  std::string directory = ".";
  /// Base name: files are <directory>/<name>.rel.0..N-1 and <name>.idx.
  std::string name = "tsq";
  /// Feature space of the index; the paper's 6-D polar layout by default.
  FeatureLayout layout = FeatureLayout::Paper();
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 1024;
  /// Buffer-pool shard count; 0 = automatic (see BufferPool).
  size_t buffer_pool_shards = 0;
  /// Relation segment files — the parallel ingest lanes (see Relation).
  /// Open rediscovers the count from disk; this applies to Create only.
  size_t relation_segments = 4;
  rtree::RTreeOptions rtree;
  /// Build the index with STR bulk loading (default) or with repeated
  /// insertions (the ablation baseline; see bench_ablation).
  bool bulk_load = true;
};

/// One coherent snapshot of every component's counters: relation scan/IO,
/// buffer-pool cache behaviour, R*-tree traversal work and tree geometry,
/// flattened into a plain struct. Before this existed, observers had to
/// poke relation()->stats(), index()->pool()->stats() and
/// index()->tree()->stats() separately; StatsSnapshot() is the one-call
/// aggregation the tsqd STATS verb serializes. Counters are cumulative
/// since process start (or the last ResetStats on the component).
struct DatabaseStats {
  uint64_t series = 0;         ///< stored series (dense prefix)
  uint64_t series_length = 0;  ///< common length (0 before first insert)
  bool index_built = false;
  // Relation counters (RelationStats).
  uint64_t relation_records_read = 0;
  uint64_t relation_bytes_read = 0;
  uint64_t relation_bytes_written = 0;
  // Index buffer-pool counters (BufferPoolStats); zero without an index.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_disk_reads = 0;
  uint64_t pool_disk_writes = 0;
  // R*-tree traversal counters (rtree::TraversalStats); zero without an
  // index.
  uint64_t nodes_visited = 0;
  uint64_t rect_transforms = 0;
  uint64_t leaf_entries_tested = 0;
  // Tree geometry; zero without an index.
  uint64_t tree_entries = 0;
  uint64_t tree_height = 0;
  uint64_t tree_dims = 0;
};

/// A similarity-searchable collection of equal-length time series.
///
/// Concurrency contract (v2 write half + v3 read half).
///
/// Writes: Insert and InsertBatch may be called from any number of
/// threads at once, and concurrently with RunBatch/ParallelSelfJoin.
/// Record ingest is wait-free for readers — appends go to per-segment
/// files behind a lock-free id directory (see Relation), so queries and
/// scans never block on ingest I/O. InsertBatch assigns dense ids in
/// argument order no matter the thread count; the resulting relation
/// files are byte-identical at any concurrency. When the index is built,
/// each insert call also folds its series into the R*-tree under a brief
/// exclusive lock; batch queries take the same lock shared, so index
/// incorporation — not ingest — is the only point where readers and
/// writers serialize, and it lasts for the tree insertions only.
/// BuildIndex requires exclusivity with every other call and refuses to
/// run twice; it collects features with one parallel scan per relation
/// segment feeding the STR bulk load.
///
/// Reads: single-query methods are not thread-safe with each other (they
/// share last_stats_). RunBatch/ParallelSelfJoin execute many queries
/// concurrently on an internal engine; concurrent queries share the
/// index's v3 buffer pool (lock-free cached fetches, misses that do not
/// block their shard). RunBatch may be called from several threads at
/// once (engines are cached per thread count and never destroyed while
/// the index stands); concurrent ParallelSelfJoin calls return correct
/// results but race on last_stats() — callers needing concurrent join
/// stats should drive engine::QueryEngine::SelfJoin with their own
/// QueryStats.
class Database {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Database);
  ~Database() = default;

  /// Creates a fresh database (truncates existing files of the same name).
  static Result<std::unique_ptr<Database>> Create(
      const DatabaseOptions& options);

  /// Reopens an existing database: the relation directory is rebuilt from
  /// the segment files (recovered in parallel; a torn tail record is
  /// dropped, see Relation::Open) and, when an index file exists and
  /// `options` matches its layout, the index is reopened too. Requires at
  /// least one stored series (an empty database has no recoverable
  /// state).
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  /// Appends a series. The first insert fixes the series length; later
  /// inserts must match it. When the index is built, the series is indexed
  /// immediately. Safe from any number of threads, and concurrently with
  /// RunBatch/ParallelSelfJoin.
  Result<SeriesId> Insert(const std::string& name, const RealVec& values);

  /// Appends many series at once: names[i] with values[i] gets id
  /// base + i, in argument order, deterministically at every thread
  /// count. Feature extraction (normal form + DFT) is spread over the
  /// ingest thread pool record-by-record and the appends fan out one
  /// task per relation segment (`threads` workers; 0 = hardware
  /// concurrency). The whole batch is validated before any id is
  /// assigned, so a rejected batch leaves the database untouched. Safe
  /// from any number of threads, and concurrently with
  /// RunBatch/ParallelSelfJoin; must not be called from inside an engine
  /// worker. Returns the assigned ids (base .. base+n-1).
  Result<std::vector<SeriesId>> InsertBatch(
      const std::vector<std::string>& names,
      const std::vector<RealVec>& values, size_t threads = 0);

  /// Builds the k-index over everything inserted so far. Requires at least
  /// one series and exclusivity (no concurrent inserts or queries).
  Status BuildIndex();

  /// True once BuildIndex has succeeded.
  bool index_built() const { return index_ != nullptr; }

  /// Number of stored series / their common length (0 before first insert).
  uint64_t size() const { return relation_->size(); }
  size_t series_length() const {
    return series_length_.load(std::memory_order_relaxed);
  }

  /// Range query through the index (Algorithm 2). Requires BuildIndex.
  Result<std::vector<Match>> RangeQuery(const RealVec& query, double epsilon,
                                        const QuerySpec& spec = {});

  /// k-nearest neighbors through the index. Requires BuildIndex.
  Result<std::vector<Match>> Knn(const RealVec& query, size_t k,
                                 const QuerySpec& spec = {});

  /// Range query by sequential scan (the baseline; works without an index).
  Result<std::vector<Match>> ScanRangeQuery(const RealVec& query,
                                            double epsilon,
                                            const QuerySpec& spec = {},
                                            bool early_abandon = true);

  /// All-pairs self-join with the chosen execution method. Index methods
  /// require BuildIndex. Scan methods emit unordered pairs; index methods
  /// emit ordered pairs (each unordered pair twice), matching Table 1.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, JoinMethod method,
      const std::optional<FeatureTransform>& transform);

  /// Executes a batch of range/kNN queries concurrently on `threads`
  /// workers (0 = hardware concurrency). Requires BuildIndex. results[i]
  /// answers queries[i] with a per-query status; the answer vectors are
  /// identical for any thread count. Aggregate counters (optional
  /// `batch_stats`) replace last_stats() for batches. May run
  /// concurrently with Insert/InsertBatch (see the class contract).
  Result<std::vector<engine::BatchResult>> RunBatch(
      const std::vector<engine::BatchQuery>& queries, size_t threads = 0,
      engine::BatchStats* batch_stats = nullptr);

  /// Fully parallel self-join: JoinMethod::kTreeMatch with both the
  /// synchronized R*-tree descent (split by root-child pairs) and the
  /// verification phase spread across `threads` workers (0 = hardware
  /// concurrency). Same answers, same order as the sequential kTreeMatch
  /// method. Requires BuildIndex.
  Result<std::vector<JoinPair>> ParallelSelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      size_t threads = 0);

  /// ParallelSelfJoin reporting stats into caller-owned storage instead
  /// of last_stats_ (`stats` may be null). Unlike the overload above,
  /// fully race-free under concurrent callers — the form the tsqd
  /// execution pool uses, where several connections may run self-joins
  /// at once.
  Result<std::vector<JoinPair>> ParallelSelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      size_t threads, QueryStats* stats);

  /// Reads one stored record back.
  Result<SeriesRecord> Get(SeriesId id) { return relation_->Get(id); }

  /// Flushes the relation and (when built) the index to disk so Open can
  /// recover them.
  Status Flush();

  /// Statistics of the most recent query (reset per query).
  const QueryStats& last_stats() const { return last_stats_; }

  /// Aggregates the relation, buffer-pool and traversal counters (plus
  /// tree geometry) into one DatabaseStats. Safe from any thread,
  /// concurrently with queries and inserts; each counter is an atomic
  /// snapshot (the set is not mutually consistent under concurrent load,
  /// which monitoring does not need).
  DatabaseStats StatsSnapshot() const;

  /// Underlying components, exposed for benchmarks and white-box tests.
  Relation* relation() { return relation_.get(); }
  KIndex* index() { return index_.get(); }
  const FeatureExtractor& extractor() const { return extractor_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)), extractor_(options_.layout) {}

  /// Returns the cached batch engine for `threads`, building it on first
  /// use. Thread-safe; an engine, once built, lives as long as the
  /// Database — so a concurrent caller can never have its engine
  /// destroyed mid-batch by another caller asking for a different thread
  /// count. (Engines exist only after BuildIndex succeeded, and
  /// BuildIndex refuses to run twice, so index_ can never be replaced
  /// under a live engine.)
  engine::QueryEngine* EnsureEngine(size_t threads);

  /// Returns the cached ingest pool for `threads`, building it on first
  /// use. Thread-safe; pools live as long as the Database.
  engine::ThreadPool* EnsureIngestPool(size_t threads);

  /// Claims or checks the common series length. Thread-safe.
  Status CheckSeriesLength(size_t length);

  /// A failed index fold-in is sticky, mirroring the relation's append
  /// poison: once an Insert/InsertBatch could not add a series to the
  /// built index, the index no longer covers the relation and every
  /// later index query or index-maintaining insert returns the recorded
  /// error instead of silently answering from a partial index. (Reopen
  /// reports the divergence as Corruption.)
  Status CheckIndexHealthy() const;
  Status PoisonIndex(Status status);

  DatabaseOptions options_;
  FeatureExtractor extractor_;
  std::unique_ptr<Relation> relation_;
  std::unique_ptr<KIndex> index_;
  std::atomic<size_t> series_length_{0};
  QueryStats last_stats_;
  // Readers (RunBatch/ParallelSelfJoin and the single-query paths) hold
  // this shared; the index-incorporation phase of Insert/InsertBatch and
  // BuildIndex hold it exclusive. Relation appends run outside it — the
  // only reader/writer serialization point is the R*-tree fold-in.
  mutable std::shared_mutex index_mutex_;
  // Serializes "reserve ids + enqueue per-segment append tasks" so the
  // FIFO pool order matches reservation order: a queued append task then
  // only ever waits on segment turns owned by already-queued or running
  // tasks (or by non-worker Append callers), which is what makes
  // concurrent InsertBatch calls on a shared pool deadlock-free.
  std::mutex ingest_order_mutex_;
  // Lazily built engines/pools, one per requested thread count so
  // repeated calls reuse threads. They hold pointers into
  // index_/relation_; declared after them so they are destroyed first.
  std::mutex engines_mutex_;
  std::map<size_t, std::unique_ptr<engine::QueryEngine>> engines_;
  std::mutex pools_mutex_;
  std::map<size_t, std::unique_ptr<engine::ThreadPool>> ingest_pools_;
  std::atomic<bool> index_poisoned_{false};
  mutable std::mutex index_fault_mutex_;  // guards index_fault_
  Status index_fault_;
};

}  // namespace tsq

#endif  // TSQ_CORE_DATABASE_H_
