// Copyright (c) 2026 The tsq Authors.
//
// The tsq public facade: a small time-series database with similarity
// queries under safe transformations. Wraps the sequence Relation
// (segmented heap store), the KIndex (R*-tree over DFT features) and the
// query processors behind one object.
//
// Typical use:
//
//   DatabaseOptions options;
//   options.directory = "/tmp/stocks";
//   auto db = Database::Create(options).value();
//   db->InsertBatch(names, values).value();  // parallel ingest
//   db->BuildIndex();
//   QuerySpec spec;
//   spec.transform =
//       FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
//   auto matches = db->RangeQuery(q, /*epsilon=*/2.0, spec).value();

#ifndef TSQ_CORE_DATABASE_H_
#define TSQ_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/index_snapshot.h"
#include "core/k_index.h"
#include "core/queries.h"
#include "core/seq_scan.h"
#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "storage/relation.h"

namespace tsq {

/// How a self-join is executed (Table 1's four methods).
enum class JoinMethod {
  kScanFull,          ///< (a) full scan-scan, no early abandoning
  kScanEarlyAbandon,  ///< (b) scan-scan, abandon at eps
  kIndexPlain,        ///< (c) index join, transformation ignored
  kIndexTransformed,  ///< (d) index join through the transformed index
  /// tsq extension: one synchronized tree-against-itself traversal instead
  /// of one range query per record (see TreeMatchSelfJoin).
  kTreeMatch,
};

/// When an acknowledged write must have reached stable storage. The
/// levels trade ingest latency for crash-loss exposure; see
/// docs/ARCHITECTURE.md ("Durability & degradation contract").
enum class Durability {
  /// Writes land in the OS page cache only. A process crash loses
  /// nothing (the cache survives); a machine crash may lose recently
  /// acknowledged series. The default, and the pre-durability behavior.
  kNone = 0,
  /// Flush() additionally fdatasyncs every relation segment (and the
  /// index file), so an explicit flush is a full durability barrier.
  kOnFlush = 1,
  /// Group commit: every Insert/InsertBatch fdatasyncs the relation
  /// segments it touched before acknowledging — one fdatasync per
  /// segment per batch, amortized over the batch. Flush() is a barrier
  /// here too.
  kPerBatch = 2,
};

/// Database construction parameters.
struct DatabaseOptions {
  /// Directory for the backing files (must exist).
  std::string directory = ".";
  /// Base name: files are <directory>/<name>.rel.0..N-1 and <name>.idx.
  std::string name = "tsq";
  /// Feature space of the index; the paper's 6-D polar layout by default.
  FeatureLayout layout = FeatureLayout::Paper();
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 1024;
  /// Buffer-pool shard count; 0 = automatic (see BufferPool).
  size_t buffer_pool_shards = 0;
  /// Relation segment files — the parallel ingest lanes (see Relation).
  /// Open rediscovers the count from disk; this applies to Create only.
  size_t relation_segments = 4;
  rtree::RTreeOptions rtree;
  /// Build the index with STR bulk loading (default) or with repeated
  /// insertions (the ablation baseline; see bench_ablation).
  bool bulk_load = true;
  /// Background merge cadence in milliseconds: when non-zero, a merge
  /// thread periodically folds the delta index into a fresh main tree
  /// (see Reindex). 0 (the default) disables the thread; merges then
  /// happen only through explicit Reindex calls or when the delta fills
  /// up. See docs/ARCHITECTURE.md ("Operating the merge thread").
  uint64_t merge_interval_ms = 0;
  /// The background merge thread folds only when at least this many
  /// unmerged delta entries are visible (avoids churning full rebuilds
  /// for a trickle of inserts).
  uint64_t merge_min_delta = 1;
  /// When an acknowledged write is on stable storage (see Durability).
  Durability durability = Durability::kNone;
  /// Slow-query log threshold in milliseconds; 0 (the default) disables
  /// it. When enabled, per-query stage tracing is armed at Create/Open
  /// and every query whose elapsed time reaches the threshold emits one
  /// structured WARN line with its stage self-time breakdown (and bumps
  /// the tsq_slow_queries_total counter). The TSQ_SLOW_QUERY_MS
  /// environment variable, when set, overrides this value at Create/Open.
  uint64_t slow_query_ms = 0;
};

/// One coherent snapshot of every component's counters: relation scan/IO,
/// buffer-pool cache behaviour, R*-tree traversal work and tree geometry,
/// flattened into a plain struct. Before this existed, observers had to
/// poke relation()->stats(), index()->pool()->stats() and
/// index()->tree()->stats() separately; StatsSnapshot() is the one-call
/// aggregation the tsqd STATS verb serializes. Counters are cumulative
/// since process start (or the last ResetStats on the component).
struct DatabaseStats {
  uint64_t series = 0;         ///< stored series (dense prefix)
  uint64_t series_length = 0;  ///< common length (0 before first insert)
  bool index_built = false;
  // Relation counters (RelationStats).
  uint64_t relation_records_read = 0;
  uint64_t relation_bytes_read = 0;
  uint64_t relation_bytes_written = 0;
  // Index buffer-pool counters (BufferPoolStats); zero without an index.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_disk_reads = 0;
  uint64_t pool_disk_writes = 0;
  // R*-tree traversal counters (rtree::TraversalStats); zero without an
  // index.
  uint64_t nodes_visited = 0;
  uint64_t rect_transforms = 0;
  uint64_t leaf_entries_tested = 0;
  // Tree geometry; zero without an index.
  uint64_t tree_entries = 0;
  uint64_t tree_height = 0;
  uint64_t tree_dims = 0;
  // Epoch-published index state (v4); zero without an index.
  uint64_t index_epoch = 0;       ///< published snapshot epoch (1 = built)
  uint64_t delta_entries = 0;     ///< visible delta entries not yet merged
  uint64_t merges_completed = 0;  ///< successful Reindex/merge passes
  // Degradation state (v5): a write fault turns the database read-only
  // until Repair() succeeds; queries keep serving throughout.
  bool degraded = false;           ///< writes currently rejected (kReadOnly)
  uint64_t write_faults = 0;       ///< write faults that entered degradation
  uint64_t repairs_completed = 0;  ///< successful Repair() passes
};

/// A similarity-searchable collection of equal-length time series.
///
/// Concurrency contract (v2 write half + v3 read half + v4 index
/// publication; docs/ARCHITECTURE.md is the consolidated reference).
///
/// Writes: Insert and InsertBatch may be called from any number of
/// threads at once, and concurrently with RunBatch/ParallelSelfJoin.
/// Record ingest is wait-free for readers — appends go to per-segment
/// files behind a lock-free id directory (see Relation), so queries and
/// scans never block on ingest I/O. InsertBatch assigns dense ids in
/// argument order no matter the thread count; the resulting relation
/// files are byte-identical at any concurrency. When the index is built,
/// each insert call also publishes its series' feature point into the
/// delta index (DeltaIndex): a short slot write under the delta writer
/// mutex — a writer-writer lock that no query path ever takes. A series
/// is queryable the moment its insert call returns. BuildIndex requires
/// exclusivity with every other call and refuses to run twice; it
/// collects features with one parallel scan per relation segment feeding
/// the STR bulk load.
///
/// Reads never block on writes: there is no reader-writer lock anywhere
/// on the query path. Every query loads the current IndexSnapshot (one
/// atomic acquire), pins it with its shared_ptr, and runs entirely
/// against that frozen view — the immutable main R*-tree plus the delta
/// range visible at load. A concurrent merge publishes a successor epoch
/// without touching the pinned one; the refcount is the grace period
/// that keeps the old tree alive until the last in-flight query drops
/// it. Single-query methods are still not thread-safe with each other
/// (they share last_stats_). RunBatch/ParallelSelfJoin execute many
/// queries concurrently on an internal engine; concurrent queries share
/// the index's v3 buffer pool (lock-free cached fetches, misses that do
/// not block their shard). RunBatch may be called from several threads
/// at once (engines are cached per thread count and never destroyed
/// while the database lives); concurrent ParallelSelfJoin calls return
/// correct results but race on last_stats() — callers needing concurrent
/// join stats should drive engine::QueryEngine::SelfJoin with their own
/// QueryStats.
///
/// Merging: Reindex (or the background merge thread, see
/// DatabaseOptions::merge_interval_ms) STR-bulk-loads a fresh tree from
/// the relation covering every merged-plus-visible-delta id, persists it
/// to <name>.idx.tmp, atomically renames it over <name>.idx, and swaps
/// the epoch pointer; the delta is compacted to the entries the new tree
/// does not cover. A crash at any point leaves a reopenable database:
/// Open accepts an index that covers a prefix of the relation and
/// rebuilds the missing tail into the delta.
///
/// Faults: a write fault (failed append, failed delta publication,
/// failed merge) degrades the database to read-only — writes return
/// kReadOnly while queries keep serving the last published state, which
/// covers exactly the acknowledged writes. Repair() recovers in place
/// once the fault is resolved. See docs/ARCHITECTURE.md ("Durability &
/// degradation contract").
class Database {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Database);
  /// Stops the background merge thread (when running) before teardown.
  ~Database();

  /// Creates a fresh database (truncates existing files of the same name).
  static Result<std::unique_ptr<Database>> Create(
      const DatabaseOptions& options);

  /// Reopens an existing database: the relation directory is rebuilt from
  /// the segment files (recovered in parallel; a torn tail record is
  /// dropped, see Relation::Open) and, when an index file exists and
  /// `options` matches its layout, the index is reopened too. Requires at
  /// least one stored series (an empty database has no recoverable
  /// state).
  static Result<std::unique_ptr<Database>> Open(const DatabaseOptions& options);

  /// Appends a series. The first insert fixes the series length; later
  /// inserts must match it. When the index is built, the series' feature
  /// point lands in the delta index before the call returns, so it is
  /// immediately queryable. Safe from any number of threads, and
  /// concurrently with RunBatch/ParallelSelfJoin and merges.
  Result<SeriesId> Insert(const std::string& name, const RealVec& values);

  /// Appends many series at once: names[i] with values[i] gets id
  /// base + i, in argument order, deterministically at every thread
  /// count. Feature extraction (normal form + DFT) is spread over the
  /// ingest thread pool record-by-record and the appends fan out one
  /// task per relation segment (`threads` workers; 0 = hardware
  /// concurrency). The whole batch is validated before any id is
  /// assigned, so a rejected batch leaves the database untouched. Safe
  /// from any number of threads, and concurrently with
  /// RunBatch/ParallelSelfJoin; must not be called from inside an engine
  /// worker. Returns the assigned ids (base .. base+n-1).
  Result<std::vector<SeriesId>> InsertBatch(
      const std::vector<std::string>& names,
      const std::vector<RealVec>& values, size_t threads = 0);

  /// Builds the k-index over everything inserted so far. Requires at least
  /// one series and exclusivity (no concurrent inserts or queries).
  Status BuildIndex();

  /// True once BuildIndex has succeeded.
  bool index_built() const { return CurrentSnapshot() != nullptr; }

  /// The currently published index snapshot, or null before BuildIndex.
  /// Holding the returned shared_ptr pins the epoch: a concurrent merge
  /// publishes successors without invalidating it — this is the
  /// grace-period handle in-flight queries ride on. Copies the handle
  /// under the shared side of a pointer lock held for a refcount bump
  /// only; no index work ever happens under it. Exposed for white-box
  /// tests and tools.
  std::shared_ptr<const IndexSnapshot> CurrentSnapshot() const {
    std::shared_lock<std::shared_mutex> lock(snapshot_ptr_mutex_);
    return snapshot_;
  }

  /// Folds the visible delta into a fresh main R*-tree and publishes the
  /// next epoch: rebuild (parallel segment scans + STR bulk load) into
  /// <name>.idx.tmp, flush, atomic rename over <name>.idx, swap the
  /// snapshot pointer with the delta compacted to what the new tree does
  /// not cover. In-flight queries keep their pinned epoch; new queries
  /// see the merged tree. Returns the published epoch (the current one
  /// when there was nothing to merge). Serialized against other merges
  /// and BuildIndex; safe concurrently with inserts and queries.
  Result<uint64_t> Reindex();

  /// Number of stored series / their common length (0 before first insert).
  uint64_t size() const { return relation_->size(); }
  size_t series_length() const {
    return series_length_.load(std::memory_order_relaxed);
  }

  /// Range query through the index (Algorithm 2). Requires BuildIndex.
  Result<std::vector<Match>> RangeQuery(const RealVec& query, double epsilon,
                                        const QuerySpec& spec = {});

  /// k-nearest neighbors through the index. Requires BuildIndex.
  /// Non-default `options` trades exactness for speed; the observed
  /// (candidates, pruned, max_error) lands in last_stats().
  Result<std::vector<Match>> Knn(const RealVec& query, size_t k,
                                 const QuerySpec& spec = {},
                                 const KnnOptions& options = {});

  /// Range query by sequential scan (the baseline; works without an index).
  Result<std::vector<Match>> ScanRangeQuery(const RealVec& query,
                                            double epsilon,
                                            const QuerySpec& spec = {},
                                            bool early_abandon = true);

  /// All-pairs self-join with the chosen execution method. Index methods
  /// require BuildIndex. Scan methods emit unordered pairs; index methods
  /// emit ordered pairs (each unordered pair twice), matching Table 1.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, JoinMethod method,
      const std::optional<FeatureTransform>& transform);

  /// Executes a batch of range/kNN queries concurrently on `threads`
  /// workers (0 = hardware concurrency). Requires BuildIndex. results[i]
  /// answers queries[i] with a per-query status; the answer vectors are
  /// identical for any thread count. Aggregate counters (optional
  /// `batch_stats`) replace last_stats() for batches. May run
  /// concurrently with Insert/InsertBatch (see the class contract).
  Result<std::vector<engine::BatchResult>> RunBatch(
      const std::vector<engine::BatchQuery>& queries, size_t threads = 0,
      engine::BatchStats* batch_stats = nullptr);

  /// Fully parallel self-join: JoinMethod::kTreeMatch with both the
  /// synchronized R*-tree descent (split by root-child pairs) and the
  /// verification phase spread across `threads` workers (0 = hardware
  /// concurrency). Same answers, same order as the sequential kTreeMatch
  /// method. Requires BuildIndex.
  Result<std::vector<JoinPair>> ParallelSelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      size_t threads = 0);

  /// ParallelSelfJoin reporting stats into caller-owned storage instead
  /// of last_stats_ (`stats` may be null). Unlike the overload above,
  /// fully race-free under concurrent callers — the form the tsqd
  /// execution pool uses, where several connections may run self-joins
  /// at once.
  Result<std::vector<JoinPair>> ParallelSelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform,
      size_t threads, QueryStats* stats);

  /// Reads one stored record back.
  Result<SeriesRecord> Get(SeriesId id) { return relation_->Get(id); }

  /// Flushes the relation and (when built) the current main index to
  /// disk so Open can recover them. Unmerged delta entries are not
  /// persisted as index state — Open rebuilds them from the relation
  /// tail (the delta is always derivable from relation records). At
  /// Durability::kOnFlush and above this is a full barrier: every
  /// acknowledged record has been fdatasynced when Flush returns.
  Status Flush();

  /// True while the database is read-only after a write fault: writes
  /// return kReadOnly, queries keep serving the last published state.
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Recovers from a write fault and lifts the read-only degradation:
  /// repairs the relation in place (re-walks the segment files and
  /// rewinds to the largest dense record prefix, see Relation::Repair),
  /// rebuilds the delta index over any relation tail the published
  /// index no longer covers (the same tail rebuild Open performs),
  /// publishes the result as the next epoch, removes stale merge
  /// scratch, and clears the degraded flag so writes resume. Requires
  /// no concurrent writers (they are being rejected with kReadOnly
  /// anyway); queries may continue throughout. Fails — and stays
  /// degraded — while the underlying fault persists. A no-op when the
  /// database is healthy.
  Status Repair();

  /// Statistics of the most recent query (reset per query).
  const QueryStats& last_stats() const { return last_stats_; }

  /// Aggregates the relation, buffer-pool and traversal counters (plus
  /// tree geometry) into one DatabaseStats. Safe from any thread,
  /// concurrently with queries and inserts; each counter is an atomic
  /// snapshot (the set is not mutually consistent under concurrent load,
  /// which monitoring does not need).
  DatabaseStats StatsSnapshot() const;

  /// Underlying components, exposed for benchmarks and white-box tests.
  /// index() is the currently published snapshot's main tree (null
  /// before BuildIndex); the raw pointer stays valid only until a merge
  /// publishes a successor epoch — callers that merge concurrently must
  /// pin CurrentSnapshot() instead.
  Relation* relation() { return relation_.get(); }
  KIndex* index() {
    auto snap = CurrentSnapshot();
    return snap == nullptr ? nullptr : snap->main.get();
  }
  const FeatureExtractor& extractor() const { return extractor_; }
  const DatabaseOptions& options() const { return options_; }

  /// Test-only: invoked during Reindex after the merged tree is built
  /// and renamed over the index file, immediately before the new epoch
  /// is published — the gate race tests use to pin queries on the old
  /// epoch while a swap is in flight. Set only while no merge runs.
  void SetMergeHookForTesting(std::function<void()> hook);

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)), extractor_(options_.layout) {}

  /// Returns the cached batch engine for `threads`, building it on first
  /// use. Thread-safe; an engine, once built, lives as long as the
  /// Database — so a concurrent caller can never have its engine
  /// destroyed mid-batch by another caller asking for a different thread
  /// count. Engines hold a snapshot loader, not a tree pointer, so a
  /// merge can replace the index under a live engine at any time.
  engine::QueryEngine* EnsureEngine(size_t threads);

  /// Returns the cached ingest pool for `threads`, building it on first
  /// use. Thread-safe; pools live as long as the Database.
  engine::ThreadPool* EnsureIngestPool(size_t threads);

  /// Claims or checks the common series length. Thread-safe.
  Status CheckSeriesLength(size_t length);

  /// Applies the TSQ_SLOW_QUERY_MS override and arms stage tracing when
  /// the slow-query log is enabled. Run once per Create/Open.
  void InitSlowQueryLog();

  /// Emits the slow-query line (and bumps the counter) when `stats`
  /// crossed the configured threshold. `op` names the entry point.
  /// Cold path: one branch per query when the log is disabled.
  void MaybeLogSlowQuery(const char* op, const QueryStats& stats) const;

  /// Records a write fault and enters read-only degradation: later
  /// writes return kReadOnly until Repair() succeeds. Returns `cause`
  /// unchanged so the faulting caller reports the real error. Queries
  /// are deliberately NOT gated on this state — the published snapshot
  /// and the relation's dense prefix cover exactly the acknowledged
  /// writes, so they stay correct to serve. (A failed merge leaves the
  /// previous epoch published and correct, but still degrades: the
  /// disk is evidently unhealthy and accepting more writes would only
  /// widen the unmerged tail.)
  Status EnterReadOnly(Status cause);

  /// OK when writes are admitted; kReadOnly (naming the original
  /// fault) while degraded.
  Status CheckWritable() const;

  /// Publishes one series' feature point into the current delta under
  /// the writer mutex; on a full delta, merges and retries once.
  Status DeltaPut(SeriesId id, const SeriesFeatures& features);

  /// Builds a KIndex at `path` over relation ids [0, limit) — parallel
  /// per-segment feature scans feeding one STR bulk load (or repeated
  /// insertion when !bulk_load). Shared by BuildIndex and merges.
  Result<std::shared_ptr<KIndex>> BuildIndexFile(const std::string& path,
                                                 uint64_t limit,
                                                 bool bulk_load);

  std::string IndexPath() const {
    return options_.directory + "/" + options_.name + ".idx";
  }

  void StartMergeThread();
  void StopMergeThread();
  void MergeThreadMain();

  DatabaseOptions options_;
  FeatureExtractor extractor_;
  std::unique_ptr<Relation> relation_;
  // The epoch pointer: queries copy it once (a shared_ptr refcount
  // bump under the shared side of the pointer lock) and pin the
  // snapshot; BuildIndex/Reindex publish successors under the exclusive
  // side, held for a pointer assignment only — never during merge I/O
  // or tree builds. The snapshot itself is never mutated in place.
  mutable std::shared_mutex snapshot_ptr_mutex_;
  std::shared_ptr<const IndexSnapshot> snapshot_;
  std::atomic<size_t> series_length_{0};
  QueryStats last_stats_;
  // Writer-writer mutex over the delta index: serializes DeltaPut calls
  // with each other and with the snapshot swap's delta compaction. No
  // query path ever takes it.
  std::mutex delta_put_mutex_;
  // Serializes BuildIndex, Reindex (including the background thread) and
  // Flush — at most one index (re)build runs at a time. Lock order:
  // merge_mutex_ before delta_put_mutex_.
  std::mutex merge_mutex_;
  std::atomic<uint64_t> merges_completed_{0};
  std::function<void()> merge_hook_;  // test-only, see setter
  // Background merge thread (started when merge_interval_ms > 0).
  std::thread merge_thread_;
  std::mutex merge_cv_mutex_;
  std::condition_variable merge_cv_;
  bool stop_merge_ = false;  // guarded by merge_cv_mutex_
  // Serializes "reserve ids + enqueue per-segment append tasks" so the
  // FIFO pool order matches reservation order: a queued append task then
  // only ever waits on segment turns owned by already-queued or running
  // tasks (or by non-worker Append callers), which is what makes
  // concurrent InsertBatch calls on a shared pool deadlock-free.
  std::mutex ingest_order_mutex_;
  // Lazily built engines/pools, one per requested thread count so
  // repeated calls reuse threads. They hold the snapshot loader and a
  // relation pointer; declared after those so they are destroyed first.
  std::mutex engines_mutex_;
  std::map<size_t, std::unique_ptr<engine::QueryEngine>> engines_;
  std::mutex pools_mutex_;
  std::map<size_t, std::unique_ptr<engine::ThreadPool>> ingest_pools_;
  // Degradation state: set by EnterReadOnly, cleared by Repair.
  std::atomic<bool> degraded_{false};
  mutable std::mutex fault_mutex_;  // guards fault_
  Status fault_;                    // the write fault that degraded us
  std::atomic<uint64_t> write_faults_{0};
  std::atomic<uint64_t> repairs_completed_{0};
};

}  // namespace tsq

#endif  // TSQ_CORE_DATABASE_H_
