// Copyright (c) 2026 The tsq Authors.
//
// The k-index of [AFS93] as the paper uses it (Sec. 4): an R*-tree over the
// first k Fourier coefficients of every stored series, extended with the
// paper's transformed traversal. KIndex bundles the index's storage stack
// (page file, buffer pool, R*-tree) with the feature-space logic, exposing
// candidate enumeration; postprocessing (Algorithm 2 step 3) lives in
// core/queries.h, which combines KIndex with the sequence Relation.

#ifndef TSQ_CORE_K_INDEX_H_
#define TSQ_CORE_K_INDEX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feature.h"
#include "core/feature_space.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq {

/// Construction parameters for a KIndex.
struct KIndexOptions {
  FeatureLayout layout;
  std::string path = "tsq_index.pages";  ///< backing page file
  size_t page_size = kDefaultPageSize;
  size_t buffer_pool_frames = 1024;
  /// Buffer-pool shard count; 0 = automatic (see BufferPool).
  size_t buffer_pool_shards = 0;
  rtree::RTreeOptions rtree;
};

/// A k-coefficient spatial index over series features.
class KIndex {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(KIndex);
  ~KIndex() = default;

  /// Creates a fresh index for series of the given length.
  static Result<std::unique_ptr<KIndex>> Create(const KIndexOptions& options,
                                                size_t series_length);

  /// Reopens an index previously created at options.path. The layout in
  /// `options` must match the one the index was built with (tsq stores the
  /// tree geometry, not the layout; a mismatch surfaces as a dimensionality
  /// error). The tree's meta page is always the first page of the file.
  static Result<std::unique_ptr<KIndex>> Open(const KIndexOptions& options,
                                              size_t series_length);

  /// Adds one series' features under its relation id.
  Status Add(SeriesId id, const SeriesFeatures& features);

  /// Bulk-loads many series at once into an empty index (STR packing —
  /// faster and better clustered than repeated Add; see
  /// rtree::RStarTree::BulkLoad).
  Status BulkLoad(
      const std::vector<std::pair<SeriesId, SeriesFeatures>>& items);

  /// Removes a previously added series (exact feature match required).
  Result<bool> Remove(SeriesId id, const SeriesFeatures& features);

  /// Plain range search (no transformation machinery touched at all — the
  /// baseline curve of Figures 8/9).
  Status RangeCandidates(const spatial::Rect& rect,
                         std::vector<SeriesId>* out) const;

  /// Algorithm 2 traversal: MBRs pass through `map` before the overlap
  /// test.
  Status RangeCandidatesTransformed(const spatial::AffineMap& map,
                                    const spatial::Rect& rect,
                                    std::vector<SeriesId>* out) const;

  /// Streams data entries in ascending lower-bound distance order under
  /// `metric` (optionally through `map`); bounds arrive SQUARED (see
  /// rtree::RStarTree::NearestNeighborsStream); the callback returns false
  /// to stop. Backbone of the optimal multi-step kNN in core/queries.h.
  Status StreamNearest(
      const rtree::NnMetric& metric, const spatial::AffineMap* map,
      const std::function<bool(SeriesId id, double lower_bound_sq)>& emit)
      const;

  const FeatureSpace& space() const { return space_; }
  const FeatureExtractor& extractor() const { return space_.extractor(); }
  const FeatureLayout& layout() const { return space_.layout(); }
  size_t series_length() const { return series_length_; }
  uint64_t size() const { return tree_->size(); }

  /// The underlying tree / pool, exposed for stats and white-box tests.
  rtree::RStarTree* tree() { return tree_.get(); }
  const rtree::RStarTree* tree() const { return tree_.get(); }
  BufferPool* pool() { return pool_.get(); }
  const BufferPool* pool() const { return pool_.get(); }

  /// Clears traversal and buffer-pool counters (per-query measurement).
  void ResetStats() const;

  /// Persists the tree meta page and writes back every dirty page.
  Status Flush();

 private:
  KIndex(FeatureLayout layout, size_t series_length)
      : space_(layout), series_length_(series_length) {}

  FeatureSpace space_;
  size_t series_length_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<rtree::RStarTree> tree_;
};

}  // namespace tsq

#endif  // TSQ_CORE_K_INDEX_H_
