// Copyright (c) 2026 The tsq Authors.

#include "core/seq_scan.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace tsq {

namespace {

/// D(T(x), q_target) with early abandoning; `t` may be null (identity).
/// The untransformed case runs through the kernel layer (checkpointed
/// early abandon); the transformed case stays a scalar loop — the complex
/// multiply dominates and per-element abandon wins more there.
std::optional<double> EarlyAbandonToTarget(const ComplexVec& x,
                                           const LinearTransform* t,
                                           const ComplexVec& target,
                                           double epsilon) {
  TSQ_DCHECK(x.size() == target.size());
  const double limit = epsilon * epsilon;
  double acc = 0.0;
  if (t == nullptr) {
    acc = simd::SumSquaredDiffEarlyAbandon(
        cvec::AsDoubles(x), cvec::AsDoubles(target), 2 * x.size(), limit);
    if (acc > limit) return std::nullopt;
  } else {
    const ComplexVec& a = t->a();
    const ComplexVec& b = t->b();
    for (size_t f = 0; f < x.size(); ++f) {
      acc += std::norm(a[f] * x[f] + b[f] - target[f]);
      if (acc > limit) return std::nullopt;
    }
  }
  return std::sqrt(acc);
}

/// Full (no abandon) variant.
double FullDistanceToTarget(const ComplexVec& x, const LinearTransform* t,
                            const ComplexVec& target) {
  TSQ_DCHECK(x.size() == target.size());
  double acc = 0.0;
  if (t == nullptr) {
    acc = cvec::DistanceSquared(x, target);
  } else {
    const ComplexVec& a = t->a();
    const ComplexVec& b = t->b();
    for (size_t f = 0; f < x.size(); ++f) {
      acc += std::norm(a[f] * x[f] + b[f] - target[f]);
    }
  }
  return std::sqrt(acc);
}

}  // namespace

std::optional<double> EarlyAbandonPairDistance(const ComplexVec& x,
                                               const ComplexVec& y,
                                               const LinearTransform* t,
                                               double epsilon) {
  TSQ_DCHECK(x.size() == y.size());
  const double limit = epsilon * epsilon;
  double acc = 0.0;
  if (t == nullptr) {
    acc = simd::SumSquaredDiffEarlyAbandon(
        cvec::AsDoubles(x), cvec::AsDoubles(y), 2 * x.size(), limit);
    if (acc > limit) return std::nullopt;
  } else {
    // T(x)-T(y) = a*(x-y): one complex multiply per coefficient.
    const ComplexVec& a = t->a();
    for (size_t f = 0; f < x.size(); ++f) {
      acc += std::norm(a[f] * (x[f] - y[f]));
      if (acc > limit) return std::nullopt;
    }
  }
  return std::sqrt(acc);
}

Status SeqScanRangeQuery(const Relation& relation,
                         const FeatureExtractor& extractor,
                         const RealVec& query, double epsilon,
                         const QuerySpec& spec, bool early_abandon,
                         std::vector<Match>* out, QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative query threshold");
  }
  Stopwatch watch;
  StageStatsCapture stages(stats);

  ComplexVec target;
  const LinearTransform* t = nullptr;
  {
    obs::StageTimer prepare_span(obs::Stage::kPrepare);
    const SeriesFeatures qf = extractor.Extract(query);
    target = qf.spectrum;
    if (spec.transform.has_value()) {
      t = &spec.transform->spectral;
      if (spec.mode == TransformMode::kBoth) {
        target = spec.transform->spectral.Apply(qf.spectrum);
      }
    }
  }

  obs::StageTimer refine_span(obs::Stage::kRefine);
  Status scan_status = relation.Scan([&](const SeriesRecord& rec) {
    if (stats != nullptr) ++stats->records_scanned;
    if (rec.dft.size() != target.size()) return true;  // length mismatch
    if (early_abandon) {
      std::optional<double> d =
          EarlyAbandonToTarget(rec.dft, t, target, epsilon);
      if (d.has_value()) out->push_back(Match{rec.id, rec.name, *d});
    } else {
      const double d = FullDistanceToTarget(rec.dft, t, target);
      if (d <= epsilon) out->push_back(Match{rec.id, rec.name, d});
    }
    return true;
  });
  TSQ_RETURN_IF_ERROR(scan_status);

  SortMatches(out);
  if (stats != nullptr) {
    stats->answers += out->size();
    stats->elapsed_ms += watch.ElapsedMillis();
  }
  return Status::OK();
}

Status SeqScanSelfJoin(const Relation& relation, double epsilon,
                       const std::optional<FeatureTransform>& transform,
                       bool early_abandon, std::vector<JoinPair>* out,
                       QueryStats* stats) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative join threshold");
  }
  Stopwatch watch;
  StageStatsCapture stages(stats);
  obs::StageTimer refine_span(obs::Stage::kRefine);

  // Faithful to the paper's methods a/b: a nested-loop join over the
  // *disk-resident* relation — "scan the relation of Fourier coefficients
  // sequentially, and compare every sequence s to all the sequences that
  // are after s in the relation". Every inner comparison re-reads the
  // record through the storage layer; the transformation is applied during
  // the comparison (method a materializes both transformed spectra in
  // full; method b fuses transform and distance and abandons at epsilon).
  const LinearTransform* t =
      transform.has_value() ? &transform->spectral : nullptr;
  const uint64_t n = relation.size();

  for (SeriesId i = 0; i < n; ++i) {
    TSQ_ASSIGN_OR_RETURN(SeriesRecord outer, relation.Get(i));
    if (stats != nullptr) ++stats->records_scanned;
    for (SeriesId j = i + 1; j < n; ++j) {
      TSQ_ASSIGN_OR_RETURN(SeriesRecord inner, relation.Get(j));
      if (stats != nullptr) ++stats->records_scanned;
      if (early_abandon) {
        std::optional<double> d =
            EarlyAbandonPairDistance(outer.dft, inner.dft, t, epsilon);
        if (d.has_value()) {
          out->push_back(JoinPair{i, j, *d});
        }
      } else {
        // Method a: transform both sides in full, then the full distance —
        // deliberately no shortcuts.
        double d;
        if (t != nullptr) {
          d = cvec::Distance(t->Apply(outer.dft), t->Apply(inner.dft));
        } else {
          d = cvec::Distance(outer.dft, inner.dft);
        }
        if (d <= epsilon) out->push_back(JoinPair{i, j, d});
      }
    }
  }
  if (stats != nullptr) {
    stats->answers += out->size();
    stats->elapsed_ms += watch.ElapsedMillis();
  }
  return Status::OK();
}

}  // namespace tsq
