// Copyright (c) 2026 The tsq Authors.

#include "core/feature.h"

#include <cmath>
#include <complex>
#include <utility>

#include "dft/dft.h"
#include "dft/haar.h"

namespace tsq {

FeatureLayout FeatureLayout::Paper() {
  FeatureLayout layout;
  layout.space = CoordinateSpace::kPolar;
  layout.normalize = true;
  layout.include_mean_std = true;
  layout.first_coefficient = 1;
  layout.num_coefficients = 2;
  return layout;
}

FeatureLayout FeatureLayout::Haar(size_t k) {
  FeatureLayout layout;
  layout.space = CoordinateSpace::kRectangular;
  layout.basis = FeatureBasis::kHaar;
  layout.normalize = true;
  layout.include_mean_std = true;
  layout.first_coefficient = 1;
  layout.num_coefficients = k;
  return layout;
}

FeatureLayout FeatureLayout::Agrawal(size_t k) {
  FeatureLayout layout;
  layout.space = CoordinateSpace::kRectangular;
  layout.normalize = false;
  layout.include_mean_std = false;
  layout.first_coefficient = 0;
  layout.num_coefficients = k;
  return layout;
}

Status FeatureLayout::Validate(size_t series_length) const {
  if (num_coefficients == 0) {
    return Status::InvalidArgument("layout stores zero coefficients");
  }
  if (first_coefficient + num_coefficients > series_length) {
    return Status::InvalidArgument(
        "layout needs coefficients up to " +
        std::to_string(first_coefficient + num_coefficients) +
        " but series length is " + std::to_string(series_length));
  }
  if (normalize && first_coefficient == 0 && include_mean_std) {
    // Legal but wasteful: X_0 of a normal form is always zero; warn-level
    // misuse is still accepted.
  }
  if (basis == FeatureBasis::kHaar) {
    if (!haar::IsValidLength(series_length)) {
      return Status::InvalidArgument(
          "the Haar basis requires a power-of-two series length, got " +
          std::to_string(series_length));
    }
    if (space != CoordinateSpace::kRectangular) {
      return Status::InvalidArgument(
          "the Haar basis requires the rectangular coordinate space "
          "(coefficients are real)");
    }
  }
  return Status::OK();
}

namespace {

/// The single definition of a series' linear feature dimensions: both the
/// insert path (Extract) and the index-rebuild path (FromStored) fill
/// mean/std through series::Moments (the kernel-layer moments pass), so
/// the two can never drift apart.
void FillMoments(const RealVec& values, SeriesFeatures* out) {
  Moments(values, &out->mean, &out->std);
}

}  // namespace

SeriesFeatures FeatureExtractor::Extract(const RealVec& values) const {
  SeriesFeatures out;
  if (layout_.normalize) {
    // ToNormalForm shares the Moments computation, so mean/std here are
    // bit-identical to the FillMoments path.
    NormalForm nf = ToNormalForm(values);
    out.mean = nf.mean;
    out.std = nf.std;
    if (layout_.basis == FeatureBasis::kHaar) {
      out.spectrum = cvec::FromReal(haar::Forward(nf.normalized));
    } else {
      out.spectrum = dft::Forward(nf.normalized);
    }
    return out;
  }
  FillMoments(values, &out);
  if (layout_.basis == FeatureBasis::kHaar) {
    out.spectrum = cvec::FromReal(haar::Forward(values));
  } else {
    out.spectrum = dft::Forward(values);
  }
  return out;
}

SeriesFeatures FeatureExtractor::FromStored(const RealVec& values,
                                            ComplexVec spectrum) const {
  SeriesFeatures out;
  FillMoments(values, &out);
  out.spectrum = std::move(spectrum);
  return out;
}

ComplexVec FeatureExtractor::StoredCoefficients(
    const ComplexVec& spectrum) const {
  TSQ_CHECK_MSG(
      layout_.first_coefficient + layout_.num_coefficients <= spectrum.size(),
      "spectrum too short (%zu) for layout", spectrum.size());
  return ComplexVec(
      spectrum.begin() + static_cast<ptrdiff_t>(layout_.first_coefficient),
      spectrum.begin() + static_cast<ptrdiff_t>(layout_.first_coefficient +
                                                layout_.num_coefficients));
}

spatial::Point FeatureExtractor::ToPoint(const SeriesFeatures& f) const {
  return ToPointFromCoefficients(StoredCoefficients(f.spectrum), f.mean,
                                 f.std);
}

spatial::Point FeatureExtractor::ToPointFromCoefficients(
    const ComplexVec& coefficients, double mean, double std) const {
  TSQ_CHECK_MSG(coefficients.size() == layout_.num_coefficients,
                "expected %zu coefficients, got %zu",
                layout_.num_coefficients, coefficients.size());
  spatial::Point p;
  p.reserve(layout_.dims());
  if (layout_.include_mean_std) {
    p.push_back(mean);
    p.push_back(std);
  }
  for (const Complex& c : coefficients) {
    if (layout_.space == CoordinateSpace::kRectangular) {
      p.push_back(c.real());
      p.push_back(c.imag());
    } else {
      p.push_back(std::abs(c));
      p.push_back(std::arg(c));  // arg(0) == 0 by definition
    }
  }
  return p;
}

std::vector<bool> FeatureExtractor::AngularMask() const {
  std::vector<bool> mask(layout_.dims(), false);
  if (layout_.space == CoordinateSpace::kPolar) {
    const size_t off = layout_.spectral_offset();
    for (size_t j = 0; j < layout_.num_coefficients; ++j) {
      mask[off + 2 * j + 1] = true;
    }
  }
  return mask;
}

}  // namespace tsq
