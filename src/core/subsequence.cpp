// Copyright (c) 2026 The tsq Authors.

#include "core/subsequence.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dft/dft.h"
#include "series/distance.h"

namespace tsq {

namespace {

constexpr double kPi = std::numbers::pi;

// Resynchronize the sliding DFT with a fresh transform every this many
// steps to keep floating-point drift below verification tolerances.
constexpr size_t kResyncInterval = 512;

uint64_t PackPayload(SeriesId id, size_t offset) {
  return (static_cast<uint64_t>(id) << 32) | static_cast<uint32_t>(offset);
}

void UnpackPayload(uint64_t payload, SeriesId* id, size_t* offset) {
  *id = payload >> 32;
  *offset = static_cast<uint32_t>(payload);
}

/// Feature point (2k real dims) of one window spectrum prefix.
spatial::Point ToFeaturePoint(const ComplexVec& prefix) {
  spatial::Point p;
  p.reserve(2 * prefix.size());
  for (const Complex& c : prefix) {
    p.push_back(c.real());
    p.push_back(c.imag());
  }
  return p;
}

}  // namespace

std::vector<ComplexVec> SlidingWindowSpectra(const RealVec& values,
                                             size_t window,
                                             size_t coefficients) {
  TSQ_CHECK_MSG(window >= 1 && window <= values.size(),
                "window %zu out of range for length %zu", window,
                values.size());
  TSQ_CHECK_MSG(coefficients >= 1 && coefficients <= window,
                "coefficients %zu out of range for window %zu", coefficients,
                window);
  const size_t positions = values.size() - window + 1;
  std::vector<ComplexVec> out;
  out.reserve(positions);

  // Twiddle factors e^{+2 pi j f / w} for the sliding update.
  ComplexVec twiddle(coefficients);
  for (size_t f = 0; f < coefficients; ++f) {
    const double angle = 2.0 * kPi * static_cast<double>(f) /
                         static_cast<double>(window);
    twiddle[f] = Complex(std::cos(angle), std::sin(angle));
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(window));

  ComplexVec current;
  for (size_t pos = 0; pos < positions; ++pos) {
    if (pos % kResyncInterval == 0) {
      // Fresh transform of the window starting at pos.
      RealVec win(values.begin() + static_cast<ptrdiff_t>(pos),
                  values.begin() + static_cast<ptrdiff_t>(pos + window));
      current = dft::Truncate(dft::Forward(win), coefficients);
    } else {
      // Sliding update: drop x_{pos-1}, add x_{pos+w-1}, rotate.
      //   X_f(pos) = (X_f(pos-1) - s*x_{pos-1} + s*x_{pos+w-1}) * e^{2πjf/w}
      const double delta =
          scale * (values[pos + window - 1] - values[pos - 1]);
      for (size_t f = 0; f < coefficients; ++f) {
        current[f] = (current[f] + delta) * twiddle[f];
      }
    }
    out.push_back(current);
  }
  return out;
}

Result<std::unique_ptr<SubsequenceIndex>> SubsequenceIndex::Create(
    const SubsequenceIndexOptions& options) {
  if (options.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (options.coefficients < 1 || options.coefficients > options.window) {
    return Status::InvalidArgument("coefficients out of range");
  }
  if (options.trail_piece < 1) {
    return Status::InvalidArgument("trail_piece must be >= 1");
  }
  auto index = std::unique_ptr<SubsequenceIndex>(
      new SubsequenceIndex(options));
  TSQ_ASSIGN_OR_RETURN(index->file_,
                       PageFile::Create(options.path, options.page_size));
  index->pool_ = std::make_unique<BufferPool>(index->file_.get(),
                                              options.buffer_pool_frames);
  TSQ_ASSIGN_OR_RETURN(
      index->tree_,
      rtree::RStarTree::Create(index->pool_.get(),
                               2 * options.coefficients, options.rtree));
  return index;
}

Status SubsequenceIndex::AddSeries(SeriesId id, const RealVec& values) {
  if (values.size() < options_.window) {
    return Status::InvalidArgument(
        "series of length " + std::to_string(values.size()) +
        " shorter than the window " + std::to_string(options_.window));
  }
  if (id > UINT32_MAX) {
    return Status::InvalidArgument("series id does not fit in 32 bits");
  }
  const std::vector<ComplexVec> spectra =
      SlidingWindowSpectra(values, options_.window, options_.coefficients);

  // Cut the trail into fixed-length pieces; one MBR per piece.
  for (size_t start = 0; start < spectra.size();
       start += options_.trail_piece) {
    const size_t end =
        std::min(start + options_.trail_piece, spectra.size());
    spatial::Rect mbr =
        spatial::Rect::FromPoint(ToFeaturePoint(spectra[start]));
    for (size_t i = start + 1; i < end; ++i) {
      mbr.ExpandToInclude(ToFeaturePoint(spectra[i]));
    }
    TSQ_RETURN_IF_ERROR(tree_->Insert(mbr, PackPayload(id, start)));
  }
  num_windows_ += spectra.size();
  return Status::OK();
}

Status SubsequenceIndex::RangeSearch(const RealVec& query, double epsilon,
                                     const SeriesFetcher& fetch,
                                     std::vector<SubsequenceMatch>* out,
                                     QueryStats* stats) const {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (query.size() != options_.window) {
    return Status::InvalidArgument(
        "query length " + std::to_string(query.size()) +
        " != index window " + std::to_string(options_.window));
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative query threshold");
  }

  // The query's feature point grown by eps per dimension contains the
  // feature points of all qualifying windows (prefix bound).
  const ComplexVec query_prefix =
      dft::Truncate(dft::Forward(query), options_.coefficients);
  const spatial::Rect search_rect =
      spatial::Rect::FromPoint(ToFeaturePoint(query_prefix)).Grown(epsilon);

  std::vector<uint64_t> candidates;
  TSQ_RETURN_IF_ERROR(tree_->Search(
      search_rect, [&candidates](uint64_t payload, const spatial::Rect&) {
        candidates.push_back(payload);
        return true;
      }));
  if (stats != nullptr) stats->candidates += candidates.size();

  // Postprocess: verify every window position of each candidate piece.
  std::sort(candidates.begin(), candidates.end());
  SeriesId cached_id = kInvalidSeriesId;
  RealVec cached_values;
  for (const uint64_t payload : candidates) {
    SeriesId id;
    size_t piece_start;
    UnpackPayload(payload, &id, &piece_start);
    if (id != cached_id) {
      TSQ_ASSIGN_OR_RETURN(cached_values, fetch(id));
      cached_id = id;
      if (stats != nullptr) ++stats->verified;
    }
    const size_t positions = cached_values.size() - options_.window + 1;
    const size_t piece_end =
        std::min(piece_start + options_.trail_piece, positions);
    if (stats != nullptr) stats->records_scanned += piece_end - piece_start;
    for (size_t off = piece_start; off < piece_end; ++off) {
      double acc = 0.0;
      const double limit = epsilon * epsilon;
      bool abandoned = false;
      for (size_t t = 0; t < options_.window; ++t) {
        const double d = cached_values[off + t] - query[t];
        acc += d * d;
        if (acc > limit) {
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        out->push_back(SubsequenceMatch{id, off, std::sqrt(acc)});
      }
    }
  }
  std::sort(out->begin(), out->end(),
            [](const SubsequenceMatch& a, const SubsequenceMatch& b) {
              return a.id < b.id || (a.id == b.id && a.offset < b.offset);
            });
  if (stats != nullptr) stats->answers += out->size();
  return Status::OK();
}

Status ScanSubsequences(const std::vector<TimeSeries>& series, size_t window,
                        const RealVec& query, double epsilon,
                        std::vector<SubsequenceMatch>* out) {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (query.size() != window) {
    return Status::InvalidArgument("query length != window");
  }
  for (SeriesId id = 0; id < series.size(); ++id) {
    const RealVec& values = series[id].values();
    if (values.size() < window) continue;
    for (size_t off = 0; off + window <= values.size(); ++off) {
      double acc = 0.0;
      const double limit = epsilon * epsilon;
      bool abandoned = false;
      for (size_t t = 0; t < window; ++t) {
        const double d = values[off + t] - query[t];
        acc += d * d;
        if (acc > limit) {
          abandoned = true;
          break;
        }
      }
      if (!abandoned) {
        out->push_back(SubsequenceMatch{id, off, std::sqrt(acc)});
      }
    }
  }
  return Status::OK();
}

}  // namespace tsq
