// Copyright (c) 2026 The tsq Authors.

#include "core/database.h"

#include <cstdio>

namespace tsq {

Result<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Create(options.directory + "/" + options.name + ".rel"));
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Open(options.directory + "/" + options.name + ".rel"));
  if (db->relation_->size() == 0) {
    return Status::FailedPrecondition("cannot reopen an empty database");
  }
  TSQ_ASSIGN_OR_RETURN(SeriesRecord first, db->relation_->Get(0));
  db->series_length_ = first.values.size();

  const std::string index_path =
      options.directory + "/" + options.name + ".idx";
  if (std::FILE* f = std::fopen(index_path.c_str(), "rb")) {
    std::fclose(f);
    KIndexOptions kopts;
    kopts.layout = options.layout;
    kopts.path = index_path;
    kopts.page_size = options.page_size;
    kopts.buffer_pool_frames = options.buffer_pool_frames;
    kopts.buffer_pool_shards = options.buffer_pool_shards;
    kopts.rtree = options.rtree;
    TSQ_ASSIGN_OR_RETURN(db->index_,
                         KIndex::Open(kopts, db->series_length_));
    if (db->index_->size() != db->relation_->size()) {
      return Status::Corruption(
          "index holds " + std::to_string(db->index_->size()) +
          " entries but the relation has " +
          std::to_string(db->relation_->size()));
    }
  }
  return db;
}

Status Database::Flush() {
  TSQ_RETURN_IF_ERROR(relation_->Flush());
  if (index_ != nullptr) {
    TSQ_RETURN_IF_ERROR(index_->Flush());
  }
  return Status::OK();
}

Result<SeriesId> Database::Insert(const std::string& name,
                                  const RealVec& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot insert an empty series");
  }
  if (series_length_ == 0) {
    series_length_ = values.size();
  } else if (values.size() != series_length_) {
    return Status::InvalidArgument(
        "series length " + std::to_string(values.size()) +
        " != database series length " + std::to_string(series_length_));
  }
  const SeriesFeatures features = extractor_.Extract(values);
  TSQ_ASSIGN_OR_RETURN(const SeriesId id,
                       relation_->Append(name, values, features.spectrum));
  if (index_ != nullptr) {
    TSQ_RETURN_IF_ERROR(index_->Add(id, features));
  }
  return id;
}

Status Database::BuildIndex() {
  if (relation_->size() == 0) {
    return Status::FailedPrecondition("BuildIndex on an empty database");
  }
  if (index_ != nullptr) {
    return Status::FailedPrecondition("index already built");
  }
  KIndexOptions kopts;
  kopts.layout = options_.layout;
  kopts.path = options_.directory + "/" + options_.name + ".idx";
  kopts.page_size = options_.page_size;
  kopts.buffer_pool_frames = options_.buffer_pool_frames;
  kopts.buffer_pool_shards = options_.buffer_pool_shards;
  kopts.rtree = options_.rtree;
  TSQ_ASSIGN_OR_RETURN(index_, KIndex::Create(kopts, series_length_));

  // One scan of the relation collects every series' features; mean/std
  // are recomputed from the stored samples, the spectrum is reused as
  // stored. STR bulk loading packs the tree in one pass (repeated
  // insertion remains available as the ablation baseline).
  std::vector<std::pair<SeriesId, SeriesFeatures>> items;
  items.reserve(relation_->size());
  TSQ_RETURN_IF_ERROR(relation_->Scan([&items](const SeriesRecord& rec) {
    SeriesFeatures f;
    NormalForm nf = ToNormalForm(rec.values);
    f.mean = nf.mean;
    f.std = nf.std;
    f.spectrum = rec.dft;
    items.emplace_back(rec.id, std::move(f));
    return true;
  }));
  if (options_.bulk_load) {
    return index_->BulkLoad(items);
  }
  for (const auto& [id, features] : items) {
    TSQ_RETURN_IF_ERROR(index_->Add(id, features));
  }
  return Status::OK();
}

Result<std::vector<Match>> Database::RangeQuery(const RealVec& query,
                                                double epsilon,
                                                const QuerySpec& spec) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("RangeQuery requires BuildIndex()");
  }
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexRangeQuery(*index_, *relation_, query, epsilon,
                                      spec, &out, &last_stats_));
  return out;
}

Result<std::vector<Match>> Database::Knn(const RealVec& query, size_t k,
                                         const QuerySpec& spec) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Knn requires BuildIndex()");
  }
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexKnnQuery(*index_, *relation_, query, k, spec,
                                    &out, &last_stats_));
  return out;
}

Result<std::vector<Match>> Database::ScanRangeQuery(const RealVec& query,
                                                    double epsilon,
                                                    const QuerySpec& spec,
                                                    bool early_abandon) {
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(SeqScanRangeQuery(*relation_, extractor_, query,
                                        epsilon, spec, early_abandon, &out,
                                        &last_stats_));
  return out;
}

engine::QueryEngine* Database::EnsureEngine(size_t threads) {
  std::lock_guard<std::mutex> lock(engines_mutex_);
  auto it = engines_.find(threads);
  if (it == engines_.end()) {
    engine::QueryEngineOptions options;
    options.threads = threads;
    it = engines_
             .emplace(threads, std::make_unique<engine::QueryEngine>(
                                   index_.get(), relation_.get(),
                                   /*subsequence_index=*/nullptr, options))
             .first;
  }
  return it->second.get();
}

Result<std::vector<engine::BatchResult>> Database::RunBatch(
    const std::vector<engine::BatchQuery>& queries, size_t threads,
    engine::BatchStats* batch_stats) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("RunBatch requires BuildIndex()");
  }
  return EnsureEngine(threads)->RunBatch(queries, batch_stats);
}

Result<std::vector<JoinPair>> Database::ParallelSelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    size_t threads) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("ParallelSelfJoin requires BuildIndex()");
  }
  QueryStats stats;
  TSQ_ASSIGN_OR_RETURN(
      std::vector<JoinPair> out,
      EnsureEngine(threads)->SelfJoin(epsilon, transform, &stats));
  last_stats_ = stats;
  return out;
}

Result<std::vector<JoinPair>> Database::SelfJoin(
    double epsilon, JoinMethod method,
    const std::optional<FeatureTransform>& transform) {
  std::vector<JoinPair> out;
  last_stats_ = QueryStats();
  switch (method) {
    case JoinMethod::kScanFull:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/false, &out,
                                          &last_stats_));
      return out;
    case JoinMethod::kScanEarlyAbandon:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/true, &out,
                                          &last_stats_));
      return out;
    case JoinMethod::kIndexPlain:
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(*index_, *relation_, epsilon,
                                        /*transform=*/std::nullopt, &out,
                                        &last_stats_));
      return out;
    case JoinMethod::kIndexTransformed:
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(*index_, *relation_, epsilon,
                                        transform, &out, &last_stats_));
      return out;
    case JoinMethod::kTreeMatch:
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(TreeMatchSelfJoin(*index_, *relation_, epsilon,
                                            transform, &out, &last_stats_));
      return out;
  }
  return Status::InvalidArgument("unknown join method");
}

}  // namespace tsq
