// Copyright (c) 2026 The tsq Authors.

#include "core/database.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tsq {

namespace {

/// Fires a merge-step failpoint: a crash action exits inside Evaluate, a
/// torn action crashes here too (for a non-write step the two are the
/// same), and an error action surfaces as an errno-bearing IOError
/// naming `path`.
Status MergeFailpoint(failpoint::Site* site, const std::string& what,
                      const std::string& path) {
  if (!site->armed()) return Status::OK();
  const failpoint::Decision d = failpoint::Evaluate(site, 0);
  if (d.kind == failpoint::ActionKind::kTornWrite) {
    failpoint::CrashProcess(site->name().c_str());
  }
  if (d.fire()) {
    return failpoint::ErrnoError(d.error_errno != 0 ? d.error_errno : EIO,
                                 what, path);
  }
  return Status::OK();
}

/// fsync(2) of a directory: makes a just-renamed entry durable. Renaming
/// alone only updates the directory in the page cache; a machine crash
/// can undo it until the directory itself is synced.
Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return failpoint::ErrnoError(errno, "cannot open directory", path);
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return failpoint::ErrnoError(err, "fsync failed for directory", path);
  }
  return Status::OK();
}

}  // namespace

Database::~Database() { StopMergeThread(); }

void Database::InitSlowQueryLog() {
  if (const char* env = std::getenv("TSQ_SLOW_QUERY_MS")) {
    char* end = nullptr;
    const unsigned long long ms = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      options_.slow_query_ms = static_cast<uint64_t>(ms);
    } else {
      TSQ_LOG(kWarn) << "ignoring unparsable TSQ_SLOW_QUERY_MS='" << env
                     << "'";
    }
  }
  if (options_.slow_query_ms > 0) {
    // The breakdown in the log line comes from the stage timers, so
    // enabling the log arms tracing process-wide. Answers are unaffected
    // (tracing only ever reads clocks); see tests/obs_test.cpp.
    obs::ArmTracing();
    obs::ArmMetrics();
    TSQ_LOG(kInfo) << "slow-query log armed at " << options_.slow_query_ms
                   << "ms";
  }
}

void Database::MaybeLogSlowQuery(const char* op,
                                 const QueryStats& stats) const {
  if (options_.slow_query_ms == 0 ||
      stats.elapsed_ms < static_cast<double>(options_.slow_query_ms)) {
    return;
  }
  // Cold path by construction (the query already burned >= threshold ms).
  // The counter is bumped unconditionally — even when the log level
  // swallows the line — so tests and scrapes can observe the gating
  // without capturing stderr.
  static obs::Counter* slow_queries =
      obs::RegisterCounter("tsq_slow_queries_total");
  slow_queries->Add(1);
  TSQ_LOG(kWarn) << "slow query op=" << op << " elapsed_ms="
                 << stats.elapsed_ms << " prepare_ms=" << stats.prepare_ms
                 << " descent_ms=" << stats.descent_ms
                 << " delta_ms=" << stats.delta_ms
                 << " pool_wait_ms=" << stats.pool_wait_ms
                 << " refine_ms=" << stats.refine_ms
                 << " candidates=" << stats.candidates
                 << " verified=" << stats.verified
                 << " answers=" << stats.answers
                 << " nodes_visited=" << stats.nodes_visited
                 << " disk_reads=" << stats.disk_reads
                 << " records_scanned=" << stats.records_scanned
                 << (stats.traced ? "" : " (untraced)");
}

void Database::StartMergeThread() {
  if (options_.merge_interval_ms == 0) return;
  merge_thread_ = std::thread([this] { MergeThreadMain(); });
}

void Database::StopMergeThread() {
  if (!merge_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(merge_cv_mutex_);
    stop_merge_ = true;
  }
  merge_cv_.notify_all();
  merge_thread_.join();
}

void Database::MergeThreadMain() {
  const auto interval = std::chrono::milliseconds(options_.merge_interval_ms);
  std::unique_lock<std::mutex> lock(merge_cv_mutex_);
  while (!stop_merge_) {
    merge_cv_.wait_for(lock, interval, [this] { return stop_merge_; });
    if (stop_merge_) return;
    lock.unlock();
    auto snap = CurrentSnapshot();
    if (snap != nullptr && !degraded()) {
      const uint64_t unmerged =
          snap->delta->base() + snap->delta->visible() - snap->main->size();
      if (unmerged >= options_.merge_min_delta) {
        if (Result<uint64_t> merged = Reindex(); !merged.ok()) {
          // The previous epoch stays published and correct. A write
          // fault inside Reindex has already degraded the database;
          // anything else retries next tick.
          TSQ_LOG(kWarn) << "background merge failed: "
                         << merged.status().ToString();
        }
      }
    }
    lock.lock();
  }
}

void Database::SetMergeHookForTesting(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(merge_mutex_);
  merge_hook_ = std::move(hook);
}

Result<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Create(options.directory + "/" + options.name + ".rel",
                       options.relation_segments));
  // Clear any leftover merge scratch from a previous incarnation.
  std::remove((db->IndexPath() + ".tmp").c_str());
  db->InitSlowQueryLog();
  db->StartMergeThread();
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Open(options.directory + "/" + options.name + ".rel"));
  if (db->relation_->size() == 0) {
    return Status::FailedPrecondition("cannot reopen an empty database");
  }
  TSQ_ASSIGN_OR_RETURN(SeriesRecord first, db->relation_->Get(0));
  db->series_length_.store(first.values.size(), std::memory_order_relaxed);

  const std::string index_path = db->IndexPath();
  // A crash between building <name>.idx.tmp and the atomic rename leaves
  // scratch behind; the canonical index file is still the previous one.
  std::remove((index_path + ".tmp").c_str());
  if (std::FILE* f = std::fopen(index_path.c_str(), "rb")) {
    std::fclose(f);
    KIndexOptions kopts;
    kopts.layout = options.layout;
    kopts.path = index_path;
    kopts.page_size = options.page_size;
    kopts.buffer_pool_frames = options.buffer_pool_frames;
    kopts.buffer_pool_shards = options.buffer_pool_shards;
    kopts.rtree = options.rtree;
    std::unique_ptr<KIndex> opened;
    TSQ_ASSIGN_OR_RETURN(opened, KIndex::Open(kopts, db->series_length()));
    const uint64_t indexed = opened->size();
    const uint64_t total = db->relation_->size();
    if (indexed > total) {
      return Status::Corruption(
          "index holds " + std::to_string(indexed) +
          " entries but the relation has only " + std::to_string(total));
    }
    // The index may cover a prefix of the relation — the flushed state
    // of a crash between an insert (or merge cutoff) and the next merge.
    // Rebuild the missing tail [indexed, total) into the delta; feature
    // points are a pure function of relation records, so the reopened
    // view answers exactly like the pre-crash one.
    auto snap = std::make_shared<IndexSnapshot>();
    snap->epoch = 1;
    snap->main = std::shared_ptr<KIndex>(std::move(opened));
    snap->delta =
        std::make_shared<DeltaIndex>(indexed, db->options_.layout.dims());
    snap->delta_begin = 0;
    for (SeriesId id = indexed; id < total; ++id) {
      TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, db->relation_->Get(id));
      const SeriesFeatures features =
          db->extractor_.FromStored(rec.values, rec.dft);
      TSQ_RETURN_IF_ERROR(
          snap->delta->Put(id, db->extractor_.ToPoint(features)));
    }
    {
      std::unique_lock<std::shared_mutex> lock(db->snapshot_ptr_mutex_);
      db->snapshot_ = std::move(snap);
    }
  }
  db->InitSlowQueryLog();
  db->StartMergeThread();
  return db;
}

Status Database::Flush() {
  // At kNone the flush pushes buffered bytes to the OS; at kOnFlush and
  // kPerBatch it is a durability barrier (fdatasync of every segment).
  Status status = options_.durability == Durability::kNone
                      ? relation_->Flush()
                      : relation_->Sync();
  if (!status.ok()) return EnterReadOnly(std::move(status));
  // merge_mutex_ keeps the flush from racing a merge's rename of the
  // index file; the main tree itself is immutable once published.
  std::lock_guard<std::mutex> lock(merge_mutex_);
  if (auto snap = CurrentSnapshot(); snap != nullptr) {
    if (Status index_status = snap->main->Flush(); !index_status.ok()) {
      return EnterReadOnly(std::move(index_status));
    }
  }
  return Status::OK();
}

DatabaseStats Database::StatsSnapshot() const {
  DatabaseStats out;
  out.series = relation_->size();
  out.series_length = series_length_.load(std::memory_order_relaxed);
  const RelationStats& rel = relation_->stats();
  out.relation_records_read =
      rel.records_read.load(std::memory_order_relaxed);
  out.relation_bytes_read = rel.bytes_read.load(std::memory_order_relaxed);
  out.relation_bytes_written =
      rel.bytes_written.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_acquire);
  out.write_faults = write_faults_.load(std::memory_order_relaxed);
  out.repairs_completed = repairs_completed_.load(std::memory_order_relaxed);
  // One acquire load pins a coherent snapshot; counters within it are
  // individually atomic (monitoring does not need mutual consistency).
  auto snap = CurrentSnapshot();
  if (snap == nullptr) return out;
  const KIndex* index = snap->main.get();
  out.index_built = true;
  out.index_epoch = snap->epoch;
  out.delta_entries =
      snap->delta->base() + snap->delta->visible() - index->size();
  out.merges_completed = merges_completed_.load(std::memory_order_relaxed);
  const BufferPoolStats pool = index->pool()->stats();
  out.pool_hits = pool.hits.load(std::memory_order_relaxed);
  out.pool_misses = pool.misses.load(std::memory_order_relaxed);
  out.pool_evictions = pool.evictions.load(std::memory_order_relaxed);
  out.pool_disk_reads = pool.disk_reads.load(std::memory_order_relaxed);
  out.pool_disk_writes = pool.disk_writes.load(std::memory_order_relaxed);
  const rtree::TraversalStats& traversal = index->tree()->stats();
  out.nodes_visited =
      traversal.nodes_visited.load(std::memory_order_relaxed);
  out.rect_transforms =
      traversal.rect_transforms.load(std::memory_order_relaxed);
  out.leaf_entries_tested =
      traversal.leaf_entries_tested.load(std::memory_order_relaxed);
  out.tree_entries = index->tree()->size();
  out.tree_height = index->tree()->height();
  out.tree_dims = index->tree()->dims();
  return out;
}

Status Database::CheckSeriesLength(size_t length) {
  size_t expected = 0;
  if (series_length_.compare_exchange_strong(expected, length,
                                             std::memory_order_relaxed)) {
    return Status::OK();
  }
  if (expected != length) {
    return Status::InvalidArgument(
        "series length " + std::to_string(length) +
        " != database series length " + std::to_string(expected));
  }
  return Status::OK();
}

Status Database::EnterReadOnly(Status cause) {
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (!degraded_.load(std::memory_order_relaxed)) {
      fault_ = cause;
      degraded_.store(true, std::memory_order_release);
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      TSQ_LOG(kWarn) << "write fault, degrading to read-only: "
                     << cause.ToString();
    }
  }
  return cause;
}

Status Database::CheckWritable() const {
  if (!degraded_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return Status::ReadOnly("database is read-only after a write fault (" +
                          fault_.ToString() +
                          "); repair once the fault is resolved");
}

Result<SeriesId> Database::Insert(const std::string& name,
                                  const RealVec& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot insert an empty series");
  }
  TSQ_RETURN_IF_ERROR(CheckWritable());
  TSQ_RETURN_IF_ERROR(CheckSeriesLength(values.size()));
  const SeriesFeatures features = extractor_.Extract(values);
  Result<SeriesId> appended =
      relation_->Append(name, values, features.spectrum);
  if (!appended.ok()) return EnterReadOnly(appended.status());
  const SeriesId id = appended.value();
  if (options_.durability == Durability::kPerBatch) {
    if (Status status = relation_->Sync(); !status.ok()) {
      return EnterReadOnly(std::move(status));
    }
  }
  if (index_built()) {
    if (Status status = DeltaPut(id, features); !status.ok()) {
      return EnterReadOnly(std::move(status));
    }
  }
  return id;
}

Status Database::DeltaPut(SeriesId id, const SeriesFeatures& features) {
  const spatial::Point point = extractor_.ToPoint(features);
  for (int attempt = 0; attempt < 2; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(delta_put_mutex_);
      // Reload under the lock: a merge may have compacted the delta
      // since this call started, and Put must target the live one.
      auto snap = CurrentSnapshot();
      Status status = snap->delta->Put(id, point);
      if (status.ok() || status.code() != StatusCode::kOutOfRange) {
        return status;
      }
    }
    if (attempt == 0) {
      // Delta at capacity: fold it into a fresh main tree, then retry on
      // the compacted delta. (Reindex takes merge_mutex_ then
      // delta_put_mutex_, so the put lock must be released first.)
      TSQ_RETURN_IF_ERROR(Reindex().status());
    }
  }
  return Status::OutOfRange("delta index full after merge");
}

Result<std::vector<SeriesId>> Database::InsertBatch(
    const std::vector<std::string>& names, const std::vector<RealVec>& values,
    size_t threads) {
  if (names.size() != values.size()) {
    return Status::InvalidArgument(
        "InsertBatch got " + std::to_string(names.size()) + " names for " +
        std::to_string(values.size()) + " series");
  }
  if (values.empty()) return std::vector<SeriesId>{};
  // Validate the whole batch before assigning any id: a rejected batch
  // must leave the relation untouched (an id, once reserved, cannot be
  // taken back).
  for (const RealVec& v : values) {
    if (v.empty()) {
      return Status::InvalidArgument("cannot insert an empty series");
    }
    if (v.size() != values[0].size()) {
      return Status::InvalidArgument(
          "InsertBatch series lengths disagree: " +
          std::to_string(v.size()) + " vs " +
          std::to_string(values[0].size()));
    }
  }
  TSQ_RETURN_IF_ERROR(CheckWritable());
  TSQ_RETURN_IF_ERROR(CheckSeriesLength(values[0].size()));

  const size_t count = values.size();
  engine::ThreadPool* pool = EnsureIngestPool(threads);

  // Phase 1: feature extraction (normal form + DFT), work-stolen
  // record-by-record — the CPU-bound half of ingest.
  std::vector<SeriesFeatures> features(count);
  pool->ParallelFor(count, [&](size_t i) {
    features[i] = extractor_.Extract(values[i]);
  });

  // Phase 2: per-segment appends. One task per relation segment, each
  // appending its ids in ascending order, so every segment file gets the
  // same bytes at every thread count. Reservation and task submission
  // happen under ingest_order_mutex_ (see database.h) to keep the pool's
  // FIFO order aligned with id order across concurrent batches.
  const size_t num_segments = relation_->num_segments();
  std::vector<Status> segment_status(num_segments);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t pending = num_segments;
  SeriesId base = 0;
  {
    std::lock_guard<std::mutex> order(ingest_order_mutex_);
    TSQ_ASSIGN_OR_RETURN(base, relation_->ReserveIds(count));
    for (size_t s = 0; s < num_segments; ++s) {
      pool->Submit([&, base, s] {
        const uint64_t first_in_segment =
            base + (s + num_segments - base % num_segments) % num_segments;
        Status status;
        for (uint64_t id = first_in_segment;
             id < base + count && status.ok(); id += num_segments) {
          const size_t i = static_cast<size_t>(id - base);
          status = relation_->AppendWithId(id, names[i], values[i],
                                           features[i].spectrum);
        }
        segment_status[s] = std::move(status);
        std::lock_guard<std::mutex> lock(done_mutex);
        if (--pending == 0) done_cv.notify_all();
      });
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&pending] { return pending == 0; });
  }
  for (Status& status : segment_status) {
    if (!status.ok()) return EnterReadOnly(std::move(status));
  }

  // Group commit: one fdatasync per segment covers the whole batch
  // before it is acknowledged.
  if (options_.durability == Durability::kPerBatch) {
    if (Status status = relation_->Sync(); !status.ok()) {
      return EnterReadOnly(std::move(status));
    }
  }

  // Phase 3: publish the batch's feature points into the delta index
  // (when built) in id order. Each put is a slot write under the delta
  // writer mutex — a writer-writer lock; no query waits on it. The
  // series become visible the moment the delta watermark covers them,
  // i.e. before this call returns.
  if (index_built()) {
    for (size_t i = 0; i < count; ++i) {
      if (Status status = DeltaPut(base + i, features[i]); !status.ok()) {
        return EnterReadOnly(std::move(status));
      }
    }
  }

  std::vector<SeriesId> ids(count);
  std::iota(ids.begin(), ids.end(), base);
  return ids;
}

Result<std::shared_ptr<KIndex>> Database::BuildIndexFile(
    const std::string& path, uint64_t limit, bool bulk_load) {
  KIndexOptions kopts;
  kopts.layout = options_.layout;
  kopts.path = path;
  kopts.page_size = options_.page_size;
  kopts.buffer_pool_frames = options_.buffer_pool_frames;
  kopts.buffer_pool_shards = options_.buffer_pool_shards;
  kopts.rtree = options_.rtree;
  std::unique_ptr<KIndex> index;
  TSQ_ASSIGN_OR_RETURN(index, KIndex::Create(kopts, series_length()));

  // One parallel scan per relation segment collects every series'
  // features — ids are dense, so items[id] is each scanner's private
  // slot and the merged vector is in id order with no sorting. Features
  // come from the same FromStored helper Insert's Extract shares, so
  // bulk, incremental and merge indexing are identical. STR bulk loading
  // packs the tree in one pass (repeated insertion remains available as
  // the ablation baseline).
  std::vector<std::pair<SeriesId, SeriesFeatures>> items(limit);
  const size_t num_segments = relation_->num_segments();
  std::vector<Status> segment_status(num_segments);
  EnsureIngestPool(0)->ParallelFor(num_segments, [&](size_t s) {
    segment_status[s] =
        relation_->ScanSegment(s, limit, [&](const SeriesRecord& rec) {
          items[rec.id] = {rec.id,
                           extractor_.FromStored(rec.values, rec.dft)};
          return true;
        });
  });
  for (const Status& status : segment_status) {
    TSQ_RETURN_IF_ERROR(status);
  }
  if (bulk_load) {
    TSQ_RETURN_IF_ERROR(index->BulkLoad(items));
  } else {
    for (const auto& [id, features] : items) {
      TSQ_RETURN_IF_ERROR(index->Add(id, features));
    }
  }
  return std::shared_ptr<KIndex>(std::move(index));
}

Status Database::BuildIndex() {
  std::lock_guard<std::mutex> merge_lock(merge_mutex_);
  TSQ_RETURN_IF_ERROR(CheckWritable());
  const uint64_t total = relation_->size();
  if (total == 0) {
    return Status::FailedPrecondition("BuildIndex on an empty database");
  }
  if (index_built()) {
    return Status::FailedPrecondition("index already built");
  }
  std::shared_ptr<KIndex> index;
  TSQ_ASSIGN_OR_RETURN(index,
                       BuildIndexFile(IndexPath(), total, options_.bulk_load));
  auto snap = std::make_shared<IndexSnapshot>();
  snap->epoch = 1;
  snap->main = std::move(index);
  snap->delta = std::make_shared<DeltaIndex>(total, options_.layout.dims());
  snap->delta_begin = 0;
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_ptr_mutex_);
    snapshot_ = std::move(snap);
  }
  return Status::OK();
}

Result<uint64_t> Database::Reindex() {
  std::lock_guard<std::mutex> merge_lock(merge_mutex_);
  TSQ_RETURN_IF_ERROR(CheckWritable());
  auto snap = CurrentSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("Reindex requires BuildIndex()");
  }
  // The merge cutoff: every id the new tree will cover. The delta keeps
  // absorbing puts meanwhile; whatever lands at or above the cutoff
  // survives the swap through compaction below.
  const uint64_t cutoff = snap->delta->base() + snap->delta->visible();
  if (cutoff == snap->main->size()) {
    return snap->epoch;  // nothing to fold
  }

  // Rebuild into scratch, flush, then atomically rename over the
  // canonical index file. The published tree keeps serving from its open
  // descriptor throughout; a crash anywhere here leaves either the old
  // file (plus ignorable scratch) or the complete new one.
  const std::string tmp_path = IndexPath() + ".tmp";
  std::remove(tmp_path.c_str());
  std::shared_ptr<KIndex> merged;
  {
    Result<std::shared_ptr<KIndex>> built =
        BuildIndexFile(tmp_path, cutoff, /*bulk_load=*/true);
    if (!built.ok()) return EnterReadOnly(built.status());
    merged = std::move(built).value();
  }
  // Publication sequence with its crash points: fsync the complete temp
  // tree, atomically rename it over the canonical file, then fsync the
  // parent directory so the rename itself is durable. A crash before
  // the rename leaves ignorable scratch; after it, the new file — in
  // both cases Open recovers (the reindex_* failpoints let the crash
  // harness stop at each step).
  static failpoint::Site* fp_flush =
      failpoint::Register("reindex_before_flush");
  if (Status s = MergeFailpoint(fp_flush, "merge failed before flushing",
                                tmp_path);
      !s.ok()) {
    return EnterReadOnly(std::move(s));
  }
  if (Status s = merged->Flush(); !s.ok()) {
    return EnterReadOnly(std::move(s));
  }
  static failpoint::Site* fp_rename =
      failpoint::Register("reindex_before_rename");
  if (Status s = MergeFailpoint(fp_rename, "merge failed before publishing",
                                tmp_path);
      !s.ok()) {
    return EnterReadOnly(std::move(s));
  }
  if (std::rename(tmp_path.c_str(), IndexPath().c_str()) != 0) {
    return EnterReadOnly(failpoint::ErrnoError(
        errno != 0 ? errno : EIO, "failed to rename " + tmp_path + " over",
        IndexPath()));
  }
  static failpoint::Site* fp_post =
      failpoint::Register("reindex_after_rename");
  if (Status s = MergeFailpoint(fp_post, "merge failed after publishing",
                                IndexPath());
      !s.ok()) {
    return EnterReadOnly(std::move(s));
  }
  if (Status s = SyncDirectory(options_.directory); !s.ok()) {
    return EnterReadOnly(std::move(s));
  }
  if (merge_hook_) merge_hook_();

  uint64_t epoch = 0;
  {
    // Swap under the delta writer mutex: compaction and publication are
    // atomic w.r.t. DeltaPut, so no put can land in the old delta after
    // compaction copied it.
    std::lock_guard<std::mutex> put_lock(delta_put_mutex_);
    auto current = CurrentSnapshot();
    auto next = std::make_shared<IndexSnapshot>();
    next->epoch = current->epoch + 1;
    next->main = std::move(merged);
    next->delta = std::shared_ptr<DeltaIndex>(
        DeltaIndex::Compact(*current->delta, cutoff));
    next->delta_begin = 0;
    epoch = next->epoch;
    {
      std::unique_lock<std::shared_mutex> lock(snapshot_ptr_mutex_);
      snapshot_ = std::move(next);
    }
  }
  merges_completed_.fetch_add(1, std::memory_order_relaxed);
  return epoch;
}

Status Database::Repair() {
  std::lock_guard<std::mutex> merge_lock(merge_mutex_);
  if (!degraded() && !relation_->poisoned()) return Status::OK();
  // 1. Repair the relation in place: re-walk the segment files, rewind
  // to the largest dense record prefix, lift the append poison. Fails
  // (keeping the degradation) while the fault persists.
  TSQ_RETURN_IF_ERROR(relation_->Repair());
  const uint64_t total = relation_->size();
  // 2. Re-cover the relation tail the published index may have missed
  // (a failed delta publication, or records the rewind removed). The
  // published main tree indexes ids [0, main->size()); every one of
  // them was visible before its merge cutoff, so the rewind never
  // truncates below it. Rebuild the delta for [main->size(), total)
  // from relation records — the same tail rebuild Open performs — and
  // publish it as the next epoch.
  if (auto snap = CurrentSnapshot(); snap != nullptr) {
    auto next = std::make_shared<IndexSnapshot>();
    next->epoch = snap->epoch + 1;
    next->main = snap->main;
    next->delta = std::make_shared<DeltaIndex>(snap->main->size(),
                                               options_.layout.dims());
    next->delta_begin = 0;
    for (SeriesId id = snap->main->size(); id < total; ++id) {
      TSQ_ASSIGN_OR_RETURN(SeriesRecord rec, relation_->Get(id));
      const SeriesFeatures features =
          extractor_.FromStored(rec.values, rec.dft);
      TSQ_RETURN_IF_ERROR(next->delta->Put(id, extractor_.ToPoint(features)));
    }
    {
      // Same two-lock order as the merge swap: no DeltaPut can land in
      // the old delta after the rebuild copied the tail.
      std::lock_guard<std::mutex> put_lock(delta_put_mutex_);
      std::unique_lock<std::shared_mutex> lock(snapshot_ptr_mutex_);
      snapshot_ = std::move(next);
    }
  }
  // 3. A merge may have died mid-build; its scratch is dead weight now.
  std::remove((IndexPath() + ".tmp").c_str());
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    fault_ = Status::OK();
    degraded_.store(false, std::memory_order_release);
  }
  repairs_completed_.fetch_add(1, std::memory_order_relaxed);
  TSQ_LOG(kInfo) << "repair complete, writes resumed (relation size "
                 << total << ")";
  return Status::OK();
}

Result<std::vector<Match>> Database::RangeQuery(const RealVec& query,
                                                double epsilon,
                                                const QuerySpec& spec) {
  // Lock-free read path: pin the current epoch and run against it.
  auto snap = CurrentSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("RangeQuery requires BuildIndex()");
  }
  const IndexView view(*snap);
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexRangeQuery(view, *relation_, query, epsilon,
                                      spec, &out, &last_stats_));
  MaybeLogSlowQuery("range", last_stats_);
  return out;
}

Result<std::vector<Match>> Database::Knn(const RealVec& query, size_t k,
                                         const QuerySpec& spec,
                                         const KnnOptions& options) {
  auto snap = CurrentSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("Knn requires BuildIndex()");
  }
  const IndexView view(*snap);
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexKnnQuery(view, *relation_, query, k, spec, options,
                                    &out, &last_stats_));
  MaybeLogSlowQuery("knn", last_stats_);
  return out;
}

Result<std::vector<Match>> Database::ScanRangeQuery(const RealVec& query,
                                                    double epsilon,
                                                    const QuerySpec& spec,
                                                    bool early_abandon) {
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(SeqScanRangeQuery(*relation_, extractor_, query,
                                        epsilon, spec, early_abandon, &out,
                                        &last_stats_));
  MaybeLogSlowQuery("scan_range", last_stats_);
  return out;
}

engine::QueryEngine* Database::EnsureEngine(size_t threads) {
  std::lock_guard<std::mutex> lock(engines_mutex_);
  auto it = engines_.find(threads);
  if (it == engines_.end()) {
    engine::QueryEngineOptions options;
    options.threads = threads;
    // Engines load the epoch pointer per operation, so one engine stays
    // valid across any number of merges.
    engine::SnapshotLoader loader = [this] { return CurrentSnapshot(); };
    it = engines_
             .emplace(threads, std::make_unique<engine::QueryEngine>(
                                   std::move(loader), relation_.get(),
                                   /*subsequence_index=*/nullptr, options))
             .first;
  }
  return it->second.get();
}

engine::ThreadPool* Database::EnsureIngestPool(size_t threads) {
  std::lock_guard<std::mutex> lock(pools_mutex_);
  auto it = ingest_pools_.find(threads);
  if (it == ingest_pools_.end()) {
    it = ingest_pools_
             .emplace(threads, std::make_unique<engine::ThreadPool>(threads))
             .first;
  }
  return it->second.get();
}

Result<std::vector<engine::BatchResult>> Database::RunBatch(
    const std::vector<engine::BatchQuery>& queries, size_t threads,
    engine::BatchStats* batch_stats) {
  if (!index_built()) {
    return Status::FailedPrecondition("RunBatch requires BuildIndex()");
  }
  std::vector<engine::BatchResult> results =
      EnsureEngine(threads)->RunBatch(queries, batch_stats);
  for (const engine::BatchResult& r : results) {
    if (r.status.ok()) MaybeLogSlowQuery("batch", r.stats);
  }
  return results;
}

Result<std::vector<JoinPair>> Database::ParallelSelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    size_t threads) {
  QueryStats stats;
  TSQ_ASSIGN_OR_RETURN(std::vector<JoinPair> out,
                       ParallelSelfJoin(epsilon, transform, threads, &stats));
  last_stats_ = stats;
  return out;
}

Result<std::vector<JoinPair>> Database::ParallelSelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    size_t threads, QueryStats* stats) {
  if (!index_built()) {
    return Status::FailedPrecondition("ParallelSelfJoin requires BuildIndex()");
  }
  auto pairs = EnsureEngine(threads)->SelfJoin(epsilon, transform, stats);
  if (pairs.ok() && stats != nullptr) {
    MaybeLogSlowQuery("parallel_self_join", *stats);
  }
  return pairs;
}

Result<std::vector<JoinPair>> Database::SelfJoin(
    double epsilon, JoinMethod method,
    const std::optional<FeatureTransform>& transform) {
  std::vector<JoinPair> out;
  last_stats_ = QueryStats();
  switch (method) {
    case JoinMethod::kScanFull:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/false, &out,
                                          &last_stats_));
      MaybeLogSlowQuery("self_join", last_stats_);
      return out;
    case JoinMethod::kScanEarlyAbandon:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/true, &out,
                                          &last_stats_));
      MaybeLogSlowQuery("self_join", last_stats_);
      return out;
    case JoinMethod::kIndexPlain: {
      auto snap = CurrentSnapshot();
      if (snap == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(IndexView(*snap), *relation_,
                                        epsilon, /*transform=*/std::nullopt,
                                        &out, &last_stats_));
      MaybeLogSlowQuery("self_join", last_stats_);
      return out;
    }
    case JoinMethod::kIndexTransformed: {
      auto snap = CurrentSnapshot();
      if (snap == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(IndexView(*snap), *relation_,
                                        epsilon, transform, &out,
                                        &last_stats_));
      MaybeLogSlowQuery("self_join", last_stats_);
      return out;
    }
    case JoinMethod::kTreeMatch: {
      auto snap = CurrentSnapshot();
      if (snap == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(TreeMatchSelfJoin(IndexView(*snap), *relation_,
                                            epsilon, transform, &out,
                                            &last_stats_));
      MaybeLogSlowQuery("self_join", last_stats_);
      return out;
    }
  }
  return Status::InvalidArgument("unknown join method");
}

}  // namespace tsq
