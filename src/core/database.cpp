// Copyright (c) 2026 The tsq Authors.

#include "core/database.h"

#include <condition_variable>
#include <cstdio>
#include <numeric>

namespace tsq {

Result<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Create(options.directory + "/" + options.name + ".rel",
                       options.relation_segments));
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("database name must be non-empty");
  }
  auto db = std::unique_ptr<Database>(new Database(options));
  TSQ_ASSIGN_OR_RETURN(
      db->relation_,
      Relation::Open(options.directory + "/" + options.name + ".rel"));
  if (db->relation_->size() == 0) {
    return Status::FailedPrecondition("cannot reopen an empty database");
  }
  TSQ_ASSIGN_OR_RETURN(SeriesRecord first, db->relation_->Get(0));
  db->series_length_.store(first.values.size(), std::memory_order_relaxed);

  const std::string index_path =
      options.directory + "/" + options.name + ".idx";
  if (std::FILE* f = std::fopen(index_path.c_str(), "rb")) {
    std::fclose(f);
    KIndexOptions kopts;
    kopts.layout = options.layout;
    kopts.path = index_path;
    kopts.page_size = options.page_size;
    kopts.buffer_pool_frames = options.buffer_pool_frames;
    kopts.buffer_pool_shards = options.buffer_pool_shards;
    kopts.rtree = options.rtree;
    TSQ_ASSIGN_OR_RETURN(db->index_,
                         KIndex::Open(kopts, db->series_length()));
    if (db->index_->size() != db->relation_->size()) {
      return Status::Corruption(
          "index holds " + std::to_string(db->index_->size()) +
          " entries but the relation has " +
          std::to_string(db->relation_->size()));
    }
  }
  return db;
}

Status Database::Flush() {
  TSQ_RETURN_IF_ERROR(relation_->Flush());
  if (index_ != nullptr) {
    std::unique_lock<std::shared_mutex> lock(index_mutex_);
    TSQ_RETURN_IF_ERROR(index_->Flush());
  }
  return Status::OK();
}

DatabaseStats Database::StatsSnapshot() const {
  DatabaseStats out;
  out.series = relation_->size();
  out.series_length = series_length_.load(std::memory_order_relaxed);
  const RelationStats& rel = relation_->stats();
  out.relation_records_read =
      rel.records_read.load(std::memory_order_relaxed);
  out.relation_bytes_read = rel.bytes_read.load(std::memory_order_relaxed);
  out.relation_bytes_written =
      rel.bytes_written.load(std::memory_order_relaxed);
  // index_ is written once by BuildIndex under the exclusive lock; the
  // shared lock here orders this read after any in-flight build.
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  if (index_ == nullptr) return out;
  out.index_built = true;
  const BufferPoolStats pool = index_->pool()->stats();
  out.pool_hits = pool.hits.load(std::memory_order_relaxed);
  out.pool_misses = pool.misses.load(std::memory_order_relaxed);
  out.pool_evictions = pool.evictions.load(std::memory_order_relaxed);
  out.pool_disk_reads = pool.disk_reads.load(std::memory_order_relaxed);
  out.pool_disk_writes = pool.disk_writes.load(std::memory_order_relaxed);
  const rtree::TraversalStats& traversal = index_->tree()->stats();
  out.nodes_visited =
      traversal.nodes_visited.load(std::memory_order_relaxed);
  out.rect_transforms =
      traversal.rect_transforms.load(std::memory_order_relaxed);
  out.leaf_entries_tested =
      traversal.leaf_entries_tested.load(std::memory_order_relaxed);
  out.tree_entries = index_->tree()->size();
  out.tree_height = index_->tree()->height();
  out.tree_dims = index_->tree()->dims();
  return out;
}

Status Database::CheckSeriesLength(size_t length) {
  size_t expected = 0;
  if (series_length_.compare_exchange_strong(expected, length,
                                             std::memory_order_relaxed)) {
    return Status::OK();
  }
  if (expected != length) {
    return Status::InvalidArgument(
        "series length " + std::to_string(length) +
        " != database series length " + std::to_string(expected));
  }
  return Status::OK();
}

Status Database::CheckIndexHealthy() const {
  if (!index_poisoned_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(index_fault_mutex_);
  return index_fault_;
}

Status Database::PoisonIndex(Status status) {
  std::lock_guard<std::mutex> lock(index_fault_mutex_);
  if (!index_poisoned_.load(std::memory_order_relaxed)) {
    index_fault_ = status;
    index_poisoned_.store(true, std::memory_order_release);
  }
  return status;
}

Result<SeriesId> Database::Insert(const std::string& name,
                                  const RealVec& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot insert an empty series");
  }
  if (index_ != nullptr) {
    TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  }
  TSQ_RETURN_IF_ERROR(CheckSeriesLength(values.size()));
  const SeriesFeatures features = extractor_.Extract(values);
  TSQ_ASSIGN_OR_RETURN(const SeriesId id,
                       relation_->Append(name, values, features.spectrum));
  if (index_ != nullptr) {
    std::unique_lock<std::shared_mutex> lock(index_mutex_);
    if (Status status = index_->Add(id, features); !status.ok()) {
      return PoisonIndex(std::move(status));
    }
  }
  return id;
}

Result<std::vector<SeriesId>> Database::InsertBatch(
    const std::vector<std::string>& names, const std::vector<RealVec>& values,
    size_t threads) {
  if (names.size() != values.size()) {
    return Status::InvalidArgument(
        "InsertBatch got " + std::to_string(names.size()) + " names for " +
        std::to_string(values.size()) + " series");
  }
  if (values.empty()) return std::vector<SeriesId>{};
  // Validate the whole batch before assigning any id: a rejected batch
  // must leave the relation untouched (an id, once reserved, cannot be
  // taken back).
  for (const RealVec& v : values) {
    if (v.empty()) {
      return Status::InvalidArgument("cannot insert an empty series");
    }
    if (v.size() != values[0].size()) {
      return Status::InvalidArgument(
          "InsertBatch series lengths disagree: " +
          std::to_string(v.size()) + " vs " +
          std::to_string(values[0].size()));
    }
  }
  if (index_ != nullptr) {
    TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  }
  TSQ_RETURN_IF_ERROR(CheckSeriesLength(values[0].size()));

  const size_t count = values.size();
  engine::ThreadPool* pool = EnsureIngestPool(threads);

  // Phase 1: feature extraction (normal form + DFT), work-stolen
  // record-by-record — the CPU-bound half of ingest.
  std::vector<SeriesFeatures> features(count);
  pool->ParallelFor(count, [&](size_t i) {
    features[i] = extractor_.Extract(values[i]);
  });

  // Phase 2: per-segment appends. One task per relation segment, each
  // appending its ids in ascending order, so every segment file gets the
  // same bytes at every thread count. Reservation and task submission
  // happen under ingest_order_mutex_ (see database.h) to keep the pool's
  // FIFO order aligned with id order across concurrent batches.
  const size_t num_segments = relation_->num_segments();
  std::vector<Status> segment_status(num_segments);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  size_t pending = num_segments;
  SeriesId base = 0;
  {
    std::lock_guard<std::mutex> order(ingest_order_mutex_);
    TSQ_ASSIGN_OR_RETURN(base, relation_->ReserveIds(count));
    for (size_t s = 0; s < num_segments; ++s) {
      pool->Submit([&, base, s] {
        const uint64_t first_in_segment =
            base + (s + num_segments - base % num_segments) % num_segments;
        Status status;
        for (uint64_t id = first_in_segment;
             id < base + count && status.ok(); id += num_segments) {
          const size_t i = static_cast<size_t>(id - base);
          status = relation_->AppendWithId(id, names[i], values[i],
                                           features[i].spectrum);
        }
        segment_status[s] = std::move(status);
        std::lock_guard<std::mutex> lock(done_mutex);
        if (--pending == 0) done_cv.notify_all();
      });
    }
  }
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&pending] { return pending == 0; });
  }
  for (const Status& status : segment_status) {
    TSQ_RETURN_IF_ERROR(status);
  }

  // Phase 3: fold the batch into the index (when built) in id order,
  // under the writer side of the index lock — the only point where this
  // call can make a concurrent batch query wait.
  if (index_ != nullptr) {
    std::unique_lock<std::shared_mutex> lock(index_mutex_);
    for (size_t i = 0; i < count; ++i) {
      if (Status status = index_->Add(base + i, features[i]); !status.ok()) {
        return PoisonIndex(std::move(status));
      }
    }
  }

  std::vector<SeriesId> ids(count);
  std::iota(ids.begin(), ids.end(), base);
  return ids;
}

Status Database::BuildIndex() {
  std::unique_lock<std::shared_mutex> lock(index_mutex_);
  const uint64_t total = relation_->size();
  if (total == 0) {
    return Status::FailedPrecondition("BuildIndex on an empty database");
  }
  if (index_ != nullptr) {
    return Status::FailedPrecondition("index already built");
  }
  KIndexOptions kopts;
  kopts.layout = options_.layout;
  kopts.path = options_.directory + "/" + options_.name + ".idx";
  kopts.page_size = options_.page_size;
  kopts.buffer_pool_frames = options_.buffer_pool_frames;
  kopts.buffer_pool_shards = options_.buffer_pool_shards;
  kopts.rtree = options_.rtree;
  TSQ_ASSIGN_OR_RETURN(index_, KIndex::Create(kopts, series_length()));

  // One parallel scan per relation segment collects every series'
  // features — ids are dense, so items[id] is each scanner's private
  // slot and the merged vector is in id order with no sorting. Features
  // come from the same FromStored helper Insert's Extract shares, so
  // bulk and incremental indexing are identical. STR bulk loading packs
  // the tree in one pass (repeated insertion remains available as the
  // ablation baseline).
  std::vector<std::pair<SeriesId, SeriesFeatures>> items(total);
  const size_t num_segments = relation_->num_segments();
  std::vector<Status> segment_status(num_segments);
  EnsureIngestPool(0)->ParallelFor(num_segments, [&](size_t s) {
    segment_status[s] =
        relation_->ScanSegment(s, total, [&](const SeriesRecord& rec) {
          items[rec.id] = {rec.id,
                           extractor_.FromStored(rec.values, rec.dft)};
          return true;
        });
  });
  for (const Status& status : segment_status) {
    TSQ_RETURN_IF_ERROR(status);
  }
  if (options_.bulk_load) {
    return index_->BulkLoad(items);
  }
  for (const auto& [id, features] : items) {
    TSQ_RETURN_IF_ERROR(index_->Add(id, features));
  }
  return Status::OK();
}

Result<std::vector<Match>> Database::RangeQuery(const RealVec& query,
                                                double epsilon,
                                                const QuerySpec& spec) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("RangeQuery requires BuildIndex()");
  }
  TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexRangeQuery(*index_, *relation_, query, epsilon,
                                      spec, &out, &last_stats_));
  return out;
}

Result<std::vector<Match>> Database::Knn(const RealVec& query, size_t k,
                                         const QuerySpec& spec) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("Knn requires BuildIndex()");
  }
  TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(IndexKnnQuery(*index_, *relation_, query, k, spec,
                                    &out, &last_stats_));
  return out;
}

Result<std::vector<Match>> Database::ScanRangeQuery(const RealVec& query,
                                                    double epsilon,
                                                    const QuerySpec& spec,
                                                    bool early_abandon) {
  std::vector<Match> out;
  last_stats_ = QueryStats();
  TSQ_RETURN_IF_ERROR(SeqScanRangeQuery(*relation_, extractor_, query,
                                        epsilon, spec, early_abandon, &out,
                                        &last_stats_));
  return out;
}

engine::QueryEngine* Database::EnsureEngine(size_t threads) {
  std::lock_guard<std::mutex> lock(engines_mutex_);
  auto it = engines_.find(threads);
  if (it == engines_.end()) {
    engine::QueryEngineOptions options;
    options.threads = threads;
    it = engines_
             .emplace(threads, std::make_unique<engine::QueryEngine>(
                                   index_.get(), relation_.get(),
                                   /*subsequence_index=*/nullptr, options))
             .first;
  }
  return it->second.get();
}

engine::ThreadPool* Database::EnsureIngestPool(size_t threads) {
  std::lock_guard<std::mutex> lock(pools_mutex_);
  auto it = ingest_pools_.find(threads);
  if (it == ingest_pools_.end()) {
    it = ingest_pools_
             .emplace(threads, std::make_unique<engine::ThreadPool>(threads))
             .first;
  }
  return it->second.get();
}

Result<std::vector<engine::BatchResult>> Database::RunBatch(
    const std::vector<engine::BatchQuery>& queries, size_t threads,
    engine::BatchStats* batch_stats) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("RunBatch requires BuildIndex()");
  }
  TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  return EnsureEngine(threads)->RunBatch(queries, batch_stats);
}

Result<std::vector<JoinPair>> Database::ParallelSelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    size_t threads) {
  QueryStats stats;
  TSQ_ASSIGN_OR_RETURN(std::vector<JoinPair> out,
                       ParallelSelfJoin(epsilon, transform, threads, &stats));
  last_stats_ = stats;
  return out;
}

Result<std::vector<JoinPair>> Database::ParallelSelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform,
    size_t threads, QueryStats* stats) {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("ParallelSelfJoin requires BuildIndex()");
  }
  TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
  std::shared_lock<std::shared_mutex> lock(index_mutex_);
  return EnsureEngine(threads)->SelfJoin(epsilon, transform, stats);
}

Result<std::vector<JoinPair>> Database::SelfJoin(
    double epsilon, JoinMethod method,
    const std::optional<FeatureTransform>& transform) {
  std::vector<JoinPair> out;
  last_stats_ = QueryStats();
  switch (method) {
    case JoinMethod::kScanFull:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/false, &out,
                                          &last_stats_));
      return out;
    case JoinMethod::kScanEarlyAbandon:
      TSQ_RETURN_IF_ERROR(SeqScanSelfJoin(*relation_, epsilon, transform,
                                          /*early_abandon=*/true, &out,
                                          &last_stats_));
      return out;
    case JoinMethod::kIndexPlain: {
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(*index_, *relation_, epsilon,
                                        /*transform=*/std::nullopt, &out,
                                        &last_stats_));
      return out;
    }
    case JoinMethod::kIndexTransformed: {
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      TSQ_RETURN_IF_ERROR(IndexSelfJoin(*index_, *relation_, epsilon,
                                        transform, &out, &last_stats_));
      return out;
    }
    case JoinMethod::kTreeMatch: {
      if (index_ == nullptr) {
        return Status::FailedPrecondition("index join requires BuildIndex()");
      }
      TSQ_RETURN_IF_ERROR(CheckIndexHealthy());
      std::shared_lock<std::shared_mutex> lock(index_mutex_);
      TSQ_RETURN_IF_ERROR(TreeMatchSelfJoin(*index_, *relation_, epsilon,
                                            transform, &out, &last_stats_));
      return out;
    }
  }
  return Status::InvalidArgument("unknown join method");
}

}  // namespace tsq
