// Copyright (c) 2026 The tsq Authors.

#include "core/k_index.h"

namespace tsq {

Result<std::unique_ptr<KIndex>> KIndex::Create(const KIndexOptions& options,
                                               size_t series_length) {
  TSQ_RETURN_IF_ERROR(options.layout.Validate(series_length));
  auto index = std::unique_ptr<KIndex>(
      new KIndex(options.layout, series_length));
  TSQ_ASSIGN_OR_RETURN(index->file_,
                       PageFile::Create(options.path, options.page_size));
  index->pool_ = std::make_unique<BufferPool>(index->file_.get(),
                                              options.buffer_pool_frames,
                                              options.buffer_pool_shards);
  TSQ_ASSIGN_OR_RETURN(
      index->tree_,
      rtree::RStarTree::Create(index->pool_.get(), options.layout.dims(),
                               options.rtree));
  return index;
}

Result<std::unique_ptr<KIndex>> KIndex::Open(const KIndexOptions& options,
                                             size_t series_length) {
  TSQ_RETURN_IF_ERROR(options.layout.Validate(series_length));
  auto index = std::unique_ptr<KIndex>(
      new KIndex(options.layout, series_length));
  TSQ_ASSIGN_OR_RETURN(index->file_, PageFile::Open(options.path));
  index->pool_ = std::make_unique<BufferPool>(index->file_.get(),
                                              options.buffer_pool_frames,
                                              options.buffer_pool_shards);
  // KIndex::Create allocates the meta page first, so it is always page 1.
  TSQ_ASSIGN_OR_RETURN(
      index->tree_,
      rtree::RStarTree::Open(index->pool_.get(), /*meta_page=*/1,
                             options.rtree));
  if (index->tree_->dims() != options.layout.dims()) {
    return Status::InvalidArgument(
        "index on disk has " + std::to_string(index->tree_->dims()) +
        " dims but the layout describes " +
        std::to_string(options.layout.dims()));
  }
  return index;
}

Status KIndex::Add(SeriesId id, const SeriesFeatures& features) {
  if (features.spectrum.size() != series_length_) {
    return Status::InvalidArgument(
        "series spectrum length " + std::to_string(features.spectrum.size()) +
        " != index series length " + std::to_string(series_length_));
  }
  return tree_->InsertPoint(extractor().ToPoint(features), id);
}

Status KIndex::BulkLoad(
    const std::vector<std::pair<SeriesId, SeriesFeatures>>& items) {
  std::vector<rtree::Entry> entries;
  entries.reserve(items.size());
  for (const auto& [id, features] : items) {
    if (features.spectrum.size() != series_length_) {
      return Status::InvalidArgument(
          "series spectrum length mismatch in BulkLoad");
    }
    rtree::Entry e;
    e.rect = spatial::Rect::FromPoint(extractor().ToPoint(features));
    e.id = id;
    entries.push_back(std::move(e));
  }
  return tree_->BulkLoad(std::move(entries));
}

Result<bool> KIndex::Remove(SeriesId id, const SeriesFeatures& features) {
  return tree_->Remove(
      spatial::Rect::FromPoint(extractor().ToPoint(features)), id);
}

Status KIndex::RangeCandidates(const spatial::Rect& rect,
                               std::vector<SeriesId>* out) const {
  TSQ_CHECK(out != nullptr);
  return tree_->Search(rect, [out](uint64_t id, const spatial::Rect&) {
    out->push_back(id);
    return true;
  });
}

Status KIndex::RangeCandidatesTransformed(const spatial::AffineMap& map,
                                          const spatial::Rect& rect,
                                          std::vector<SeriesId>* out) const {
  TSQ_CHECK(out != nullptr);
  return tree_->SearchTransformed(map, rect,
                                  [out](uint64_t id, const spatial::Rect&) {
                                    out->push_back(id);
                                    return true;
                                  });
}

Status KIndex::StreamNearest(
    const rtree::NnMetric& metric, const spatial::AffineMap* map,
    const std::function<bool(SeriesId, double)>& emit) const {
  return tree_->NearestNeighborsStream(metric, map, emit);
}

Status KIndex::Flush() {
  TSQ_RETURN_IF_ERROR(tree_->SaveMeta());
  return pool_->FlushAll();
}

void KIndex::ResetStats() const {
  tree_->ResetStats();
  pool_->ResetStats();
}

}  // namespace tsq
