// Copyright (c) 2026 The tsq Authors.

#include "series/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace tsq {

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::StdDev() const {
  if (values_.empty()) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double TimeSeries::Energy() const { return cvec::Energy(values_); }

double TimeSeries::Min() const {
  TSQ_CHECK_MSG(!values_.empty(), "Min() on empty series");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  TSQ_CHECK_MSG(!values_.empty(), "Max() on empty series");
  return *std::max_element(values_.begin(), values_.end());
}

}  // namespace tsq
