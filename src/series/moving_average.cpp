// Copyright (c) 2026 The tsq Authors.

#include "series/moving_average.h"

#include "common/macros.h"

namespace tsq {

RealVec CircularMovingAverage(const RealVec& x, size_t window) {
  const size_t n = x.size();
  TSQ_CHECK_MSG(window >= 1 && window <= n,
                "moving-average window %zu out of range for length %zu",
                window, n);
  // Sliding sum: out[i] = out[i-1] + x[i] - x[i-window], all indices mod n.
  RealVec out(n);
  double sum = 0.0;
  // Seed with the trailing window ending at index 0: x[0], x[n-1], ...
  for (size_t d = 0; d < window; ++d) sum += x[(n - d) % n];
  const double inv_w = 1.0 / static_cast<double>(window);
  out[0] = sum * inv_w;
  for (size_t i = 1; i < n; ++i) {
    sum += x[i] - x[(i + n - window) % n];
    out[i] = sum * inv_w;
  }
  return out;
}

RealVec TruncatingMovingAverage(const RealVec& x, size_t window) {
  const size_t n = x.size();
  TSQ_CHECK_MSG(window >= 1 && window <= n,
                "moving-average window %zu out of range for length %zu",
                window, n);
  RealVec out(n - window + 1);
  double sum = 0.0;
  for (size_t i = 0; i < window; ++i) sum += x[i];
  const double inv_w = 1.0 / static_cast<double>(window);
  out[0] = sum * inv_w;
  for (size_t i = 1; i + window <= n; ++i) {
    sum += x[i + window - 1] - x[i - 1];
    out[i] = sum * inv_w;
  }
  return out;
}

RealVec CircularWeightedMovingAverage(const RealVec& x,
                                      const RealVec& weights) {
  const size_t n = x.size();
  const size_t w = weights.size();
  TSQ_CHECK_MSG(w >= 1 && w <= n,
                "weighted window %zu out of range for length %zu", w, n);
  RealVec out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t d = 0; d < w; ++d) acc += weights[d] * x[(i + n - d) % n];
    out[i] = acc;
  }
  return out;
}

RealVec SuccessiveCircularMovingAverage(const RealVec& x, size_t window,
                                        size_t times) {
  RealVec out = x;
  for (size_t i = 0; i < times; ++i) out = CircularMovingAverage(out, window);
  return out;
}

RealVec ExponentialWeights(double alpha, size_t window) {
  TSQ_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha %f out of (0, 1]", alpha);
  TSQ_CHECK_MSG(window >= 1, "EWMA window must be >= 1");
  RealVec weights(window);
  double w = alpha;
  double sum = 0.0;
  for (size_t d = 0; d < window; ++d) {
    weights[d] = w;
    sum += w;
    w *= (1.0 - alpha);
  }
  for (double& v : weights) v /= sum;  // truncated tail renormalized
  return weights;
}

RealVec MovingAverageKernel(size_t n, size_t window) {
  TSQ_CHECK_MSG(window >= 1 && window <= n,
                "moving-average window %zu out of range for length %zu",
                window, n);
  RealVec kernel(n, 0.0);
  const double inv_w = 1.0 / static_cast<double>(window);
  for (size_t i = 0; i < window; ++i) kernel[i] = inv_w;
  return kernel;
}

TimeSeries CircularMovingAverage(const TimeSeries& x, size_t window) {
  return TimeSeries(CircularMovingAverage(x.values(), window), x.name());
}

TimeSeries TruncatingMovingAverage(const TimeSeries& x, size_t window) {
  return TimeSeries(TruncatingMovingAverage(x.values(), window), x.name());
}

}  // namespace tsq
