// Copyright (c) 2026 The tsq Authors.
//
// The normal form of Goldin & Kanellakis [GK95] (paper Eq. 9):
//     s'_i = (s_i - mean(s)) / std(s).
// The paper stores every series in normal form and keeps (mean, std) as the
// first two index dimensions (Sec. 5), which makes shift/scale similarity a
// free by-product and zeroes the first DFT coefficient.

#ifndef TSQ_SERIES_NORMAL_FORM_H_
#define TSQ_SERIES_NORMAL_FORM_H_

#include "common/status.h"
#include "dft/complex_vec.h"
#include "series/time_series.h"

namespace tsq {

/// A series decomposed into its normal form plus the two scalars needed to
/// reconstruct it: original = normalized * std + mean.
struct NormalForm {
  RealVec normalized;  ///< zero mean, unit population std (unless flat)
  double mean = 0.0;   ///< mean of the original series
  double std = 0.0;    ///< population standard deviation of the original
};

/// Computes the normal form (Eq. 9). A flat (zero-variance) series cannot be
/// scaled to unit variance; by convention its normalized samples are all
/// zero and `std` records 0, so reconstruction is still exact.
NormalForm ToNormalForm(const RealVec& x);
NormalForm ToNormalForm(const TimeSeries& x);

/// The (mean, population std) pair of ToNormalForm — same computation, same
/// flat-series clamp, bit-identical values — without materializing the
/// normalized samples. For callers that only need the two moment features
/// (e.g. rebuilding index points from stored spectra).
void Moments(const RealVec& x, double* mean, double* std);

/// Reconstructs the original samples from a normal form.
RealVec FromNormalForm(const NormalForm& nf);

/// Distance between the normal forms of x and y — the [GK95] notion of
/// shift-and-scale-invariant similarity used throughout the paper's Sec. 2
/// examples. Requires equal lengths.
double NormalFormDistance(const RealVec& x, const RealVec& y);

}  // namespace tsq

#endif  // TSQ_SERIES_NORMAL_FORM_H_
