// Copyright (c) 2026 The tsq Authors.
//
// Distance kernels between time-domain sequences. The similarity predicate
// everywhere in the paper is Euclidean distance under a threshold; the
// city-block distance is mentioned as an alternative (Sec. 1) and provided
// for completeness. EarlyAbandon* kernels implement the optimized
// sequential-scan baseline of Sec. 5 ("we stop the distance computation
// process as soon as the distance exceeds eps").

#ifndef TSQ_SERIES_DISTANCE_H_
#define TSQ_SERIES_DISTANCE_H_

#include <optional>

#include "dft/complex_vec.h"
#include "series/time_series.h"

namespace tsq {

/// Euclidean distance between equal-length sequences. Aborts on length
/// mismatch — comparing different lengths is a caller bug (the paper warps
/// time first, Ex. 1.2).
double EuclideanDistance(const RealVec& x, const RealVec& y);
double EuclideanDistance(const TimeSeries& x, const TimeSeries& y);

/// Squared Euclidean distance (no sqrt); the kernel used in inner loops.
double SquaredEuclideanDistance(const RealVec& x, const RealVec& y);

/// City-block (L1 / Manhattan) distance.
double CityBlockDistance(const RealVec& x, const RealVec& y);
double CityBlockDistance(const TimeSeries& x, const TimeSeries& y);

/// Early-abandoning Euclidean distance: returns the distance if it is
/// <= threshold, std::nullopt as soon as the running sum proves the
/// distance exceeds the threshold. Requires threshold >= 0.
std::optional<double> EarlyAbandonEuclidean(const RealVec& x, const RealVec& y,
                                            double threshold);

/// Early-abandoning Euclidean distance over complex coefficient vectors —
/// the frequency-domain scan of Sec. 5, which abandons fast because energy
/// concentrates in the leading coefficients.
std::optional<double> EarlyAbandonEuclidean(const ComplexVec& x,
                                            const ComplexVec& y,
                                            double threshold);

}  // namespace tsq

#endif  // TSQ_SERIES_DISTANCE_H_
