// Copyright (c) 2026 The tsq Authors.

#include "series/normal_form.h"

#include <cmath>

#include "common/macros.h"
#include "series/distance.h"

namespace tsq {

NormalForm ToNormalForm(const RealVec& x) {
  NormalForm nf;
  nf.normalized.assign(x.size(), 0.0);
  if (x.empty()) return nf;

  double sum = 0.0;
  for (double v : x) sum += v;
  nf.mean = sum / static_cast<double>(x.size());

  double acc = 0.0;
  for (double v : x) acc += (v - nf.mean) * (v - nf.mean);
  nf.std = std::sqrt(acc / static_cast<double>(x.size()));

  // A numerically flat series (std at rounding-noise level relative to the
  // magnitude of the data) must not be amplified into garbage: treat it as
  // exactly flat.
  if (nf.std <= 1e-12 * std::max(1.0, std::abs(nf.mean))) {
    nf.std = 0.0;
  }

  if (nf.std > 0.0) {
    const double inv = 1.0 / nf.std;
    for (size_t i = 0; i < x.size(); ++i) {
      nf.normalized[i] = (x[i] - nf.mean) * inv;
    }
  }
  // Flat series: normalized stays all-zero; reconstruction uses mean only.
  return nf;
}

NormalForm ToNormalForm(const TimeSeries& x) { return ToNormalForm(x.values()); }

RealVec FromNormalForm(const NormalForm& nf) {
  RealVec out(nf.normalized.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = nf.normalized[i] * nf.std + nf.mean;
  }
  return out;
}

double NormalFormDistance(const RealVec& x, const RealVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "normal-form distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  return EuclideanDistance(ToNormalForm(x).normalized,
                           ToNormalForm(y).normalized);
}

}  // namespace tsq
