// Copyright (c) 2026 The tsq Authors.

#include "series/normal_form.h"

#include <cmath>

#include "common/macros.h"
#include "series/distance.h"
#include "simd/simd.h"

namespace tsq {

void Moments(const RealVec& x, double* mean, double* std) {
  *mean = 0.0;
  *std = 0.0;
  if (x.empty()) return;

  const auto& k = simd::Kernels();
  const size_t n = x.size();
  *mean = k.sum(x.data(), n) / static_cast<double>(n);
  *std = std::sqrt(k.centered_sum_squares(x.data(), n, *mean) /
                   static_cast<double>(n));

  // A numerically flat series (std at rounding-noise level relative to the
  // magnitude of the data) must not be amplified into garbage: treat it as
  // exactly flat.
  if (*std <= 1e-12 * std::max(1.0, std::abs(*mean))) {
    *std = 0.0;
  }
}

NormalForm ToNormalForm(const RealVec& x) {
  NormalForm nf;
  nf.normalized.assign(x.size(), 0.0);
  if (x.empty()) return nf;

  Moments(x, &nf.mean, &nf.std);
  if (nf.std > 0.0) {
    simd::Kernels().scale_shift(x.data(), x.size(), nf.mean, 1.0 / nf.std,
                                nf.normalized.data());
  }
  // Flat series: normalized stays all-zero; reconstruction uses mean only.
  return nf;
}

NormalForm ToNormalForm(const TimeSeries& x) { return ToNormalForm(x.values()); }

RealVec FromNormalForm(const NormalForm& nf) {
  RealVec out(nf.normalized.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = nf.normalized[i] * nf.std + nf.mean;
  }
  return out;
}

double NormalFormDistance(const RealVec& x, const RealVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "normal-form distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  return EuclideanDistance(ToNormalForm(x).normalized,
                           ToNormalForm(y).normalized);
}

}  // namespace tsq
