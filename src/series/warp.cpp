// Copyright (c) 2026 The tsq Authors.

#include "series/warp.h"

#include "common/macros.h"

namespace tsq {

RealVec StretchTime(const RealVec& x, size_t m) {
  TSQ_CHECK_MSG(m >= 1, "stretch factor must be >= 1");
  RealVec out;
  out.reserve(x.size() * m);
  for (double v : x) {
    for (size_t r = 0; r < m; ++r) out.push_back(v);
  }
  return out;
}

RealVec CompressTime(const RealVec& x, size_t m) {
  TSQ_CHECK_MSG(m >= 1, "compress factor must be >= 1");
  TSQ_CHECK_MSG(x.size() % m == 0, "length %zu not divisible by %zu", x.size(),
                m);
  RealVec out;
  out.reserve(x.size() / m);
  for (size_t i = 0; i < x.size(); i += m) out.push_back(x[i]);
  return out;
}

TimeSeries StretchTime(const TimeSeries& x, size_t m) {
  return TimeSeries(StretchTime(x.values(), m), x.name());
}

}  // namespace tsq
