// Copyright (c) 2026 The tsq Authors.
//
// The TimeSeries value type: an identified finite sequence of real samples
// ("a sequence of real numbers, each number representing a value at a time
// point", paper Sec. 1), plus its basic statistics.

#ifndef TSQ_SERIES_TIME_SERIES_H_
#define TSQ_SERIES_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dft/complex_vec.h"

namespace tsq {

/// Row identifier of a series inside a Relation / Database.
using SeriesId = uint64_t;

/// Sentinel for "no id assigned yet".
inline constexpr SeriesId kInvalidSeriesId = UINT64_MAX;

/// A named, immutable-by-convention sequence of real samples.
///
/// TimeSeries is a plain value type: cheap to move, explicit to copy via the
/// copy constructor. Statistics (mean, population standard deviation) are
/// computed on demand; they are the two extra dimensions the paper stores in
/// the index alongside the DFT features (Sec. 5).
class TimeSeries {
 public:
  /// Constructs an empty unnamed series.
  TimeSeries() = default;

  /// Constructs a series from samples, with an optional display name (e.g.
  /// a ticker symbol).
  explicit TimeSeries(RealVec values, std::string name = "")
      : values_(std::move(values)), name_(std::move(name)) {}

  /// Number of samples.
  size_t length() const { return values_.size(); }

  /// True iff the series has no samples.
  bool empty() const { return values_.empty(); }

  /// Sample access (bounds-checked in debug builds).
  double operator[](size_t i) const {
    TSQ_DCHECK(i < values_.size());
    return values_[i];
  }

  /// The underlying sample vector.
  const RealVec& values() const { return values_; }

  /// Display name; empty when unnamed.
  const std::string& name() const { return name_; }

  /// Replaces the display name.
  void set_name(std::string name) { name_ = std::move(name); }

  /// Arithmetic mean of the samples; 0.0 for an empty series.
  double Mean() const;

  /// Population standard deviation (divide by n, matching the paper's
  /// normal-form definition); 0.0 for an empty series.
  double StdDev() const;

  /// Signal energy, sum of squared samples (paper Eq. 3).
  double Energy() const;

  /// Minimum / maximum sample. Require a non-empty series.
  double Min() const;
  double Max() const;

  bool operator==(const TimeSeries& other) const {
    return values_ == other.values_;
  }

 private:
  RealVec values_;
  std::string name_;
};

}  // namespace tsq

#endif  // TSQ_SERIES_TIME_SERIES_H_
