// Copyright (c) 2026 The tsq Authors.
//
// Time warping in the time domain (paper Example 1.2 and Appendix A): the
// time dimension of a series is stretched by an integer factor m, replacing
// every sample v by m copies of itself. The frequency-domain counterpart
// (constructing the warped spectrum directly from the original one with a
// linear transformation) lives in transform/builtin.h.

#ifndef TSQ_SERIES_WARP_H_
#define TSQ_SERIES_WARP_H_

#include "dft/complex_vec.h"
#include "series/time_series.h"

namespace tsq {

/// Stretches the time axis by factor m >= 1: output length is m * n, with
/// out[m*i .. m*(i+1)) = x[i] (Appendix A, Eq. 16).
RealVec StretchTime(const RealVec& x, size_t m);

/// Inverse of StretchTime for exactly-warped inputs: keeps every m-th
/// sample. Requires x.size() % m == 0.
RealVec CompressTime(const RealVec& x, size_t m);

/// Convenience overload preserving the series name.
TimeSeries StretchTime(const TimeSeries& x, size_t m);

}  // namespace tsq

#endif  // TSQ_SERIES_WARP_H_
