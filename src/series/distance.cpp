// Copyright (c) 2026 The tsq Authors.

#include "series/distance.h"

#include <cmath>

#include "common/macros.h"
#include "simd/simd.h"

namespace tsq {

double SquaredEuclideanDistance(const RealVec& x, const RealVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "Euclidean distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  return simd::SumSquaredDiff(x.data(), y.data(), x.size());
}

double EuclideanDistance(const RealVec& x, const RealVec& y) {
  return std::sqrt(SquaredEuclideanDistance(x, y));
}

double EuclideanDistance(const TimeSeries& x, const TimeSeries& y) {
  return EuclideanDistance(x.values(), y.values());
}

double CityBlockDistance(const RealVec& x, const RealVec& y) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "city-block distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) acc += std::abs(x[i] - y[i]);
  return acc;
}

double CityBlockDistance(const TimeSeries& x, const TimeSeries& y) {
  return CityBlockDistance(x.values(), y.values());
}

std::optional<double> EarlyAbandonEuclidean(const RealVec& x, const RealVec& y,
                                            double threshold) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "Euclidean distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  TSQ_DCHECK(threshold >= 0.0);
  const double limit = threshold * threshold;
  const double acc =
      simd::SumSquaredDiffEarlyAbandon(x.data(), y.data(), x.size(), limit);
  if (acc > limit) return std::nullopt;
  return std::sqrt(acc);
}

std::optional<double> EarlyAbandonEuclidean(const ComplexVec& x,
                                            const ComplexVec& y,
                                            double threshold) {
  TSQ_CHECK_MSG(x.size() == y.size(),
                "Euclidean distance requires equal lengths (%zu vs %zu)",
                x.size(), y.size());
  TSQ_DCHECK(threshold >= 0.0);
  const double limit = threshold * threshold;
  const double acc = simd::SumSquaredDiffEarlyAbandon(
      cvec::AsDoubles(x), cvec::AsDoubles(y), 2 * x.size(), limit);
  if (acc > limit) return std::nullopt;
  return std::sqrt(acc);
}

}  // namespace tsq
