// Copyright (c) 2026 The tsq Authors.
//
// Moving averages in the time domain (paper Sec. 1, Example 1.1 and
// Sec. 3.2). Two variants:
//
//  * the classic *truncating* l-day moving average of length n - l + 1
//    ("step the window through the beginning of the sequence"), and
//  * the paper's *circular* variant of length n ("we circulate the window to
//    the end of the sequence when it reaches the beginning"), which equals
//    the circular convolution with the kernel (1/l, ..., 1/l, 0, ..., 0) and
//    is therefore expressible as a linear transformation on the DFT.
//
// Weighted windows (Eq. 11 discussion: "the weights w1..wm are not
// necessarily equal") are supported by the *Weighted variants.

#ifndef TSQ_SERIES_MOVING_AVERAGE_H_
#define TSQ_SERIES_MOVING_AVERAGE_H_

#include "dft/complex_vec.h"
#include "series/time_series.h"

namespace tsq {

/// Circular (wrap-around) l-day trailing moving average, length n.
/// out[i] = (x[i] + x[i-1] + ... + x[i-l+1]) / l with indices modulo n.
/// Requires 1 <= window <= n.
RealVec CircularMovingAverage(const RealVec& x, size_t window);

/// Truncating l-day moving average, length n - l + 1.
/// out[i] = mean(x[i..i+l)). Requires 1 <= window <= n.
RealVec TruncatingMovingAverage(const RealVec& x, size_t window);

/// Circular moving average with explicit weights; `weights.size()` is the
/// window length. out[i] = sum_d weights[d] * x[(i - d) mod n]. The paper's
/// trend-prediction windows put higher weight on recent days.
/// Requires 1 <= weights.size() <= n.
RealVec CircularWeightedMovingAverage(const RealVec& x,
                                      const RealVec& weights);

/// Applies the circular moving average `times` times in succession
/// (Example 2.3 takes up to the 10th successive 20-day moving average).
RealVec SuccessiveCircularMovingAverage(const RealVec& x, size_t window,
                                        size_t times);

/// Exponentially decaying window weights w_d = alpha * (1 - alpha)^d for
/// d = 0..window-1, normalized to sum to 1 — the EWMA smoother of
/// technical stock analysis, trailing-weighted exactly as Sec. 3.2
/// suggests for trend prediction. Requires 0 < alpha <= 1, window >= 1.
RealVec ExponentialWeights(double alpha, size_t window);

/// The convolution kernel of the uniform circular moving average:
/// (1/l, ..., 1/l, 0, ..., 0) of total length n (the paper's ~m3 for
/// l = 3, n = 15). Requires 1 <= window <= n.
RealVec MovingAverageKernel(size_t n, size_t window);

/// Convenience overloads preserving the series name.
TimeSeries CircularMovingAverage(const TimeSeries& x, size_t window);
TimeSeries TruncatingMovingAverage(const TimeSeries& x, size_t window);

}  // namespace tsq

#endif  // TSQ_SERIES_MOVING_AVERAGE_H_
