// Copyright (c) 2026 The tsq Authors.

#include "rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace tsq {
namespace rtree {

namespace {

// Meta page layout: u64 magic | u64 dims | u64 root | u64 size | u64 height.
constexpr uint64_t kMetaMagic = 0x3154524151535400ull;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Exact per-thread mirror of the shared TraversalStats (see the header's
// v2 contract). Bumped in lockstep with stats_ at every counting site.
thread_local ThreadTraversalCounters tls_traversal;

double CenterDistSquared(const spatial::Rect& a, const spatial::Rect& b) {
  return spatial::PointDistSquared(a.Center(), b.Center());
}

}  // namespace

const ThreadTraversalCounters& ThisThreadTraversalCounters() {
  return tls_traversal;
}

RStarTree::RStarTree(BufferPool* pool, size_t dims,
                     const RTreeOptions& options)
    : pool_(pool), dims_(dims), options_(options) {
  TSQ_CHECK(pool != nullptr);
  const size_t page_capacity = NodeCapacity(pool->file()->page_size(), dims);
  max_entries_ = page_capacity;
  if (options_.max_entries_override != 0) {
    TSQ_CHECK_MSG(options_.max_entries_override <= page_capacity,
                  "max_entries_override %zu exceeds page capacity %zu",
                  options_.max_entries_override, page_capacity);
    max_entries_ = options_.max_entries_override;
  }
  min_fill_ = std::max<size_t>(
      1, max_entries_ * options_.min_fill_percent / 100);
  // A sane tree needs room for a split into two min-filled halves.
  TSQ_CHECK_MSG(max_entries_ >= 4,
                "node capacity %zu too small; raise the page size",
                max_entries_);
  TSQ_CHECK_MSG(2 * min_fill_ <= max_entries_ + 1,
                "min_fill_percent %u leaves no legal split",
                options_.min_fill_percent);
}

RStarTree::~RStarTree() {
  // Persist meta so reopening sees the final tree. Errors are swallowed:
  // destructors have no error channel, and SaveMeta is available to callers
  // who need the status.
  SaveMeta().ok();
}

Result<std::unique_ptr<RStarTree>> RStarTree::Create(
    BufferPool* pool, size_t dims, const RTreeOptions& options) {
  if (dims < 1) {
    return Status::InvalidArgument("tree dimensionality must be >= 1");
  }
  if (options.reinsert_fraction < 0.0 || options.reinsert_fraction > 0.45) {
    return Status::InvalidArgument("reinsert_fraction out of [0, 0.45]");
  }
  if (NodeCapacity(pool->file()->page_size(), dims) < 4) {
    return Status::InvalidArgument(
        "page size too small for dimensionality " + std::to_string(dims));
  }
  auto tree =
      std::unique_ptr<RStarTree>(new RStarTree(pool, dims, options));

  // Allocate meta page and an empty leaf root.
  TSQ_ASSIGN_OR_RETURN(PageHandle meta, pool->New());
  tree->meta_page_ = meta.id();
  meta.Release();

  TSQ_ASSIGN_OR_RETURN(tree->root_, tree->AllocateNodePage());
  Node root;
  root.id = tree->root_;
  root.level = 0;
  TSQ_RETURN_IF_ERROR(tree->StoreNode(root));
  tree->height_ = 1;
  TSQ_RETURN_IF_ERROR(tree->SaveMeta());
  return tree;
}

Result<std::unique_ptr<RStarTree>> RStarTree::Open(
    BufferPool* pool, PageId meta_page, const RTreeOptions& options) {
  TSQ_ASSIGN_OR_RETURN(PageHandle meta, pool->Fetch(meta_page));
  const Page* p = meta.page();
  if (p->ReadU64(0) != kMetaMagic) {
    return Status::Corruption("bad R-tree meta magic");
  }
  const uint64_t dims = p->ReadU64(8);
  if (dims < 1 || dims > 1024) {
    return Status::Corruption("implausible R-tree dimensionality " +
                              std::to_string(dims));
  }
  auto tree = std::unique_ptr<RStarTree>(
      new RStarTree(pool, static_cast<size_t>(dims), options));
  tree->meta_page_ = meta_page;
  tree->root_ = p->ReadU64(16);
  tree->size_ = p->ReadU64(24);
  tree->height_ = static_cast<uint32_t>(p->ReadU64(32));
  return tree;
}

Status RStarTree::SaveMeta() {
  TSQ_ASSIGN_OR_RETURN(PageHandle meta, pool_->Fetch(meta_page_));
  Page* p = meta.page();
  p->WriteU64(0, kMetaMagic);
  p->WriteU64(8, dims_);
  p->WriteU64(16, root_);
  p->WriteU64(24, size_);
  p->WriteU64(32, height_);
  meta.MarkDirty();
  return Status::OK();
}

Result<Node> RStarTree::LoadNode(PageId id) const {
  // The pin lives only for the deserialize below. Under the v3 pool a
  // cached fetch is a single pin-CAS + version validate (no mutex, no LRU
  // mutation) and a miss does its pread without the shard lock, so
  // concurrent traversals touching the same shard never stall here on
  // each other's node loads.
  TSQ_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(id));
  Node node;
  TSQ_RETURN_IF_ERROR(DeserializeNode(*handle.page(), dims_, &node));
  node.id = id;
  ++stats_.nodes_visited;
  ++tls_traversal.nodes_visited;
  return node;
}

Status RStarTree::StoreNode(const Node& node) {
  TSQ_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node.id));
  TSQ_RETURN_IF_ERROR(SerializeNode(node, dims_, handle.page()));
  handle.MarkDirty();
  return Status::OK();
}

Result<PageId> RStarTree::AllocateNodePage() {
  TSQ_ASSIGN_OR_RETURN(PageHandle handle, pool_->New());
  const PageId id = handle.id();
  return id;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

Status RStarTree::Insert(const spatial::Rect& rect, uint64_t id) {
  if (rect.dims() != dims_) {
    return Status::InvalidArgument("rect dims " + std::to_string(rect.dims()) +
                                   " != tree dims " + std::to_string(dims_));
  }
  if (rect.IsEmpty()) {
    return Status::InvalidArgument("cannot index an empty rectangle");
  }
  reinsert_done_levels_.clear();
  pending_reinserts_.clear();

  Entry entry;
  entry.rect = rect;
  entry.id = id;
  TSQ_RETURN_IF_ERROR(InsertEntryAtLevel(std::move(entry), 0));
  while (!pending_reinserts_.empty()) {
    auto [e, level] = std::move(pending_reinserts_.front());
    pending_reinserts_.pop_front();
    TSQ_RETURN_IF_ERROR(InsertEntryAtLevel(std::move(e), level));
  }
  ++size_;
  return Status::OK();
}

Status RStarTree::InsertPoint(const spatial::Point& point, uint64_t id) {
  return Insert(spatial::Rect::FromPoint(point), id);
}

Status RStarTree::InsertEntryAtLevel(Entry entry, uint32_t target_level) {
  TSQ_ASSIGN_OR_RETURN(InsertOutcome outcome,
                       InsertRecurse(root_, entry, target_level));
  if (outcome.split.has_value()) {
    // Root split: grow the tree by one level.
    TSQ_ASSIGN_OR_RETURN(const PageId new_root_id, AllocateNodePage());
    TSQ_ASSIGN_OR_RETURN(Node old_root, LoadNode(root_));
    Node new_root;
    new_root.id = new_root_id;
    new_root.level = old_root.level + 1;
    Entry left;
    left.rect = outcome.mbr;
    left.id = root_;
    new_root.entries.push_back(std::move(left));
    new_root.entries.push_back(std::move(*outcome.split));
    TSQ_RETURN_IF_ERROR(StoreNode(new_root));
    root_ = new_root_id;
    ++height_;
  }
  return Status::OK();
}

size_t RStarTree::ChooseSubtree(const Node& node,
                                const spatial::Rect& rect) const {
  TSQ_DCHECK(!node.entries.empty());
  // [BKSS90]: when children are leaves minimize overlap enlargement; higher
  // up minimize area enlargement. Ties: smaller enlargement, then smaller
  // area.
  const bool children_are_leaves = (node.level == 1);
  size_t best = 0;
  double best_primary = kInf;
  double best_enlargement = kInf;
  double best_area = kInf;

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const spatial::Rect& r = node.entries[i].rect;
    const spatial::Rect grown = r.UnionWith(rect);
    const double enlargement = grown.Area() - r.Area();
    const double area = r.Area();

    double primary = enlargement;
    if (children_are_leaves) {
      // Overlap enlargement of candidate i w.r.t. its siblings.
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += r.IntersectionArea(node.entries[j].rect);
        overlap_after += grown.IntersectionArea(node.entries[j].rect);
      }
      primary = overlap_after - overlap_before;
    }

    if (primary < best_primary ||
        (primary == best_primary && enlargement < best_enlargement) ||
        (primary == best_primary && enlargement == best_enlargement &&
         area < best_area)) {
      best_primary = primary;
      best_enlargement = enlargement;
      best_area = area;
      best = i;
    }
  }
  return best;
}

Result<Entry> RStarTree::SplitNode(Node* node) {
  SplitResult split =
      SplitEntries(options_.split, std::move(node->entries), min_fill_);
  node->entries = std::move(split.left);
  TSQ_RETURN_IF_ERROR(StoreNode(*node));

  Node sibling;
  TSQ_ASSIGN_OR_RETURN(sibling.id, AllocateNodePage());
  sibling.level = node->level;
  sibling.entries = std::move(split.right);
  TSQ_RETURN_IF_ERROR(StoreNode(sibling));

  Entry out;
  out.rect = sibling.BoundingRect();
  out.id = sibling.id;
  return out;
}

Status RStarTree::ForcedReinsert(Node* node) {
  // Evict the p entries whose centers are farthest from the node's center
  // ([BKSS90] reinsert, "far reinsert" variant).
  const size_t p = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(options_.reinsert_fraction *
                       static_cast<double>(node->entries.size()))));
  const spatial::Rect mbr = node->BoundingRect();
  std::vector<std::pair<double, size_t>> by_dist;
  by_dist.reserve(node->entries.size());
  for (size_t i = 0; i < node->entries.size(); ++i) {
    by_dist.emplace_back(CenterDistSquared(node->entries[i].rect, mbr), i);
  }
  std::sort(by_dist.begin(), by_dist.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<bool> evicted(node->entries.size(), false);
  for (size_t i = 0; i < p; ++i) evicted[by_dist[i].second] = true;

  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - p);
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (evicted[i]) {
      pending_reinserts_.emplace_back(std::move(node->entries[i]),
                                      node->level);
    } else {
      kept.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(kept);
  return StoreNode(*node);
}

Result<RStarTree::InsertOutcome> RStarTree::InsertRecurse(
    PageId node_id, const Entry& entry, uint32_t target_level) {
  TSQ_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));

  if (node.level == target_level) {
    node.entries.push_back(entry);
    InsertOutcome outcome;
    if (node.entries.size() > max_entries_) {
      const bool can_reinsert = options_.forced_reinsert &&
                                node_id != root_ &&
                                !reinsert_done_levels_.contains(node.level);
      if (can_reinsert) {
        reinsert_done_levels_.insert(node.level);
        TSQ_RETURN_IF_ERROR(ForcedReinsert(&node));
        outcome.mbr = node.BoundingRect();
        return outcome;
      }
      TSQ_ASSIGN_OR_RETURN(Entry sibling, SplitNode(&node));
      outcome.mbr = node.BoundingRect();
      outcome.split = std::move(sibling);
      return outcome;
    }
    TSQ_RETURN_IF_ERROR(StoreNode(node));
    outcome.mbr = node.BoundingRect();
    return outcome;
  }

  TSQ_CHECK_MSG(node.level > target_level,
                "insert level %u below node level %u", target_level,
                node.level);
  const size_t child_idx = ChooseSubtree(node, entry.rect);
  const PageId child_id = node.entries[child_idx].id;
  TSQ_ASSIGN_OR_RETURN(InsertOutcome child_outcome,
                       InsertRecurse(child_id, entry, target_level));

  node.entries[child_idx].rect = child_outcome.mbr;
  InsertOutcome outcome;
  if (child_outcome.split.has_value()) {
    node.entries.push_back(std::move(*child_outcome.split));
    if (node.entries.size() > max_entries_) {
      const bool can_reinsert = options_.forced_reinsert &&
                                node_id != root_ &&
                                !reinsert_done_levels_.contains(node.level);
      if (can_reinsert) {
        reinsert_done_levels_.insert(node.level);
        TSQ_RETURN_IF_ERROR(ForcedReinsert(&node));
        outcome.mbr = node.BoundingRect();
        return outcome;
      }
      TSQ_ASSIGN_OR_RETURN(Entry sibling, SplitNode(&node));
      outcome.mbr = node.BoundingRect();
      outcome.split = std::move(sibling);
      return outcome;
    }
  }
  TSQ_RETURN_IF_ERROR(StoreNode(node));
  outcome.mbr = node.BoundingRect();
  return outcome;
}

// ---------------------------------------------------------------------------
// Bulk loading (Sort-Tile-Recursive)
// ---------------------------------------------------------------------------

void RStarTree::TilePartition(std::vector<Entry>&& entries, size_t dim,
                              size_t group_size,
                              std::vector<std::vector<Entry>>* groups) const {
  const size_t n = entries.size();
  auto sort_by_center = [dim](std::vector<Entry>* items) {
    std::sort(items->begin(), items->end(),
              [dim](const Entry& a, const Entry& b) {
                const double ca = 0.5 * (a.rect.lo(dim) + a.rect.hi(dim));
                const double cb = 0.5 * (b.rect.lo(dim) + b.rect.hi(dim));
                if (ca != cb) return ca < cb;
                return a.id < b.id;  // deterministic
              });
  };

  if (dim + 1 == dims_ || n <= group_size) {
    // Final dimension: sort and chop into groups of `group_size`,
    // rebalancing the last two groups so none falls under min_fill.
    sort_by_center(&entries);
    std::vector<std::vector<Entry>> chunks;
    for (size_t start = 0; start < n; start += group_size) {
      const size_t end = std::min(start + group_size, n);
      chunks.emplace_back(
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(start)),
          std::make_move_iterator(entries.begin() +
                                  static_cast<ptrdiff_t>(end)));
    }
    if (chunks.size() >= 2 && chunks.back().size() < min_fill_) {
      // Steal from the second-to-last chunk to even out the tail.
      std::vector<Entry>& prev = chunks[chunks.size() - 2];
      std::vector<Entry>& last = chunks.back();
      const size_t total = prev.size() + last.size();
      const size_t want_last = total / 2;
      while (last.size() < want_last) {
        last.insert(last.begin(), std::move(prev.back()));
        prev.pop_back();
      }
    }
    for (auto& chunk : chunks) groups->push_back(std::move(chunk));
    return;
  }

  // Slabs along this dimension: S = ceil(P^(1/remaining_dims)) where P is
  // the number of groups still to produce.
  const size_t remaining_dims = dims_ - dim;
  const double p = std::ceil(static_cast<double>(n) /
                             static_cast<double>(group_size));
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::pow(p, 1.0 / static_cast<double>(remaining_dims)))));
  const size_t per_slab = (n + slabs - 1) / slabs;

  sort_by_center(&entries);
  for (size_t start = 0; start < n; start += per_slab) {
    const size_t end = std::min(start + per_slab, n);
    std::vector<Entry> slab(
        std::make_move_iterator(entries.begin() +
                                static_cast<ptrdiff_t>(start)),
        std::make_move_iterator(entries.begin() +
                                static_cast<ptrdiff_t>(end)));
    TilePartition(std::move(slab), dim + 1, group_size, groups);
  }
}

Status RStarTree::BulkLoad(std::vector<Entry> entries) {
  if (size_ != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  for (const Entry& e : entries) {
    if (e.rect.dims() != dims_) {
      return Status::InvalidArgument("entry dims mismatch in BulkLoad");
    }
    if (e.rect.IsEmpty()) {
      return Status::InvalidArgument("cannot bulk-load an empty rectangle");
    }
  }
  if (entries.empty()) return Status::OK();
  const uint64_t total = entries.size();

  // Pack to ~90% fill so post-load inserts do not split immediately.
  const size_t fill = std::max<size_t>(
      min_fill_, std::max<size_t>(1, max_entries_ * 9 / 10));

  // Level 0: tile data entries into leaves.
  uint32_t level = 0;
  std::vector<Entry> current = std::move(entries);
  while (true) {
    if (current.size() <= max_entries_) {
      // Everything fits in the root at this level; reuse the existing root
      // page for it.
      Node root;
      root.id = root_;
      root.level = level;
      root.entries = std::move(current);
      TSQ_RETURN_IF_ERROR(StoreNode(root));
      height_ = level + 1;
      size_ = total;
      return SaveMeta();
    }
    std::vector<std::vector<Entry>> groups;
    TilePartition(std::move(current), 0, fill, &groups);
    std::vector<Entry> parents;
    parents.reserve(groups.size());
    for (auto& group : groups) {
      Node node;
      TSQ_ASSIGN_OR_RETURN(node.id, AllocateNodePage());
      node.level = level;
      node.entries = std::move(group);
      TSQ_RETURN_IF_ERROR(StoreNode(node));
      Entry parent;
      parent.rect = node.BoundingRect();
      parent.id = node.id;
      parents.push_back(std::move(parent));
    }
    current = std::move(parents);
    ++level;
  }
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

Result<bool> RStarTree::Remove(const spatial::Rect& rect, uint64_t id) {
  if (rect.dims() != dims_) {
    return Status::InvalidArgument("rect dims mismatch in Remove");
  }
  reinsert_done_levels_.clear();
  pending_reinserts_.clear();

  TSQ_ASSIGN_OR_RETURN(DeleteOutcome outcome, DeleteRecurse(root_, rect, id));
  if (!outcome.removed) return false;
  --size_;

  // Reinsert orphans collected by condensation, then shrink the root.
  while (!pending_reinserts_.empty()) {
    auto [e, level] = std::move(pending_reinserts_.front());
    pending_reinserts_.pop_front();
    TSQ_RETURN_IF_ERROR(InsertEntryAtLevel(std::move(e), level));
  }
  TSQ_RETURN_IF_ERROR(ShrinkRootIfNeeded());
  return true;
}

Result<RStarTree::DeleteOutcome> RStarTree::DeleteRecurse(
    PageId node_id, const spatial::Rect& rect, uint64_t id) {
  TSQ_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));
  DeleteOutcome outcome;

  if (node.IsLeaf()) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == id && node.entries[i].rect == rect) {
        node.entries.erase(node.entries.begin() + static_cast<ptrdiff_t>(i));
        TSQ_RETURN_IF_ERROR(StoreNode(node));
        outcome.removed = true;
        outcome.underflow =
            node_id != root_ && node.entries.size() < min_fill_;
        if (!node.entries.empty()) outcome.mbr = node.BoundingRect();
        return outcome;
      }
    }
    return outcome;  // not found here
  }

  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].rect.ContainsRect(rect)) continue;
    TSQ_ASSIGN_OR_RETURN(DeleteOutcome child_outcome,
                         DeleteRecurse(node.entries[i].id, rect, id));
    if (!child_outcome.removed) continue;

    if (child_outcome.underflow) {
      // Dissolve the child: orphan its entries for reinsertion at their
      // level and reclaim the page (CondenseTree of [Gut84]).
      const PageId child_id = node.entries[i].id;
      TSQ_ASSIGN_OR_RETURN(Node child, LoadNode(child_id));
      for (Entry& e : child.entries) {
        pending_reinserts_.emplace_back(std::move(e), child.level);
      }
      TSQ_RETURN_IF_ERROR(pool_->Delete(child_id));
      node.entries.erase(node.entries.begin() + static_cast<ptrdiff_t>(i));
    } else {
      node.entries[i].rect = child_outcome.mbr;
    }
    TSQ_RETURN_IF_ERROR(StoreNode(node));
    outcome.removed = true;
    outcome.underflow = node_id != root_ && node.entries.size() < min_fill_;
    if (!node.entries.empty()) outcome.mbr = node.BoundingRect();
    return outcome;
  }
  return outcome;  // not found in any qualifying subtree
}

Status RStarTree::ShrinkRootIfNeeded() {
  while (true) {
    TSQ_ASSIGN_OR_RETURN(Node root, LoadNode(root_));
    if (root.IsLeaf() || root.entries.size() != 1) return Status::OK();
    const PageId old_root = root_;
    root_ = root.entries[0].id;
    --height_;
    TSQ_RETURN_IF_ERROR(pool_->Delete(old_root));
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

Status RStarTree::Search(const spatial::Rect& query,
                         const SearchCallback& emit) const {
  if (query.dims() != dims_) {
    return Status::InvalidArgument("query dims mismatch");
  }
  bool keep_going = true;
  return SearchRecurse(root_, /*map=*/nullptr, query, emit, &keep_going);
}

Status RStarTree::SearchTransformed(const spatial::AffineMap& map,
                                    const spatial::Rect& query,
                                    const SearchCallback& emit) const {
  if (query.dims() != dims_) {
    return Status::InvalidArgument("query dims mismatch");
  }
  if (map.dims() != dims_) {
    return Status::InvalidArgument("transform dims mismatch");
  }
  bool keep_going = true;
  return SearchRecurse(root_, &map, query, emit, &keep_going);
}

Status RStarTree::SearchRecurse(PageId node_id, const spatial::AffineMap* map,
                                const spatial::Rect& query,
                                const SearchCallback& emit,
                                bool* keep_going) const {
  TSQ_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));

  for (const Entry& e : node.entries) {
    if (!*keep_going) return Status::OK();
    spatial::Rect rect = e.rect;
    if (map != nullptr) {
      rect = map->Apply(rect);
      ++stats_.rect_transforms;
      ++tls_traversal.rect_transforms;
    }
    if (node.IsLeaf()) {
      ++stats_.leaf_entries_tested;
      ++tls_traversal.leaf_entries_tested;
      if (rect.Intersects(query)) {
        if (!emit(e.id, rect)) {
          *keep_going = false;
          return Status::OK();
        }
      }
    } else if (rect.Intersects(query)) {
      TSQ_RETURN_IF_ERROR(
          SearchRecurse(e.id, map, query, emit, keep_going));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Spatial join (synchronized traversal)
// ---------------------------------------------------------------------------

Status RStarTree::JoinWith(const RStarTree& other,
                           const spatial::AffineMap* map,
                           const spatial::AffineMap* other_map,
                           const JoinPredicate& may_join,
                           const JoinCallback& emit) const {
  if (dims() != other.dims()) {
    return Status::InvalidArgument("join between trees of different dims");
  }
  if (size_ == 0 || other.size() == 0) return Status::OK();
  bool keep_going = true;
  return JoinRecurse(root_, other, other.root_, map, other_map, may_join,
                     emit, &keep_going);
}

Status RStarTree::JoinRecurse(PageId a_id, const RStarTree& other,
                              PageId b_id, const spatial::AffineMap* map_a,
                              const spatial::AffineMap* map_b,
                              const JoinPredicate& may_join,
                              const JoinCallback& emit,
                              bool* keep_going) const {
  TSQ_ASSIGN_OR_RETURN(Node na, LoadNode(a_id));
  TSQ_ASSIGN_OR_RETURN(Node nb, other.LoadNode(b_id));

  auto transformed = [this](const spatial::AffineMap* map,
                            const spatial::Rect& rect) {
    if (map == nullptr) return rect;
    ++stats_.rect_transforms;
    ++tls_traversal.rect_transforms;
    return map->Apply(rect);
  };

  if (na.IsLeaf() && nb.IsLeaf()) {
    for (const Entry& ea : na.entries) {
      const spatial::Rect ta = transformed(map_a, ea.rect);
      for (const Entry& eb : nb.entries) {
        if (!*keep_going) return Status::OK();
        ++stats_.leaf_entries_tested;
        ++tls_traversal.leaf_entries_tested;
        if (may_join(ta, transformed(map_b, eb.rect))) {
          if (!emit(ea.id, eb.id)) {
            *keep_going = false;
            return Status::OK();
          }
        }
      }
    }
    return Status::OK();
  }

  if (!na.IsLeaf() && (nb.IsLeaf() || na.level > nb.level)) {
    // Descend only this side until the levels meet.
    const spatial::Rect tb = transformed(map_b, nb.BoundingRect());
    for (const Entry& ea : na.entries) {
      if (!*keep_going) return Status::OK();
      if (may_join(transformed(map_a, ea.rect), tb)) {
        TSQ_RETURN_IF_ERROR(JoinRecurse(ea.id, other, b_id, map_a, map_b,
                                        may_join, emit, keep_going));
      }
    }
    return Status::OK();
  }
  if (!nb.IsLeaf() && (na.IsLeaf() || nb.level > na.level)) {
    const spatial::Rect ta = transformed(map_a, na.BoundingRect());
    for (const Entry& eb : nb.entries) {
      if (!*keep_going) return Status::OK();
      if (may_join(ta, transformed(map_b, eb.rect))) {
        TSQ_RETURN_IF_ERROR(JoinRecurse(a_id, other, eb.id, map_a, map_b,
                                        may_join, emit, keep_going));
      }
    }
    return Status::OK();
  }

  // Same internal level on both sides: descend qualifying entry pairs.
  for (const Entry& ea : na.entries) {
    const spatial::Rect ta = transformed(map_a, ea.rect);
    for (const Entry& eb : nb.entries) {
      if (!*keep_going) return Status::OK();
      if (may_join(ta, transformed(map_b, eb.rect))) {
        TSQ_RETURN_IF_ERROR(JoinRecurse(ea.id, other, eb.id, map_a, map_b,
                                        may_join, emit, keep_going));
      }
    }
  }
  return Status::OK();
}

Result<std::vector<RStarTree::JoinSeed>> RStarTree::JoinSeeds(
    const RStarTree& other, const spatial::AffineMap* map,
    const spatial::AffineMap* other_map,
    const JoinPredicate& may_join) const {
  if (dims() != other.dims()) {
    return Status::InvalidArgument("join between trees of different dims");
  }
  std::vector<JoinSeed> seeds;
  if (size_ == 0 || other.size() == 0) return seeds;

  TSQ_ASSIGN_OR_RETURN(Node na, LoadNode(root_));
  TSQ_ASSIGN_OR_RETURN(Node nb, other.LoadNode(other.root_));
  if (na.IsLeaf() || nb.IsLeaf() || na.level != nb.level) {
    // Nothing to split: run the whole descent as one task.
    seeds.push_back(JoinSeed{root_, other.root_});
    return seeds;
  }

  // Mirror the sequential JoinRecurse same-level branch exactly: the
  // qualifying (ea, eb) child pairs, in (ea, eb) iteration order, are the
  // recursion roots the sequential descent would visit — so JoinFrom over
  // these seeds in order reproduces the JoinWith candidate sequence.
  auto transformed = [this](const spatial::AffineMap* m,
                            const spatial::Rect& rect) {
    if (m == nullptr) return rect;
    ++stats_.rect_transforms;
    ++tls_traversal.rect_transforms;
    return m->Apply(rect);
  };
  for (const Entry& ea : na.entries) {
    const spatial::Rect ta = transformed(map, ea.rect);
    for (const Entry& eb : nb.entries) {
      if (may_join(ta, transformed(other_map, eb.rect))) {
        seeds.push_back(JoinSeed{ea.id, eb.id});
      }
    }
  }
  return seeds;
}

Status RStarTree::JoinFrom(const JoinSeed& seed, const RStarTree& other,
                           const spatial::AffineMap* map,
                           const spatial::AffineMap* other_map,
                           const JoinPredicate& may_join,
                           const JoinCallback& emit) const {
  bool keep_going = true;
  return JoinRecurse(seed.a, other, seed.b, map, other_map, may_join, emit,
                     &keep_going);
}

// ---------------------------------------------------------------------------
// Nearest neighbors
// ---------------------------------------------------------------------------

Status RStarTree::NearestNeighborsStream(
    const NnMetric& metric, const spatial::AffineMap* map,
    const std::function<bool(uint64_t, double)>& emit) const {
  if (size_ == 0) return Status::OK();

  // Best-first search: a min-heap of nodes and leaf entries keyed by
  // MINDIST under `metric`. When an entry surfaces, its lower bound is
  // exact for the indexed point (degenerate rect) and no unexplored item
  // can beat it, so emission order is correct.
  struct Item {
    double dist_sq;
    bool is_entry;
    uint64_t id;  // data id or child page id
  };
  auto cmp = [](const Item& a, const Item& b) { return a.dist_sq > b.dist_sq; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  heap.push(Item{0.0, false, root_});

  // Per-node scratch, reused across the whole descent: transformed rect
  // copies (only when a map is active), the pointer batch handed to the
  // metric, and the bound it fills in.
  std::vector<spatial::Rect> transformed;
  std::vector<const spatial::Rect*> batch;
  std::vector<double> bounds;

  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      if (!emit(item.id, item.dist_sq)) return Status::OK();
      continue;
    }
    TSQ_ASSIGN_OR_RETURN(Node node, LoadNode(item.id));
    const size_t count = node.entries.size();
    batch.resize(count);
    bounds.resize(count);
    if (map != nullptr) {
      transformed.clear();
      transformed.reserve(count);
      for (const Entry& e : node.entries) {
        transformed.push_back(map->Apply(e.rect));
      }
      stats_.rect_transforms += count;
      tls_traversal.rect_transforms += count;
      for (size_t i = 0; i < count; ++i) batch[i] = &transformed[i];
    } else {
      for (size_t i = 0; i < count; ++i) batch[i] = &node.entries[i].rect;
    }
    metric.MinDistSquaredBatch(batch.data(), count, bounds.data());
    if (node.IsLeaf()) {
      stats_.leaf_entries_tested += count;
      tls_traversal.leaf_entries_tested += count;
    }
    for (size_t i = 0; i < count; ++i) {
      heap.push(Item{bounds[i], node.IsLeaf(), node.entries[i].id});
    }
  }
  return Status::OK();
}

Status RStarTree::NearestNeighbors(const NnMetric& metric, size_t k,
                                   const spatial::AffineMap* map,
                                   std::vector<NnResult>* out) const {
  TSQ_CHECK(out != nullptr);
  out->clear();
  if (k == 0) return Status::OK();
  return NearestNeighborsStream(metric, map,
                                [out, k](uint64_t id, double dist_sq) {
                                  out->push_back(
                                      NnResult{id, std::sqrt(dist_sq)});
                                  return out->size() < k;
                                });
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

Result<CheckReport> RStarTree::CheckInvariants() const {
  CheckReport report;
  TSQ_RETURN_IF_ERROR(CheckRecurse(root_, height_ - 1, true, &report));
  if (report.ok && report.leaf_entries != size_) {
    report.ok = false;
    report.message = "size() = " + std::to_string(size_) +
                     " but tree holds " + std::to_string(report.leaf_entries) +
                     " leaf entries";
  }
  return report;
}

Status RStarTree::CheckRecurse(PageId node_id, uint32_t expected_level,
                               bool is_root, CheckReport* report) const {
  if (!report->ok) return Status::OK();
  TSQ_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));

  if (node.level != expected_level) {
    report->ok = false;
    report->message = "node " + std::to_string(node_id) + " at level " +
                      std::to_string(node.level) + ", expected " +
                      std::to_string(expected_level);
    return Status::OK();
  }
  if (node.entries.size() > max_entries_) {
    report->ok = false;
    report->message = "node " + std::to_string(node_id) + " overfull";
    return Status::OK();
  }
  if (!is_root && node.entries.size() < min_fill_) {
    report->ok = false;
    report->message = "node " + std::to_string(node_id) + " underfull: " +
                      std::to_string(node.entries.size()) + " < " +
                      std::to_string(min_fill_);
    return Status::OK();
  }
  if (is_root && !node.IsLeaf() && node.entries.size() < 2) {
    report->ok = false;
    report->message = "internal root with fewer than 2 children";
    return Status::OK();
  }

  if (node.IsLeaf()) {
    report->leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    TSQ_ASSIGN_OR_RETURN(Node child, LoadNode(e.id));
    if (child.entries.empty()) {
      report->ok = false;
      report->message = "empty child node " + std::to_string(e.id);
      return Status::OK();
    }
    if (!(child.BoundingRect() == e.rect)) {
      report->ok = false;
      report->message = "stale parent MBR for child " + std::to_string(e.id);
      return Status::OK();
    }
    TSQ_RETURN_IF_ERROR(CheckRecurse(e.id, expected_level - 1, false, report));
    if (!report->ok) return Status::OK();
  }
  return Status::OK();
}

}  // namespace rtree
}  // namespace tsq
