// Copyright (c) 2026 The tsq Authors.
//
// R-tree entries: an MBR plus a payload id. In internal nodes the id is the
// child's PageId; in leaves it is the application's data id (tsq stores the
// SeriesId of the indexed sequence).

#ifndef TSQ_RTREE_ENTRY_H_
#define TSQ_RTREE_ENTRY_H_

#include <cstdint>

#include "spatial/rect.h"

namespace tsq {
namespace rtree {

/// One slot of an R-tree node.
struct Entry {
  spatial::Rect rect;
  uint64_t id = 0;
};

}  // namespace rtree
}  // namespace tsq

#endif  // TSQ_RTREE_ENTRY_H_
