// Copyright (c) 2026 The tsq Authors.
//
// In-memory R-tree nodes and their on-page serialization.
//
// Page layout (little-endian):
//   u32 magic 'TSQN' | u32 level | u32 count | u32 reserved
//   count * entry, entry = dims * (f64 lo) | dims * (f64 hi) | u64 id
//
// level 0 is a leaf. Node capacity is derived from the page size and the
// tree dimensionality; the same formula determines the paper's branching
// factors for its 6-D index over 4 KiB pages.

#ifndef TSQ_RTREE_NODE_H_
#define TSQ_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rtree/entry.h"
#include "spatial/rect.h"
#include "storage/page.h"

namespace tsq {
namespace rtree {

/// Deserialized R-tree node.
struct Node {
  PageId id = kInvalidPageId;
  uint32_t level = 0;  ///< 0 = leaf; root has the highest level
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  /// Union of all entry rectangles. Requires a non-empty node.
  spatial::Rect BoundingRect() const;
};

/// Maximum entries per node for a given page size and dimensionality.
size_t NodeCapacity(size_t page_size, size_t dims);

/// Serializes `node` into `page`. Fails with InvalidArgument when the node
/// exceeds capacity or an entry has the wrong dimensionality.
Status SerializeNode(const Node& node, size_t dims, Page* page);

/// Parses `page` into `node` (id is left untouched: the caller knows the
/// page id). Fails with Corruption on malformed bytes.
Status DeserializeNode(const Page& page, size_t dims, Node* node);

}  // namespace rtree
}  // namespace tsq

#endif  // TSQ_RTREE_NODE_H_
