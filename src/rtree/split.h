// Copyright (c) 2026 The tsq Authors.
//
// Node-split algorithms. The paper builds on "Norbert Beckmann's Version 2
// implementation of the R*-tree" [BKSS90]; tsq implements the R* topological
// split plus Guttman's classic quadratic and linear splits [Gut84] as
// baselines (selectable per tree, ablated in bench_micro_rtree).

#ifndef TSQ_RTREE_SPLIT_H_
#define TSQ_RTREE_SPLIT_H_

#include <vector>

#include "rtree/entry.h"

namespace tsq {
namespace rtree {

/// Which split algorithm a tree uses.
enum class SplitAlgorithm {
  kRStar,             ///< [BKSS90] margin-driven axis + overlap-driven split
  kGuttmanQuadratic,  ///< [Gut84] quadratic seeds + greedy assignment
  kGuttmanLinear,     ///< [Gut84] linear seeds, cheapest and loosest
};

/// Outcome of splitting an overfull entry set into two groups. Both groups
/// respect the min_fill lower bound.
struct SplitResult {
  std::vector<Entry> left;
  std::vector<Entry> right;
};

/// R* split: choose the split axis by minimum total margin over all
/// min_fill-respecting distributions of entries sorted by lower then upper
/// bound; on that axis choose the distribution with minimum overlap, ties
/// broken by minimum combined area. Requires entries.size() >= 2 and
/// 1 <= min_fill <= entries.size() / 2.
SplitResult RStarSplit(std::vector<Entry> entries, size_t min_fill);

/// Guttman quadratic split: pick the two entries wasting the most area as
/// seeds, then assign remaining entries greedily by enlargement preference.
SplitResult GuttmanQuadraticSplit(std::vector<Entry> entries, size_t min_fill);

/// Guttman linear split: seeds with the greatest normalized separation.
SplitResult GuttmanLinearSplit(std::vector<Entry> entries, size_t min_fill);

/// Dispatches on `algo`.
SplitResult SplitEntries(SplitAlgorithm algo, std::vector<Entry> entries,
                         size_t min_fill);

}  // namespace rtree
}  // namespace tsq

#endif  // TSQ_RTREE_SPLIT_H_
