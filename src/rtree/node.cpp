// Copyright (c) 2026 The tsq Authors.

#include "rtree/node.h"

#include <bit>
#include <cstring>

namespace tsq {
namespace rtree {

namespace {

constexpr uint32_t kNodeMagic = 0x4E515354;  // "TSQN"
constexpr size_t kNodeHeaderBytes = 16;

inline size_t EntryBytes(size_t dims) { return 16 * dims + 8; }

inline void PutU32At(Page* page, size_t off, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    page->data()[off + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint32_t GetU32At(const Page& page, size_t off) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(page.data()[off + i]) << (8 * i);
  }
  return v;
}

inline void PutF64At(Page* page, size_t off, double d) {
  const uint64_t bits = std::bit_cast<uint64_t>(d);
  for (size_t i = 0; i < 8; ++i) {
    page->data()[off + i] = static_cast<uint8_t>(bits >> (8 * i));
  }
}

inline double GetF64At(const Page& page, size_t off) {
  uint64_t bits = 0;
  for (size_t i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(page.data()[off + i]) << (8 * i);
  }
  return std::bit_cast<double>(bits);
}

inline void PutU64At(Page* page, size_t off, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) {
    page->data()[off + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint64_t GetU64At(const Page& page, size_t off) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(page.data()[off + i]) << (8 * i);
  }
  return v;
}

}  // namespace

spatial::Rect Node::BoundingRect() const {
  TSQ_CHECK_MSG(!entries.empty(), "BoundingRect of an empty node");
  spatial::Rect mbr = entries[0].rect;
  for (size_t i = 1; i < entries.size(); ++i) {
    mbr.ExpandToInclude(entries[i].rect);
  }
  return mbr;
}

size_t NodeCapacity(size_t page_size, size_t dims) {
  TSQ_CHECK(dims >= 1);
  if (page_size <= kNodeHeaderBytes) return 0;
  return (page_size - kNodeHeaderBytes) / EntryBytes(dims);
}

Status SerializeNode(const Node& node, size_t dims, Page* page) {
  TSQ_CHECK(page != nullptr);
  const size_t capacity = NodeCapacity(page->size(), dims);
  if (node.entries.size() > capacity) {
    return Status::InvalidArgument(
        "node with " + std::to_string(node.entries.size()) +
        " entries exceeds capacity " + std::to_string(capacity));
  }
  page->Clear();
  PutU32At(page, 0, kNodeMagic);
  PutU32At(page, 4, node.level);
  PutU32At(page, 8, static_cast<uint32_t>(node.entries.size()));
  PutU32At(page, 12, 0);

  size_t off = kNodeHeaderBytes;
  for (const Entry& e : node.entries) {
    if (e.rect.dims() != dims) {
      return Status::InvalidArgument("entry dims " +
                                     std::to_string(e.rect.dims()) +
                                     " != tree dims " + std::to_string(dims));
    }
    for (size_t d = 0; d < dims; ++d) {
      PutF64At(page, off, e.rect.lo(d));
      off += 8;
    }
    for (size_t d = 0; d < dims; ++d) {
      PutF64At(page, off, e.rect.hi(d));
      off += 8;
    }
    PutU64At(page, off, e.id);
    off += 8;
  }
  return Status::OK();
}

Status DeserializeNode(const Page& page, size_t dims, Node* node) {
  TSQ_CHECK(node != nullptr);
  if (page.size() < kNodeHeaderBytes) {
    return Status::Corruption("page too small for a node header");
  }
  if (GetU32At(page, 0) != kNodeMagic) {
    return Status::Corruption("bad node magic");
  }
  node->level = GetU32At(page, 4);
  const uint32_t count = GetU32At(page, 8);
  const size_t capacity = NodeCapacity(page.size(), dims);
  if (count > capacity) {
    return Status::Corruption("node count " + std::to_string(count) +
                              " exceeds capacity " + std::to_string(capacity));
  }

  node->entries.clear();
  node->entries.reserve(count);
  size_t off = kNodeHeaderBytes;
  for (uint32_t i = 0; i < count; ++i) {
    spatial::Point lo(dims);
    spatial::Point hi(dims);
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = GetF64At(page, off);
      off += 8;
    }
    for (size_t d = 0; d < dims; ++d) {
      hi[d] = GetF64At(page, off);
      off += 8;
    }
    for (size_t d = 0; d < dims; ++d) {
      if (lo[d] > hi[d]) {
        return Status::Corruption("inverted MBR interval on disk");
      }
    }
    Entry e;
    e.rect = spatial::Rect(std::move(lo), std::move(hi));
    e.id = GetU64At(page, off);
    off += 8;
    node->entries.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace rtree
}  // namespace tsq
