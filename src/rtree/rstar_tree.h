// Copyright (c) 2026 The tsq Authors.
//
// Disk-backed R*-tree [BKSS90] — the index structure the paper's
// experiments run on ("we implemented our method on top of Norbert
// Beckmann's Version 2 implementation of the R*-tree", Sec. 5). One class
// serves the whole R-tree family: the split algorithm and forced-reinsert
// policy are options, so the Guttman R-tree [Gut84] baseline is the same
// class configured differently.
//
// The tree supports two search modes:
//   * Search            — the classic R-tree range search;
//   * SearchTransformed — the paper's Algorithm 2 traversal: every MBR is
//     pushed through a safe transformation (an AffineMap, see Theorems 1-3)
//     *before* the intersection test, which is exactly the on-the-fly
//     construction of the transformed index I' = T(I) of Algorithm 1.
// Keeping the modes separate is intentional: the paper's Figure 8/9
// experiment measures their gap (a constant CPU cost for the vector
// multiply, identical disk accesses).

#ifndef TSQ_RTREE_RSTAR_TREE_H_
#define TSQ_RTREE_RSTAR_TREE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "rtree/split.h"
#include "spatial/affine_map.h"
#include "spatial/metrics.h"
#include "storage/buffer_pool.h"

namespace tsq {
namespace rtree {

/// Construction-time policy knobs.
struct RTreeOptions {
  /// Node split algorithm.
  SplitAlgorithm split = SplitAlgorithm::kRStar;
  /// R* forced reinsertion on first overflow per level per insert.
  bool forced_reinsert = true;
  /// Fraction of entries evicted on forced reinsert ([BKSS90] suggest 30%).
  double reinsert_fraction = 0.3;
  /// Minimum node fill as a percentage of capacity ([BKSS90] suggest 40%).
  uint32_t min_fill_percent = 40;
  /// When nonzero, caps node fanout below the page-derived capacity —
  /// a test hook that forces deep trees on tiny data sets.
  size_t max_entries_override = 0;
};

/// Counters accumulated by search operations (reset with ResetStats).
/// Relaxed atomics: const traversals from many threads may bump them
/// concurrently and per-query StatsScopes snapshot them race-free. Copies
/// by value like a plain aggregate.
struct TraversalStats {
  std::atomic<uint64_t> nodes_visited{0};        ///< node pages touched
  std::atomic<uint64_t> rect_transforms{0};      ///< MBR transformations
  std::atomic<uint64_t> leaf_entries_tested{0};  ///< leaf entries compared

  TraversalStats() = default;
  TraversalStats(const TraversalStats& other) { *this = other; }
  TraversalStats& operator=(const TraversalStats& other) {
    nodes_visited = other.nodes_visited.load(std::memory_order_relaxed);
    rect_transforms = other.rect_transforms.load(std::memory_order_relaxed);
    leaf_entries_tested =
        other.leaf_entries_tested.load(std::memory_order_relaxed);
    return *this;
  }
};

/// Per-thread traversal counters (plain integers — each thread owns its
/// own instance). Every traversal bumps these alongside the tree's shared
/// atomic TraversalStats, so a query running on one thread measures
/// exactly its own work by snapshotting ThisThreadTraversalCounters()
/// before and after — concurrent traversals on other threads never leak
/// into the delta (the v2 exact-stats contract; the v1 shared-counter
/// deltas were approximate under concurrency). Counters are cumulative
/// across all trees a thread touches; only deltas are meaningful.
struct ThreadTraversalCounters {
  uint64_t nodes_visited = 0;
  uint64_t rect_transforms = 0;
  uint64_t leaf_entries_tested = 0;
};

/// This thread's cumulative traversal counters (monotonic; snapshot to
/// diff).
const ThreadTraversalCounters& ThisThreadTraversalCounters();

/// One nearest-neighbor answer.
struct NnResult {
  uint64_t id = 0;
  double distance = 0.0;  ///< distance in (transformed) feature space
};

/// Pluggable NN distance: a lower bound of the query-object distance over
/// everything inside an MBR. For degenerate (point) rects the bound must be
/// the exact distance. Implementations: spatial MINDIST for rectangular
/// feature spaces, the annular-sector metric for polar spaces (src/core).
class NnMetric {
 public:
  virtual ~NnMetric() = default;
  virtual double MinDistSquared(const spatial::Rect& rect) const = 0;

  /// out[i] = MinDistSquared(*rects[i]) for i < count — one call per tree
  /// node instead of one virtual call per entry. The default loops;
  /// metrics backed by the simd kernel layer override it with a batched
  /// kernel (bit-identical per element, so which form runs is
  /// unobservable in the answers).
  virtual void MinDistSquaredBatch(const spatial::Rect* const* rects,
                                   size_t count, double* out) const {
    for (size_t i = 0; i < count; ++i) out[i] = MinDistSquared(*rects[i]);
  }
};

/// Result of CheckInvariants.
struct CheckReport {
  bool ok = true;
  std::string message;        ///< first violation found, empty when ok
  uint64_t leaf_entries = 0;  ///< total data entries seen
};

/// Callback for range searches: receives the data id and the (transformed)
/// leaf MBR; return false to stop the traversal early.
using SearchCallback =
    std::function<bool(uint64_t id, const spatial::Rect& rect)>;

/// A persistent R*-tree over a BufferPool. All rectangles must match the
/// tree's dimensionality.
///
/// Concurrency contract (v3): the const read operations — Search,
/// SearchTransformed, NearestNeighbors(Stream), JoinWith,
/// JoinSeeds/JoinFrom, CheckInvariants — are safe from any number of
/// threads provided no mutating call (Insert, Remove, BulkLoad, SaveMeta)
/// runs concurrently: traversals keep all cursor state on their own
/// stack, and page access goes through the v3 BufferPool, where a fetch
/// of a cached node page is entirely lock-free (optimistic version-
/// validated pin; see buffer_pool.h) and a miss reads from disk without
/// holding its shard's mutex — concurrent traversals only ever contend on
/// the miss/eviction admin path, never on cached-node access. LoadNode
/// holds its pin only for the deserialize, so traversal depth never
/// accumulates pins. The traversal counters are relaxed atomics mirrored
/// into exact thread-local counters (ThisThreadTraversalCounters), and the
/// pool classifies each fetch exactly once, so per-query disk-access
/// deltas stay exact through optimistic retries. Writers require external
/// exclusion (the engine layer treats a built index as frozen).
class RStarTree {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(RStarTree);

  /// Creates an empty tree with a fresh meta page in `pool`'s file.
  static Result<std::unique_ptr<RStarTree>> Create(
      BufferPool* pool, size_t dims, const RTreeOptions& options = {});

  /// Reopens a tree previously persisted with SaveMeta.
  static Result<std::unique_ptr<RStarTree>> Open(
      BufferPool* pool, PageId meta_page, const RTreeOptions& options = {});

  ~RStarTree();

  /// Inserts a rectangle (or point via FromPoint) with a payload id.
  Status Insert(const spatial::Rect& rect, uint64_t id);

  /// Bulk-loads `entries` into an *empty* tree using Sort-Tile-Recursive
  /// packing (Leutenegger et al.): entries are recursively tiled by center
  /// coordinate and packed into ~90%-full leaves; upper levels are built
  /// bottom-up. Far faster than repeated insertion and produces
  /// better-clustered nodes for static data (the paper's index is built
  /// once over an existing relation). Fails with FailedPrecondition on a
  /// non-empty tree. Regular Insert/Remove work normally afterwards.
  Status BulkLoad(std::vector<Entry> entries);

  /// Inserts a point entry.
  Status InsertPoint(const spatial::Point& point, uint64_t id);

  /// Removes the entry matching (rect, id) exactly. Returns true when an
  /// entry was found and removed.
  Result<bool> Remove(const spatial::Rect& rect, uint64_t id);

  /// Classic range search: emits every leaf entry whose MBR intersects
  /// `query`.
  Status Search(const spatial::Rect& query, const SearchCallback& emit) const;

  /// Algorithm 2 traversal: applies `map` to every MBR during descent and
  /// emits leaf entries whose *transformed* MBR intersects `query`. With a
  /// safe map this visits a superset of the qualifying data (Lemma 1).
  Status SearchTransformed(const spatial::AffineMap& map,
                           const spatial::Rect& query,
                           const SearchCallback& emit) const;

  /// Best-first k-nearest-neighbor search under `metric`. When `map` is
  /// non-null every MBR is transformed before the metric sees it. Results
  /// arrive sorted by ascending distance.
  Status NearestNeighbors(const NnMetric& metric, size_t k,
                          const spatial::AffineMap* map,
                          std::vector<NnResult>* out) const;

  /// Incremental best-first enumeration: emits data entries in ascending
  /// lower-bound distance order until the callback returns false or the
  /// tree is exhausted. Bounds are emitted SQUARED — the refine layer
  /// compares in squared space and takes one sqrt per materialized
  /// answer, not one per candidate. The backbone of optimal multi-step
  /// kNN (candidates are verified against full-length data by the caller,
  /// which stops as soon as the lower bound passes its k-th verified
  /// distance).
  Status NearestNeighborsStream(
      const NnMetric& metric, const spatial::AffineMap* map,
      const std::function<bool(uint64_t id, double lower_bound_sq)>& emit)
      const;

  /// Decides whether a pair of (transformed) rectangles can contain
  /// qualifying join pairs; false prunes the subtree pair.
  using JoinPredicate =
      std::function<bool(const spatial::Rect&, const spatial::Rect&)>;

  /// Callback per candidate leaf pair (id from this tree, id from other).
  /// Return false to stop the join.
  using JoinCallback = std::function<bool(uint64_t a, uint64_t b)>;

  /// Synchronized-traversal spatial join with `other` (may be this tree
  /// itself for a self-join): descends both trees in lockstep, pruning
  /// node pairs the predicate rejects, and emits all surviving leaf-entry
  /// pairs. `map` / `other_map` transform this/other tree's MBRs on the
  /// fly (Algorithm 1 applied to both join inputs, as in the paper's
  /// "spatial join between r and Trev(r)"); null means identity. This is
  /// the tree-matching alternative to the paper's index-nested-loop join
  /// (methods c/d) — one traversal instead of one query per record.
  Status JoinWith(const RStarTree& other, const spatial::AffineMap* map,
                  const spatial::AffineMap* other_map,
                  const JoinPredicate& may_join,
                  const JoinCallback& emit) const;

  /// One unit of parallel join work: roots of two subtrees (one per tree)
  /// to descend in lockstep.
  struct JoinSeed {
    PageId a = kInvalidPageId;
    PageId b = kInvalidPageId;
  };

  /// Splits the JoinWith traversal into independent subtree-pair tasks by
  /// expanding the qualifying root-child pairs one level down (the same
  /// pairs, in the same order, the sequential descent would recurse into).
  /// Running JoinFrom on every seed in order emits exactly the JoinWith
  /// candidate sequence; the seeds are independent, so an engine may run
  /// them on as many threads as it likes and concatenate per-seed output
  /// buffers in seed order. When a root is a leaf (or the roots' levels
  /// differ) there is nothing to split and the single seed {root, root}
  /// is returned; in that degenerate case the root pages are loaded both
  /// here and again by JoinFrom, so node-visit counters exceed the
  /// sequential JoinWith by the two extra loads (the candidate output is
  /// still identical). In the split case the counters match exactly.
  /// Empty trees yield no seeds.
  Result<std::vector<JoinSeed>> JoinSeeds(const RStarTree& other,
                                          const spatial::AffineMap* map,
                                          const spatial::AffineMap* other_map,
                                          const JoinPredicate& may_join) const;

  /// Runs the synchronized descent from one seed (see JoinSeeds). Safe to
  /// call concurrently from many threads with distinct seeds: traversal
  /// state lives on the stack, page access goes through the (sharded)
  /// BufferPool, and counters are atomic + thread-local.
  Status JoinFrom(const JoinSeed& seed, const RStarTree& other,
                  const spatial::AffineMap* map,
                  const spatial::AffineMap* other_map,
                  const JoinPredicate& may_join,
                  const JoinCallback& emit) const;

  /// Number of data entries.
  uint64_t size() const { return size_; }

  /// Root level + 1 (a pure-leaf root has height 1); 0 when empty.
  uint32_t height() const { return height_; }

  /// Feature-space dimensionality.
  size_t dims() const { return dims_; }

  /// Max/min entries per node.
  size_t node_capacity() const { return max_entries_; }
  size_t min_fill() const { return min_fill_; }

  /// The tree's meta page id (pass to Open).
  PageId meta_page() const { return meta_page_; }

  /// Persists root/size/height to the meta page.
  Status SaveMeta();

  /// Structural audit: fill factors, MBR containment, level consistency,
  /// entry count. O(tree). Used by property tests.
  Result<CheckReport> CheckInvariants() const;

  /// Search counters.
  const TraversalStats& stats() const { return stats_; }
  void ResetStats() const { stats_ = TraversalStats(); }

 private:
  RStarTree(BufferPool* pool, size_t dims, const RTreeOptions& options);

  struct InsertOutcome {
    spatial::Rect mbr;            // node's bounding rect after the insert
    std::optional<Entry> split;   // new sibling produced by a split
  };
  struct DeleteOutcome {
    bool removed = false;
    bool underflow = false;
    spatial::Rect mbr;            // valid when removed && !underflow
  };

  Result<Node> LoadNode(PageId id) const;
  Status StoreNode(const Node& node);
  Result<PageId> AllocateNodePage();

  /// STR helper: recursively tiles `entries` by center coordinate starting
  /// at `dim` and appends groups of at most `group_size` (and at least
  /// min_fill, by rebalancing the tail) to `groups`.
  void TilePartition(std::vector<Entry>&& entries, size_t dim,
                     size_t group_size,
                     std::vector<std::vector<Entry>>* groups) const;

  Status InsertEntryAtLevel(Entry entry, uint32_t target_level);
  Result<InsertOutcome> InsertRecurse(PageId node_id, const Entry& entry,
                                      uint32_t target_level);
  /// Splits `node` (already overfull) in place; returns the new sibling.
  Result<Entry> SplitNode(Node* node);
  /// Evicts the reinsert_fraction farthest entries of `node` into
  /// pending_reinserts_.
  Status ForcedReinsert(Node* node);
  size_t ChooseSubtree(const Node& node, const spatial::Rect& rect) const;

  Result<DeleteOutcome> DeleteRecurse(PageId node_id,
                                      const spatial::Rect& rect, uint64_t id);
  Status ShrinkRootIfNeeded();

  Status SearchRecurse(PageId node_id, const spatial::AffineMap* map,
                       const spatial::Rect& query, const SearchCallback& emit,
                       bool* keep_going) const;

  Status JoinRecurse(PageId a_id, const RStarTree& other, PageId b_id,
                     const spatial::AffineMap* map_a,
                     const spatial::AffineMap* map_b,
                     const JoinPredicate& may_join, const JoinCallback& emit,
                     bool* keep_going) const;

  Status CheckRecurse(PageId node_id, uint32_t expected_level, bool is_root,
                      CheckReport* report) const;

  BufferPool* pool_;
  size_t dims_;
  RTreeOptions options_;
  size_t max_entries_ = 0;
  size_t min_fill_ = 0;

  PageId meta_page_ = kInvalidPageId;
  PageId root_ = kInvalidPageId;
  uint64_t size_ = 0;
  uint32_t height_ = 0;

  // Per-top-level-insert state for R* forced reinsertion.
  std::set<uint32_t> reinsert_done_levels_;
  std::deque<std::pair<Entry, uint32_t>> pending_reinserts_;

  mutable TraversalStats stats_;
};

}  // namespace rtree
}  // namespace tsq

#endif  // TSQ_RTREE_RSTAR_TREE_H_
