// Copyright (c) 2026 The tsq Authors.
//
// Guttman's quadratic and linear splits [Gut84], plus the R* split
// [BKSS90]. Kept together: they share the grouping helpers, and each is a
// pure function from an overfull entry set to two groups.

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "rtree/split.h"

namespace tsq {
namespace rtree {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

spatial::Rect BoundingRectOf(const std::vector<Entry>& entries, size_t from,
                             size_t to) {
  TSQ_DCHECK(from < to && to <= entries.size());
  spatial::Rect mbr = entries[from].rect;
  for (size_t i = from + 1; i < to; ++i) mbr.ExpandToInclude(entries[i].rect);
  return mbr;
}

void ValidateSplitArgs(const std::vector<Entry>& entries, size_t min_fill) {
  TSQ_CHECK_MSG(entries.size() >= 2, "cannot split %zu entries",
                entries.size());
  TSQ_CHECK_MSG(min_fill >= 1 && 2 * min_fill <= entries.size(),
                "min_fill %zu invalid for %zu entries", min_fill,
                entries.size());
}

}  // namespace

SplitResult RStarSplit(std::vector<Entry> entries, size_t min_fill) {
  ValidateSplitArgs(entries, min_fill);
  const size_t total = entries.size();
  const size_t dims = entries[0].rect.dims();
  const size_t num_dists = total - 2 * min_fill + 1;

  // Phase 1 — ChooseSplitAxis: for every axis, consider entries sorted by
  // lower and by upper bound; sum the margins of all distributions; pick the
  // axis with the smallest total margin ("margin-value" S in [BKSS90]).
  size_t best_axis = 0;
  bool best_axis_by_upper = false;
  double best_axis_margin = kInf;

  auto sort_by = [&entries](size_t axis, bool by_upper) {
    std::sort(entries.begin(), entries.end(),
              [axis, by_upper](const Entry& a, const Entry& b) {
                const double ka = by_upper ? a.rect.hi(axis) : a.rect.lo(axis);
                const double kb = by_upper ? b.rect.hi(axis) : b.rect.lo(axis);
                if (ka != kb) return ka < kb;
                // Secondary key keeps the sort deterministic.
                return (by_upper ? a.rect.lo(axis) : a.rect.hi(axis)) <
                       (by_upper ? b.rect.lo(axis) : b.rect.hi(axis));
              });
  };

  for (size_t axis = 0; axis < dims; ++axis) {
    for (const bool by_upper : {false, true}) {
      sort_by(axis, by_upper);
      double margin_sum = 0.0;
      for (size_t k = 0; k < num_dists; ++k) {
        const size_t left_count = min_fill + k;
        margin_sum += BoundingRectOf(entries, 0, left_count).Margin() +
                      BoundingRectOf(entries, left_count, total).Margin();
      }
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_axis = axis;
        best_axis_by_upper = by_upper;
      }
    }
  }

  // Phase 2 — ChooseSplitIndex on the winning axis/sort: minimize overlap,
  // ties by minimum combined area.
  sort_by(best_axis, best_axis_by_upper);
  double best_overlap = kInf;
  double best_area = kInf;
  size_t best_left_count = min_fill;
  for (size_t k = 0; k < num_dists; ++k) {
    const size_t left_count = min_fill + k;
    const spatial::Rect left = BoundingRectOf(entries, 0, left_count);
    const spatial::Rect right = BoundingRectOf(entries, left_count, total);
    const double overlap = left.IntersectionArea(right);
    const double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_left_count = left_count;
    }
  }

  SplitResult out;
  out.left.assign(entries.begin(),
                  entries.begin() + static_cast<ptrdiff_t>(best_left_count));
  out.right.assign(entries.begin() + static_cast<ptrdiff_t>(best_left_count),
                   entries.end());
  return out;
}

SplitResult GuttmanQuadraticSplit(std::vector<Entry> entries,
                                  size_t min_fill) {
  ValidateSplitArgs(entries, min_fill);
  const size_t total = entries.size();

  // PickSeeds: the pair whose combined rect wastes the most area.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -kInf;
  for (size_t i = 0; i < total; ++i) {
    for (size_t j = i + 1; j < total; ++j) {
      const double waste =
          entries[i].rect.UnionWith(entries[j].rect).Area() -
          entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  SplitResult out;
  spatial::Rect mbr_a = entries[seed_a].rect;
  spatial::Rect mbr_b = entries[seed_b].rect;
  out.left.push_back(entries[seed_a]);
  out.right.push_back(entries[seed_b]);

  std::vector<Entry> rest;
  rest.reserve(total - 2);
  for (size_t i = 0; i < total; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
  }

  while (!rest.empty()) {
    // Force-assign when one group must take everything left to reach
    // min_fill.
    if (out.left.size() + rest.size() == min_fill) {
      for (Entry& e : rest) {
        mbr_a.ExpandToInclude(e.rect);
        out.left.push_back(std::move(e));
      }
      break;
    }
    if (out.right.size() + rest.size() == min_fill) {
      for (Entry& e : rest) {
        mbr_b.ExpandToInclude(e.rect);
        out.right.push_back(std::move(e));
      }
      break;
    }

    // PickNext: the entry with the strongest preference for one group.
    size_t best_idx = 0;
    double best_pref = -kInf;
    for (size_t i = 0; i < rest.size(); ++i) {
      const double da = mbr_a.Enlargement(rest[i].rect);
      const double db = mbr_b.Enlargement(rest[i].rect);
      const double pref = std::abs(da - db);
      if (pref > best_pref) {
        best_pref = pref;
        best_idx = i;
      }
    }
    Entry e = std::move(rest[best_idx]);
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(best_idx));

    const double da = mbr_a.Enlargement(e.rect);
    const double db = mbr_b.Enlargement(e.rect);
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = out.left.size() <= out.right.size();
    }
    if (to_a) {
      mbr_a.ExpandToInclude(e.rect);
      out.left.push_back(std::move(e));
    } else {
      mbr_b.ExpandToInclude(e.rect);
      out.right.push_back(std::move(e));
    }
  }
  return out;
}

SplitResult GuttmanLinearSplit(std::vector<Entry> entries, size_t min_fill) {
  ValidateSplitArgs(entries, min_fill);
  const size_t total = entries.size();
  const size_t dims = entries[0].rect.dims();

  // LinearPickSeeds: on each dimension find the entry with the highest low
  // side and the one with the lowest high side; normalize the separation by
  // the overall extent; keep the dimension with the greatest separation.
  size_t seed_a = 0;
  size_t seed_b = (total > 1) ? 1 : 0;
  double best_sep = -kInf;
  for (size_t d = 0; d < dims; ++d) {
    size_t highest_low = 0;
    size_t lowest_high = 0;
    double overall_lo = kInf;
    double overall_hi = -kInf;
    for (size_t i = 0; i < total; ++i) {
      if (entries[i].rect.lo(d) > entries[highest_low].rect.lo(d)) {
        highest_low = i;
      }
      if (entries[i].rect.hi(d) < entries[lowest_high].rect.hi(d)) {
        lowest_high = i;
      }
      overall_lo = std::min(overall_lo, entries[i].rect.lo(d));
      overall_hi = std::max(overall_hi, entries[i].rect.hi(d));
    }
    if (highest_low == lowest_high) continue;
    const double extent = overall_hi - overall_lo;
    const double sep = entries[highest_low].rect.lo(d) -
                       entries[lowest_high].rect.hi(d);
    const double norm_sep = (extent > 0.0) ? sep / extent : sep;
    if (norm_sep > best_sep) {
      best_sep = norm_sep;
      seed_a = lowest_high;
      seed_b = highest_low;
    }
  }
  if (seed_a == seed_b) seed_b = (seed_a + 1) % total;

  SplitResult out;
  spatial::Rect mbr_a = entries[seed_a].rect;
  spatial::Rect mbr_b = entries[seed_b].rect;
  out.left.push_back(entries[seed_a]);
  out.right.push_back(entries[seed_b]);

  std::vector<Entry> rest;
  rest.reserve(total - 2);
  for (size_t i = 0; i < total; ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
  }

  for (size_t i = 0; i < rest.size(); ++i) {
    Entry& e = rest[i];
    const size_t unassigned = rest.size() - i;  // including e
    if (out.left.size() + unassigned <= min_fill) {
      mbr_a.ExpandToInclude(e.rect);
      out.left.push_back(std::move(e));
      continue;
    }
    if (out.right.size() + unassigned <= min_fill) {
      mbr_b.ExpandToInclude(e.rect);
      out.right.push_back(std::move(e));
      continue;
    }
    const double da = mbr_a.Enlargement(e.rect);
    const double db = mbr_b.Enlargement(e.rect);
    if (da < db || (da == db && out.left.size() <= out.right.size())) {
      mbr_a.ExpandToInclude(e.rect);
      out.left.push_back(std::move(e));
    } else {
      mbr_b.ExpandToInclude(e.rect);
      out.right.push_back(std::move(e));
    }
  }
  return out;
}

SplitResult SplitEntries(SplitAlgorithm algo, std::vector<Entry> entries,
                         size_t min_fill) {
  switch (algo) {
    case SplitAlgorithm::kRStar:
      return RStarSplit(std::move(entries), min_fill);
    case SplitAlgorithm::kGuttmanQuadratic:
      return GuttmanQuadraticSplit(std::move(entries), min_fill);
    case SplitAlgorithm::kGuttmanLinear:
      return GuttmanLinearSplit(std::move(entries), min_fill);
  }
  TSQ_CHECK_MSG(false, "unknown split algorithm");
  return {};
}

}  // namespace rtree
}  // namespace tsq
