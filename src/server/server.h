// Copyright (c) 2026 The tsq Authors.
//
// tsqd — the concurrent network server subsystem: exposes one Database
// over TCP using the wire protocol of src/server/protocol.h, turning the
// in-process engine (PRs 1-4: concurrent RunBatch, parallel self-join,
// parallel ingest) into a service that remote clients share.
//
// Architecture. Socket handling is sharded across N poller threads
// (`ServerOptions::pollers`, default min(4, hardware threads)). Poller 0
// additionally owns the listener: it accepts new sockets and round-robins
// them across all pollers through a small per-poller inbox (mutex +
// vector of fds) plus a per-poller wake pipe. From adoption onward a
// connection belongs to exactly one poller for its whole life: that
// poller runs its FrameReader state machine over non-blocking reads,
// flushes its reply bytes, and retires it — no connection state is ever
// shared between pollers. Completed requests are handed to one global
// execution ThreadPool whose workers call the Database's thread-safe
// entry points (RunBatch, InsertBatch, ParallelSelfJoin, StatsSnapshot)
// — so no poller ever blocks on engine work and a slow query never
// stalls another connection's reads. Workers append each finished reply
// as one whole frame to the owning connection's write buffer (under that
// connection's mutex) and wake the owning poller through its pipe;
// frames never interleave, and a pipelining client matches replies by
// request id since requests may complete out of order.
//
// Backpressure. Admission is global and bounded: at most `max_inflight`
// requests may be queued-or-executing at once across all pollers. A
// request arriving beyond that is answered immediately with a BUSY reply
// (protocol::ReplyCode::kBusy) by the owning poller — no engine work, no
// unbounded buffering — which the client surfaces as
// Status::Unavailable. Pings are answered inline by the owning poller
// and never rejected, so liveness probes work under full load.
//
// Fd exhaustion. When accept4 fails for lack of resources
// (EMFILE/ENFILE/ENOBUFS/ENOMEM) the listener stays readable, which
// would otherwise spin the accept poller at 100% CPU. Instead the
// listener is taken out of the poll set for a short backoff window
// (kAcceptBackoffMs) and re-armed afterwards; pending connections wait
// in the kernel backlog and are accepted once fds are available again.
// Each pause increments ServerCounters::accept_backoffs.
//
// Errors. A connection that breaks framing (bad magic/CRC/oversized
// frame) is beyond recovery: reading stops at once, already-admitted
// requests still deliver their replies, then the socket closes. A
// CRC-valid payload that fails semantic decode gets an ERROR reply and
// the connection continues. A fatal transport error (ECONNRESET from
// recv, POLLERR, a failed send) marks the connection broken and retires
// it immediately — the peer is gone, so no attempt is made to flush
// replies to it; in-flight requests finish harmlessly against their own
// Connection reference.
//
// Shutdown. Stop() (also run by the destructor) stops accepting and
// reading on every poller, waits for every admitted request to finish
// executing, flushes each connection's remaining reply bytes (bounded by
// drain_timeout_ms for peers that stopped reading), then closes all
// sockets and joins the threads — in-flight queries are drained, never
// dropped.

#ifndef TSQ_SERVER_SERVER_H_
#define TSQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "engine/thread_pool.h"
#include "server/protocol.h"

namespace tsq {
namespace server {

/// How long the accept poller stops polling the listener after an
/// fd-exhaustion accept failure before re-arming it.
inline constexpr uint64_t kAcceptBackoffMs = 50;

/// Server construction parameters.
struct ServerOptions {
  /// Listen address (IPv4 dotted quad).
  std::string host = "127.0.0.1";
  /// Listen port; 0 asks the kernel for an ephemeral port — read the
  /// actual one back with Server::port().
  uint16_t port = 0;
  /// Poller threads sharing the socket work; 0 = min(4, hardware
  /// threads). Poller 0 also owns the listener and round-robins accepted
  /// connections across all pollers.
  size_t pollers = 0;
  /// Execution pool workers; 0 = hardware concurrency. Each worker runs
  /// one request at a time against the Database.
  size_t workers = 0;
  /// Thread count passed to Database::RunBatch / ParallelSelfJoin /
  /// InsertBatch per request; 0 = hardware concurrency. The Database
  /// caches one engine per distinct value, so all tsqd requests share one
  /// engine (and its buffer-pool concurrency) by construction.
  size_t engine_threads = 0;
  /// Admission bound: requests queued-or-executing at once (global
  /// across pollers); beyond this a request is rejected with BUSY
  /// instead of buffered.
  size_t max_inflight = 128;
  /// Largest frame payload a client may send.
  size_t max_frame_bytes = 64u << 20;
  /// How long Stop() keeps flushing reply bytes to a peer that has
  /// stopped reading before dropping the connection.
  uint64_t drain_timeout_ms = 5000;
};

/// A running tsqd instance bound to one Database. All public methods are
/// thread-safe. The Database must outlive the server; tsqd adds no calls
/// the Database contract does not already allow concurrently (see
/// core/database.h).
class Server {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Server);
  ~Server();

  /// Binds, listens and starts the poller + worker threads. The database
  /// may be queried in-process concurrently; index-building must follow
  /// the Database contract (no concurrent BuildIndex).
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               const ServerOptions& options);

  /// The bound port (resolves port 0 to the kernel-assigned one).
  uint16_t port() const { return port_; }

  /// The resolved poller thread count.
  size_t pollers() const { return pollers_.size(); }

  /// Graceful shutdown; idempotent, safe from any thread. Blocks until
  /// admitted requests drained and sockets closed.
  void Stop();

  /// Counter snapshot.
  ServerCounters counters() const;

  /// Test hook: runs at the start of every admitted request on the
  /// execution worker, before any Database call. Lets tests hold workers
  /// at a gate to deterministically fill the admission queue (BUSY path)
  /// or to race Stop() against in-flight queries. Call before serving
  /// traffic.
  void SetExecutionHookForTesting(std::function<void()> hook);

 private:
  struct Connection;

  /// One socket-handling thread and everything it owns. `connections` is
  /// touched only by the owning poller thread; `inbox` is the only
  /// cross-poller handoff (acceptor pushes fds under `inbox_mutex`, the
  /// owner adopts them at the top of its loop).
  struct Poller {
    size_t index = 0;
    int wake_fds[2] = {-1, -1};  // self-pipe: workers/acceptor -> poller
    std::thread thread;
    std::mutex inbox_mutex;
    std::vector<int> inbox;  // accepted fds awaiting adoption
    std::vector<std::shared_ptr<Connection>> connections;
  };

  explicit Server(Database* db, ServerOptions options);

  void PollerLoop(Poller* self);
  static void WakePoller(Poller* poller);
  /// Handles one CRC-verified payload from `conn` (owning poller thread).
  Status HandleFrame(const std::shared_ptr<Connection>& conn,
                     const uint8_t* payload, size_t size);
  /// Renders the Prometheus-style exposition: refreshes the point-in-time
  /// gauges and the server-counter mirrors, then dumps the registry.
  std::string RenderMetricsText();
  /// Executes an admitted request on a pool worker and queues its reply.
  void ExecuteRequest(const std::shared_ptr<Connection>& conn,
                      const std::shared_ptr<Request>& request);
  /// Appends one encoded reply frame to the connection's write buffer.
  void QueueReply(const std::shared_ptr<Connection>& conn,
                  const Reply& reply);

  Database* const db_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::unique_ptr<engine::ThreadPool> pool_;
  std::vector<std::unique_ptr<Poller>> pollers_;
  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;
  std::atomic<size_t> inflight_{0};
  std::function<void()> execution_hook_;  // set before Start returns traffic

  /// Stable id stamped on every accepted connection; all log lines about
  /// a connection carry `conn=<id>` so concurrent connections' events can
  /// be correlated across pollers and workers.
  std::atomic<uint64_t> next_connection_id_{0};
  /// Serializes scrape-time counter mirroring (see RenderMetricsText).
  std::mutex metrics_mutex_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> requests_executed_{0};
  std::atomic<uint64_t> busy_rejected_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> accept_backoffs_{0};
};

}  // namespace server
}  // namespace tsq

#endif  // TSQ_SERVER_SERVER_H_
