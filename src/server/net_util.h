// Copyright (c) 2026 The tsq Authors.
//
// Tiny shared helpers for the socket code of tsqd and its client.

#ifndef TSQ_SERVER_NET_UTIL_H_
#define TSQ_SERVER_NET_UTIL_H_

#include <cerrno>
#include <cstring>
#include <string>

#include "common/status.h"

namespace tsq {
namespace server {

/// Wraps the current errno as Status::IOError("what: strerror").
inline Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace server
}  // namespace tsq

#endif  // TSQ_SERVER_NET_UTIL_H_
