// Copyright (c) 2026 The tsq Authors.
//
// The tsqd wire protocol: a compact, CRC-checked binary framing over TCP
// that carries the Database API — range/kNN/subsequence queries (single
// or batched), bulk insert, self-join, reindex, flush, repair, stats and
// ping — between the blocking client (src/server/client.h) and the tsqd
// server (src/server/server.h).
//
// Framing. Every message (request or reply) travels as one frame:
//
//     u32 magic 'TSQF' | u32 payload_crc | u64 payload_len | payload
//
// — deliberately the same shape as the relation's record frame
// (storage/serde.h), and built from the same little-endian codecs, so
// bytes are identical across platforms. The CRC covers the payload only;
// a frame is processed only after the whole payload arrived and its CRC
// verified. A bad magic or CRC means the stream is desynchronized and
// the connection must be dropped; a CRC-valid payload that fails to
// decode is reported back as an ERROR reply and the connection lives on
// (framing is still intact).
//
// Payloads. A request payload is
//
//     u32 verb | u64 request_id | verb-specific body
//
// and a reply payload is
//
//     u32 reply_code | u32 verb | u64 request_id | code/verb-specific body
//
// The request id is chosen by the client and echoed verbatim, so a
// pipelining client can match replies that tsqd completed out of order.
//
// Optional extensions ride on flag bits above the low value byte of the
// u32 they extend (a BatchQuery's kind word; the reply code word): a set
// flag means "an extra payload section follows", a clear flag means the
// pre-extension byte layout, bit for bit. Old peers reject flagged words
// as out-of-range (Corruption) instead of misparsing — that is the whole
// version-gating rule. Currently assigned: bit 8 on a kind word = kNN
// approximation options follow the QuerySpec; bit 8 on a reply code =
// every result's QueryStats carries the approx tail (pruned, max_error,
// approx); bit 8 on a request verb word = the (kStats) request asks for
// server counters in the reply; bit 9 on a reply code = every result's
// QueryStats carries the stage-trace tail (traced, prepare/descent/
// delta/pool_wait/refine ms); bit 10 on a reply code = a ServerCounters
// block follows the DatabaseStats on a kStats OK reply. See protocol.cpp
// for the exact field layouts.
// Reply code kBusy is the backpressure signal: the server's admission
// queue was full and the request was rejected *before* any engine work —
// the client surfaces it as Status::Unavailable and may retry.
//
// Every decoder in this file consumes untrusted bytes. Decoding never
// aborts and never over-allocates past the received payload: all lengths
// are validated against the remaining span (see storage/serde.h), and
// cross-field invariants (e.g. a transform's a/b vectors must have equal
// length) are checked before constructing library types that TSQ_CHECK
// them.

#ifndef TSQ_SERVER_PROTOCOL_H_
#define TSQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "engine/query_engine.h"
#include "storage/serde.h"

namespace tsq {
namespace server {

/// Frame constants.
inline constexpr uint32_t kFrameMagic = 0x46515354;  // "TSQF" on the wire
inline constexpr size_t kFrameHeaderBytes = 16;
/// Hard ceiling on a payload a peer may declare; connections advertising
/// more are dropped as corrupt before any allocation happens.
inline constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

/// What a request asks tsqd to do.
enum class Verb : uint8_t {
  kPing = 1,      ///< liveness probe, empty body
  kStats = 2,     ///< Database::StatsSnapshot()
  kQuery = 3,     ///< one BatchQuery (range/kNN/subsequence)
  kBatch = 4,     ///< a vector of BatchQuery, answered positionally
  kInsert = 5,    ///< bulk insert (Database::InsertBatch)
  kSelfJoin = 6,  ///< parallel self-join
  kReindex = 7,   ///< fold the delta into a fresh main tree, empty body
  kFlush = 8,     ///< Database::Flush() durability barrier, empty body
  kRepair = 9,    ///< Database::Repair() after a write fault, empty body
  kMetrics = 10,  ///< Prometheus-style metrics exposition, empty body
};

/// Reply disposition.
enum class ReplyCode : uint8_t {
  kOk = 0,
  kError = 1,  ///< body carries the Status
  kBusy = 2,   ///< admission queue full; retry later (empty body)
};

/// Monitoring counters (maintained as relaxed atomics in the server,
/// snapshot by value; carried on the wire after a kStats reply's
/// DatabaseStats when the request asked for them).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;  ///< retired (EOF, broken, or drained)
  uint64_t frames_received = 0;     ///< CRC-valid frames decoded
  uint64_t requests_executed = 0;   ///< admitted and run on the pool
  uint64_t busy_rejected = 0;       ///< BUSY replies sent
  uint64_t protocol_errors = 0;     ///< framing faults + semantic decode fails
  uint64_t accept_backoffs = 0;     ///< listener pauses on fd exhaustion
};

/// A decoded request — `verb` selects which fields are meaningful.
struct Request {
  Verb verb = Verb::kPing;
  uint64_t id = 0;
  /// kStats: ask the server to append its ServerCounters to the reply.
  /// Rides on a verb-word flag bit, so old servers reject it cleanly.
  bool want_server_counters = false;
  /// kQuery (exactly one element) / kBatch.
  std::vector<engine::BatchQuery> queries;
  /// kInsert.
  std::vector<std::string> insert_names;
  std::vector<RealVec> insert_values;
  /// kSelfJoin.
  double epsilon = 0.0;
  std::optional<FeatureTransform> transform;
};

/// A decoded reply — `code` + `verb` select which fields are meaningful.
struct Reply {
  ReplyCode code = ReplyCode::kOk;
  Verb verb = Verb::kPing;
  uint64_t id = 0;
  /// kError.
  Status error;
  /// kQuery (exactly one element) / kBatch.
  std::vector<engine::BatchResult> results;
  /// kInsert: ids assigned are insert_base .. insert_base+insert_count-1.
  SeriesId insert_base = 0;
  uint64_t insert_count = 0;
  /// kSelfJoin.
  std::vector<JoinPair> pairs;
  /// kStats.
  DatabaseStats stats;
  /// kStats, iff the request set want_server_counters.
  bool has_server_counters = false;
  ServerCounters server_counters;
  /// kReindex: the epoch whose main tree covers every merged series.
  uint64_t reindex_epoch = 0;
  /// kMetrics: the Prometheus-style text exposition.
  std::string metrics_text;
};

/// Appends the complete frame (header + payload) for a request/reply.
void EncodeRequest(const Request& request, serde::Buffer* frame);
void EncodeReply(const Reply& reply, serde::Buffer* frame);

/// Decodes a CRC-verified payload (the bytes after the frame header).
/// Corruption on any malformed field; the payload must be consumed
/// exactly (trailing garbage is malformed too).
Status DecodeRequest(const uint8_t* payload, size_t size, Request* out);
Status DecodeReply(const uint8_t* payload, size_t size, Reply* out);

/// Incremental frame assembly over an arbitrarily-chunked byte stream —
/// the per-connection reader state machine. Feed() buffers input and
/// invokes `sink(payload, size)` once per completed, CRC-verified frame
/// (possibly several times per call). A non-OK return — bad magic, bad
/// CRC, a declared payload above the limit, or a non-OK sink — poisons
/// the reader: the stream has lost framing and the connection must be
/// closed (every later Feed returns the same error).
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  Status Feed(const uint8_t* data, size_t size,
              const std::function<Status(const uint8_t*, size_t)>& sink);

  /// Bytes buffered towards the next (incomplete) frame.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  serde::Buffer buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status fault_;    // sticky decode failure
};

}  // namespace server
}  // namespace tsq

#endif  // TSQ_SERVER_PROTOCOL_H_
