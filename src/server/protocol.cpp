// Copyright (c) 2026 The tsq Authors.

#include "server/protocol.h"

#include <cstring>

namespace tsq {
namespace server {

namespace {

using serde::Buffer;
using serde::Reader;

// --------------------------------------------------------------------------
// Shared sub-codecs. Every Get* validates enum ranges and cross-field
// invariants before constructing library types, so a hostile payload can
// only ever produce Status::Corruption — never an abort or an allocation
// beyond the received bytes.
// --------------------------------------------------------------------------

void PutStatus(Buffer* buf, const Status& status) {
  serde::PutU32(buf, static_cast<uint32_t>(status.code()));
  serde::PutString(buf, status.message());
}

Status GetStatus(Reader* reader, Status* out) {
  uint32_t code = 0;
  std::string message;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&code));
  TSQ_RETURN_IF_ERROR(reader->GetString(&message));
  if (code > static_cast<uint32_t>(StatusCode::kReadOnly)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  *out = code == 0 ? Status::OK()
                   : Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void PutTransform(Buffer* buf, const FeatureTransform& t) {
  serde::PutComplexVec(buf, t.spectral.a());
  serde::PutComplexVec(buf, t.spectral.b());
  serde::PutDouble(buf, t.spectral.cost());
  serde::PutString(buf, t.spectral.name());
  serde::PutDouble(buf, t.mean_scale);
  serde::PutDouble(buf, t.mean_offset);
  serde::PutDouble(buf, t.std_scale);
}

Status GetTransform(Reader* reader, std::optional<FeatureTransform>* out) {
  ComplexVec a;
  ComplexVec b;
  double cost = 0.0;
  std::string name;
  TSQ_RETURN_IF_ERROR(reader->GetComplexVec(&a));
  TSQ_RETURN_IF_ERROR(reader->GetComplexVec(&b));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&cost));
  TSQ_RETURN_IF_ERROR(reader->GetString(&name));
  // LinearTransform TSQ_CHECKs this invariant; on wire input it must be a
  // recoverable decode error instead of a process abort.
  if (a.size() != b.size()) {
    return Status::Corruption("transform vectors differ in length: " +
                              std::to_string(a.size()) + " vs " +
                              std::to_string(b.size()));
  }
  FeatureTransform t =
      FeatureTransform::Spectral(LinearTransform(std::move(a), std::move(b),
                                                 cost, std::move(name)));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&t.mean_scale));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&t.mean_offset));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&t.std_scale));
  *out = std::move(t);
  return Status::OK();
}

void PutSpec(Buffer* buf, const QuerySpec& spec) {
  serde::PutU32(buf, spec.transform.has_value() ? 1 : 0);
  if (spec.transform.has_value()) PutTransform(buf, *spec.transform);
  serde::PutU32(buf, static_cast<uint32_t>(spec.mode));
  serde::PutU32(buf, spec.window.has_value() ? 1 : 0);
  if (spec.window.has_value()) {
    serde::PutDouble(buf, spec.window->mean_lo);
    serde::PutDouble(buf, spec.window->mean_hi);
    serde::PutDouble(buf, spec.window->std_lo);
    serde::PutDouble(buf, spec.window->std_hi);
  }
}

Status GetSpec(Reader* reader, QuerySpec* out) {
  uint32_t has_transform = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&has_transform));
  if (has_transform > 1) {
    return Status::Corruption("spec transform flag out of range");
  }
  if (has_transform == 1) {
    TSQ_RETURN_IF_ERROR(GetTransform(reader, &out->transform));
  }
  uint32_t mode = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&mode));
  if (mode > static_cast<uint32_t>(TransformMode::kDataOnly)) {
    return Status::Corruption("unknown transform mode " +
                              std::to_string(mode));
  }
  out->mode = static_cast<TransformMode>(mode);
  uint32_t has_window = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&has_window));
  if (has_window > 1) {
    return Status::Corruption("spec window flag out of range");
  }
  if (has_window == 1) {
    MeanStdWindow window{};
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&window.mean_lo));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&window.mean_hi));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&window.std_lo));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&window.std_hi));
    out->window = window;
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Version gating for the approximate-kNN extension (v9). Two flag bits —
// one on a request BatchQuery's `kind` word, one on a reply's code word —
// gate the optional payload fields, so an exact-mode conversation emits
// byte-for-byte the pre-extension wire format:
//
//   * A KnnOptions payload (epsilon f64 | probe_budget u64 | first_leaf
//     u32) follows the QuerySpec iff kKnnOptionsFlag is set on the kind
//     word. The flag is set only for a kKnn query with non-default
//     options; decoders enforce exactly that (the canonical encoding), so
//     a flagged non-kNN query or a flagged all-default payload is
//     Corruption, never a silent variant encoding.
//   * The extended QueryStats tail (pruned u64 | max_error f64 | approx
//     u32) follows every result's stats iff kApproxStatsFlag is set on
//     the reply code word — set only on an OK kQuery/kBatch reply where
//     some result ran approximate.
//
// An old peer decoding a flagged word sees an out-of-range value and
// rejects the frame as Corruption — a clean refusal, not a misparse. An
// old client can never receive the extended reply layout, because only
// flagged requests produce approximate results.
//
// The observability extension (v10) adds three more bits under the same
// rule:
//
//   * kStatsCountersFlag on a request's verb word (kStats only): the
//     client asks the server to append its ServerCounters to the reply.
//     An old server sees verb 0x102, out of range, and answers ERROR.
//   * kStageStatsFlag on a reply code word: every result's QueryStats
//     carries the stage-trace tail (traced u32 | prepare f64 | descent
//     f64 | delta f64 | pool_wait f64 | refine f64) — set only on an OK
//     kQuery/kBatch reply where some result was traced. An untraced
//     result in a flagged reply carries traced=0 and five zeros; a
//     flagged reply where *no* result is traced is Corruption (the
//     canonical encoding would have cleared the flag).
//   * kServerCountersFlag on a reply code word (OK kStats only): a
//     ServerCounters block (7 × u64, declaration order) follows the
//     DatabaseStats — set iff the request asked.
// --------------------------------------------------------------------------
inline constexpr uint32_t kKnnOptionsFlag = 0x100;
inline constexpr uint32_t kApproxStatsFlag = 0x100;
inline constexpr uint32_t kStatsCountersFlag = 0x100;
inline constexpr uint32_t kStageStatsFlag = 0x200;
inline constexpr uint32_t kServerCountersFlag = 0x400;

void PutBatchQuery(Buffer* buf, const engine::BatchQuery& query) {
  const bool with_options = query.kind == engine::BatchQueryKind::kKnn &&
                            !query.knn.is_default();
  serde::PutU32(buf, static_cast<uint32_t>(query.kind) |
                         (with_options ? kKnnOptionsFlag : 0));
  serde::PutRealVec(buf, query.query);
  serde::PutDouble(buf, query.epsilon);
  serde::PutU64(buf, query.k);
  PutSpec(buf, query.spec);
  if (with_options) {
    serde::PutDouble(buf, query.knn.epsilon);
    serde::PutU64(buf, query.knn.probe_budget);
    serde::PutU32(buf, query.knn.stop_after_first_leaf ? 1 : 0);
  }
}

Status GetBatchQuery(Reader* reader, engine::BatchQuery* out) {
  uint32_t kind_word = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&kind_word));
  if ((kind_word & ~0xFFu & ~kKnnOptionsFlag) != 0) {
    return Status::Corruption("unknown batch query kind flags " +
                              std::to_string(kind_word));
  }
  const bool with_options = (kind_word & kKnnOptionsFlag) != 0;
  const uint32_t kind = kind_word & 0xFFu;
  if (kind > static_cast<uint32_t>(engine::BatchQueryKind::kSubsequence)) {
    return Status::Corruption("unknown batch query kind " +
                              std::to_string(kind));
  }
  out->kind = static_cast<engine::BatchQueryKind>(kind);
  if (with_options && out->kind != engine::BatchQueryKind::kKnn) {
    return Status::Corruption("kNN options flag on a non-kNN query");
  }
  TSQ_RETURN_IF_ERROR(reader->GetRealVec(&out->query));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->epsilon));
  uint64_t k = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU64(&k));
  out->k = static_cast<size_t>(k);
  TSQ_RETURN_IF_ERROR(GetSpec(reader, &out->spec));
  if (with_options) {
    uint32_t first_leaf = 0;
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->knn.epsilon));
    TSQ_RETURN_IF_ERROR(reader->GetU64(&out->knn.probe_budget));
    TSQ_RETURN_IF_ERROR(reader->GetU32(&first_leaf));
    if (!(out->knn.epsilon >= 0.0)) {  // rejects negatives and NaN
      return Status::Corruption("kNN error tolerance out of range");
    }
    if (first_leaf > 1) {
      return Status::Corruption("kNN first-leaf flag out of range");
    }
    out->knn.stop_after_first_leaf = first_leaf == 1;
    if (out->knn.is_default()) {
      return Status::Corruption("kNN options flag on all-default options");
    }
  }
  return Status::OK();
}

void PutQueryStats(Buffer* buf, const QueryStats& stats, bool approx_ext,
                   bool stage_ext) {
  serde::PutU64(buf, stats.candidates);
  serde::PutU64(buf, stats.verified);
  serde::PutU64(buf, stats.answers);
  serde::PutU64(buf, stats.nodes_visited);
  serde::PutU64(buf, stats.rect_transforms);
  serde::PutU64(buf, stats.disk_reads);
  serde::PutU64(buf, stats.records_scanned);
  serde::PutDouble(buf, stats.elapsed_ms);
  if (approx_ext) {
    serde::PutU64(buf, stats.pruned);
    serde::PutDouble(buf, stats.max_error);
    serde::PutU32(buf, stats.approx ? 1 : 0);
  }
  if (stage_ext) {
    serde::PutU32(buf, stats.traced ? 1 : 0);
    serde::PutDouble(buf, stats.prepare_ms);
    serde::PutDouble(buf, stats.descent_ms);
    serde::PutDouble(buf, stats.delta_ms);
    serde::PutDouble(buf, stats.pool_wait_ms);
    serde::PutDouble(buf, stats.refine_ms);
  }
}

Status GetQueryStats(Reader* reader, QueryStats* out, bool approx_ext,
                     bool stage_ext) {
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->candidates));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->verified));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->answers));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->nodes_visited));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->rect_transforms));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->disk_reads));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->records_scanned));
  TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->elapsed_ms));
  if (approx_ext) {
    uint32_t approx = 0;
    TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pruned));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->max_error));
    TSQ_RETURN_IF_ERROR(reader->GetU32(&approx));
    if (approx > 1) {
      return Status::Corruption("stats approx flag out of range");
    }
    out->approx = approx == 1;
  }
  if (stage_ext) {
    uint32_t traced = 0;
    TSQ_RETURN_IF_ERROR(reader->GetU32(&traced));
    if (traced > 1) {
      return Status::Corruption("stats traced flag out of range");
    }
    out->traced = traced == 1;
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->prepare_ms));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->descent_ms));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->delta_ms));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->pool_wait_ms));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&out->refine_ms));
    if (!out->traced &&
        (out->prepare_ms != 0.0 || out->descent_ms != 0.0 ||
         out->delta_ms != 0.0 || out->pool_wait_ms != 0.0 ||
         out->refine_ms != 0.0)) {
      return Status::Corruption("stage times on an untraced result");
    }
  }
  return Status::OK();
}

void PutBatchResult(Buffer* buf, const engine::BatchResult& result,
                    bool approx_ext, bool stage_ext) {
  PutStatus(buf, result.status);
  serde::PutU64(buf, result.matches.size());
  for (const Match& m : result.matches) {
    serde::PutU64(buf, m.id);
    serde::PutString(buf, m.name);
    serde::PutDouble(buf, m.distance);
  }
  serde::PutU64(buf, result.subsequence_matches.size());
  for (const SubsequenceMatch& m : result.subsequence_matches) {
    serde::PutU64(buf, m.id);
    serde::PutU64(buf, m.offset);
    serde::PutDouble(buf, m.distance);
  }
  PutQueryStats(buf, result.stats, approx_ext, stage_ext);
}

Status GetBatchResult(Reader* reader, engine::BatchResult* out,
                      bool approx_ext, bool stage_ext) {
  TSQ_RETURN_IF_ERROR(GetStatus(reader, &out->status));
  uint64_t matches = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU64(&matches));
  for (uint64_t i = 0; i < matches; ++i) {
    Match m;
    uint64_t id = 0;
    TSQ_RETURN_IF_ERROR(reader->GetU64(&id));
    m.id = id;
    TSQ_RETURN_IF_ERROR(reader->GetString(&m.name));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&m.distance));
    out->matches.push_back(std::move(m));
  }
  uint64_t sub_matches = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU64(&sub_matches));
  for (uint64_t i = 0; i < sub_matches; ++i) {
    SubsequenceMatch m;
    uint64_t id = 0;
    uint64_t offset = 0;
    TSQ_RETURN_IF_ERROR(reader->GetU64(&id));
    TSQ_RETURN_IF_ERROR(reader->GetU64(&offset));
    TSQ_RETURN_IF_ERROR(reader->GetDouble(&m.distance));
    m.id = id;
    m.offset = static_cast<size_t>(offset);
    out->subsequence_matches.push_back(m);
  }
  return GetQueryStats(reader, &out->stats, approx_ext, stage_ext);
}

void PutServerCounters(Buffer* buf, const ServerCounters& counters) {
  serde::PutU64(buf, counters.connections_accepted);
  serde::PutU64(buf, counters.connections_closed);
  serde::PutU64(buf, counters.frames_received);
  serde::PutU64(buf, counters.requests_executed);
  serde::PutU64(buf, counters.busy_rejected);
  serde::PutU64(buf, counters.protocol_errors);
  serde::PutU64(buf, counters.accept_backoffs);
}

Status GetServerCounters(Reader* reader, ServerCounters* out) {
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->connections_accepted));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->connections_closed));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->frames_received));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->requests_executed));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->busy_rejected));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->protocol_errors));
  return reader->GetU64(&out->accept_backoffs);
}

void PutDatabaseStats(Buffer* buf, const DatabaseStats& stats) {
  serde::PutU64(buf, stats.series);
  serde::PutU64(buf, stats.series_length);
  serde::PutU32(buf, stats.index_built ? 1 : 0);
  serde::PutU64(buf, stats.relation_records_read);
  serde::PutU64(buf, stats.relation_bytes_read);
  serde::PutU64(buf, stats.relation_bytes_written);
  serde::PutU64(buf, stats.pool_hits);
  serde::PutU64(buf, stats.pool_misses);
  serde::PutU64(buf, stats.pool_evictions);
  serde::PutU64(buf, stats.pool_disk_reads);
  serde::PutU64(buf, stats.pool_disk_writes);
  serde::PutU64(buf, stats.nodes_visited);
  serde::PutU64(buf, stats.rect_transforms);
  serde::PutU64(buf, stats.leaf_entries_tested);
  serde::PutU64(buf, stats.tree_entries);
  serde::PutU64(buf, stats.tree_height);
  serde::PutU64(buf, stats.tree_dims);
  serde::PutU64(buf, stats.index_epoch);
  serde::PutU64(buf, stats.delta_entries);
  serde::PutU64(buf, stats.merges_completed);
  serde::PutU32(buf, stats.degraded ? 1 : 0);
  serde::PutU64(buf, stats.write_faults);
  serde::PutU64(buf, stats.repairs_completed);
}

Status GetDatabaseStats(Reader* reader, DatabaseStats* out) {
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->series));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->series_length));
  uint32_t index_built = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&index_built));
  if (index_built > 1) {
    return Status::Corruption("stats index flag out of range");
  }
  out->index_built = index_built == 1;
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->relation_records_read));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->relation_bytes_read));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->relation_bytes_written));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pool_hits));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pool_misses));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pool_evictions));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pool_disk_reads));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->pool_disk_writes));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->nodes_visited));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->rect_transforms));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->leaf_entries_tested));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->tree_entries));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->tree_height));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->tree_dims));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->index_epoch));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->delta_entries));
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->merges_completed));
  uint32_t degraded = 0;
  TSQ_RETURN_IF_ERROR(reader->GetU32(&degraded));
  if (degraded > 1) {
    return Status::Corruption("stats degraded flag out of range");
  }
  out->degraded = degraded == 1;
  TSQ_RETURN_IF_ERROR(reader->GetU64(&out->write_faults));
  return reader->GetU64(&out->repairs_completed);
}

/// Wraps a finished payload in the frame header.
void EncodeFrame(const Buffer& payload, Buffer* frame) {
  serde::PutU32(frame, kFrameMagic);
  serde::PutU32(frame, serde::Crc32(payload));
  serde::PutU64(frame, payload.size());
  frame->insert(frame->end(), payload.begin(), payload.end());
}

Status CheckVerb(uint32_t verb) {
  if (verb < static_cast<uint32_t>(Verb::kPing) ||
      verb > static_cast<uint32_t>(Verb::kMetrics)) {
    return Status::Corruption("unknown verb " + std::to_string(verb));
  }
  return Status::OK();
}

}  // namespace

void EncodeRequest(const Request& request, Buffer* frame) {
  Buffer payload;
  // Canonical encoding: the counters flag is emitted only on a kStats
  // request that asks for them; any other combination stays bit-identical
  // to the pre-extension layout.
  const bool with_counters =
      request.verb == Verb::kStats && request.want_server_counters;
  serde::PutU32(&payload, static_cast<uint32_t>(request.verb) |
                              (with_counters ? kStatsCountersFlag : 0));
  serde::PutU64(&payload, request.id);
  switch (request.verb) {
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kReindex:
    case Verb::kFlush:
    case Verb::kRepair:
    case Verb::kMetrics:
      break;
    case Verb::kQuery:
      TSQ_CHECK_MSG(request.queries.size() == 1,
                    "kQuery carries exactly one query, got %zu",
                    request.queries.size());
      PutBatchQuery(&payload, request.queries[0]);
      break;
    case Verb::kBatch:
      serde::PutU64(&payload, request.queries.size());
      for (const engine::BatchQuery& q : request.queries) {
        PutBatchQuery(&payload, q);
      }
      break;
    case Verb::kInsert:
      TSQ_CHECK_MSG(request.insert_names.size() == request.insert_values.size(),
                    "insert names/values disagree: %zu vs %zu",
                    request.insert_names.size(), request.insert_values.size());
      serde::PutU64(&payload, request.insert_names.size());
      for (size_t i = 0; i < request.insert_names.size(); ++i) {
        serde::PutString(&payload, request.insert_names[i]);
        serde::PutRealVec(&payload, request.insert_values[i]);
      }
      break;
    case Verb::kSelfJoin:
      serde::PutDouble(&payload, request.epsilon);
      serde::PutU32(&payload, request.transform.has_value() ? 1 : 0);
      if (request.transform.has_value()) {
        PutTransform(&payload, *request.transform);
      }
      break;
  }
  EncodeFrame(payload, frame);
}

Status DecodeRequest(const uint8_t* payload, size_t size, Request* out) {
  *out = Request{};  // a reused out-struct must not leak stale fields
  Reader reader(payload, size);
  uint32_t verb_word = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU32(&verb_word));
  // Capture the request id before rejecting an unknown verb: the
  // server's ERROR reply echoes out->id, and a client (possibly newer,
  // speaking a verb this server lacks) matches the reply by that id.
  TSQ_RETURN_IF_ERROR(reader.GetU64(&out->id));
  if ((verb_word & ~0xFFu & ~kStatsCountersFlag) != 0) {
    return Status::Corruption("unknown request verb flags " +
                              std::to_string(verb_word));
  }
  const uint32_t verb = verb_word & 0xFFu;
  TSQ_RETURN_IF_ERROR(CheckVerb(verb));
  out->verb = static_cast<Verb>(verb);
  if ((verb_word & kStatsCountersFlag) != 0) {
    if (out->verb != Verb::kStats) {
      return Status::Corruption("server counters flag on a non-stats request");
    }
    out->want_server_counters = true;
  }
  switch (out->verb) {
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kReindex:
    case Verb::kFlush:
    case Verb::kRepair:
    case Verb::kMetrics:
      break;
    case Verb::kQuery: {
      engine::BatchQuery query;
      TSQ_RETURN_IF_ERROR(GetBatchQuery(&reader, &query));
      out->queries.push_back(std::move(query));
      break;
    }
    case Verb::kBatch: {
      uint64_t count = 0;
      TSQ_RETURN_IF_ERROR(reader.GetU64(&count));
      // No reserve(count): a hostile count is bounded by the bytes that
      // actually follow — the loop fails with Corruption the moment the
      // payload runs dry.
      for (uint64_t i = 0; i < count; ++i) {
        engine::BatchQuery query;
        TSQ_RETURN_IF_ERROR(GetBatchQuery(&reader, &query));
        out->queries.push_back(std::move(query));
      }
      break;
    }
    case Verb::kInsert: {
      uint64_t count = 0;
      TSQ_RETURN_IF_ERROR(reader.GetU64(&count));
      for (uint64_t i = 0; i < count; ++i) {
        std::string name;
        RealVec values;
        TSQ_RETURN_IF_ERROR(reader.GetString(&name));
        TSQ_RETURN_IF_ERROR(reader.GetRealVec(&values));
        out->insert_names.push_back(std::move(name));
        out->insert_values.push_back(std::move(values));
      }
      break;
    }
    case Verb::kSelfJoin: {
      TSQ_RETURN_IF_ERROR(reader.GetDouble(&out->epsilon));
      uint32_t has_transform = 0;
      TSQ_RETURN_IF_ERROR(reader.GetU32(&has_transform));
      if (has_transform > 1) {
        return Status::Corruption("join transform flag out of range");
      }
      if (has_transform == 1) {
        TSQ_RETURN_IF_ERROR(GetTransform(&reader, &out->transform));
      }
      break;
    }
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("request carries " +
                              std::to_string(reader.remaining()) +
                              " trailing bytes");
  }
  return Status::OK();
}

void EncodeReply(const Reply& reply, Buffer* frame) {
  Buffer payload;
  // Extended stats layouts iff some result ran approximate / was traced
  // (only possible on an OK query/batch reply — see the version-gating
  // comment above). The counters block rides on an OK kStats reply iff
  // the request asked for it.
  bool approx_ext = false;
  bool stage_ext = false;
  if (reply.code == ReplyCode::kOk &&
      (reply.verb == Verb::kQuery || reply.verb == Verb::kBatch)) {
    for (const engine::BatchResult& r : reply.results) {
      approx_ext = approx_ext || r.stats.approx;
      stage_ext = stage_ext || r.stats.traced;
    }
  }
  const bool with_counters = reply.code == ReplyCode::kOk &&
                             reply.verb == Verb::kStats &&
                             reply.has_server_counters;
  serde::PutU32(&payload, static_cast<uint32_t>(reply.code) |
                              (approx_ext ? kApproxStatsFlag : 0) |
                              (stage_ext ? kStageStatsFlag : 0) |
                              (with_counters ? kServerCountersFlag : 0));
  serde::PutU32(&payload, static_cast<uint32_t>(reply.verb));
  serde::PutU64(&payload, reply.id);
  if (reply.code == ReplyCode::kError) {
    PutStatus(&payload, reply.error);
    EncodeFrame(payload, frame);
    return;
  }
  if (reply.code == ReplyCode::kBusy) {
    EncodeFrame(payload, frame);
    return;
  }
  switch (reply.verb) {
    case Verb::kPing:
    case Verb::kFlush:
    case Verb::kRepair:
      break;
    case Verb::kStats:
      PutDatabaseStats(&payload, reply.stats);
      if (with_counters) PutServerCounters(&payload, reply.server_counters);
      break;
    case Verb::kMetrics:
      serde::PutString(&payload, reply.metrics_text);
      break;
    case Verb::kQuery:
      TSQ_CHECK_MSG(reply.results.size() == 1,
                    "kQuery reply carries exactly one result, got %zu",
                    reply.results.size());
      PutBatchResult(&payload, reply.results[0], approx_ext, stage_ext);
      break;
    case Verb::kBatch:
      serde::PutU64(&payload, reply.results.size());
      for (const engine::BatchResult& r : reply.results) {
        PutBatchResult(&payload, r, approx_ext, stage_ext);
      }
      break;
    case Verb::kInsert:
      serde::PutU64(&payload, reply.insert_base);
      serde::PutU64(&payload, reply.insert_count);
      break;
    case Verb::kSelfJoin:
      serde::PutU64(&payload, reply.pairs.size());
      for (const JoinPair& p : reply.pairs) {
        serde::PutU64(&payload, p.first);
        serde::PutU64(&payload, p.second);
        serde::PutDouble(&payload, p.distance);
      }
      break;
    case Verb::kReindex:
      serde::PutU64(&payload, reply.reindex_epoch);
      break;
  }
  EncodeFrame(payload, frame);
}

Status DecodeReply(const uint8_t* payload, size_t size, Reply* out) {
  *out = Reply{};  // a reused out-struct must not leak stale fields
  Reader reader(payload, size);
  uint32_t code_word = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU32(&code_word));
  if ((code_word & ~0xFFu & ~kApproxStatsFlag & ~kStageStatsFlag &
       ~kServerCountersFlag) != 0) {
    return Status::Corruption("unknown reply code flags " +
                              std::to_string(code_word));
  }
  const bool approx_ext = (code_word & kApproxStatsFlag) != 0;
  const bool stage_ext = (code_word & kStageStatsFlag) != 0;
  const bool with_counters = (code_word & kServerCountersFlag) != 0;
  const uint32_t code = code_word & 0xFFu;
  if (code > static_cast<uint32_t>(ReplyCode::kBusy)) {
    return Status::Corruption("unknown reply code " + std::to_string(code));
  }
  out->code = static_cast<ReplyCode>(code);
  uint32_t verb = 0;
  TSQ_RETURN_IF_ERROR(reader.GetU32(&verb));
  TSQ_RETURN_IF_ERROR(CheckVerb(verb));
  out->verb = static_cast<Verb>(verb);
  const bool query_reply =
      out->code == ReplyCode::kOk &&
      (out->verb == Verb::kQuery || out->verb == Verb::kBatch);
  if (approx_ext && !query_reply) {
    return Status::Corruption("approx stats flag on a non-query reply");
  }
  if (stage_ext && !query_reply) {
    return Status::Corruption("stage stats flag on a non-query reply");
  }
  if (with_counters &&
      (out->code != ReplyCode::kOk || out->verb != Verb::kStats)) {
    return Status::Corruption("server counters flag on a non-stats reply");
  }
  TSQ_RETURN_IF_ERROR(reader.GetU64(&out->id));
  if (out->code == ReplyCode::kError) {
    TSQ_RETURN_IF_ERROR(GetStatus(&reader, &out->error));
    if (out->error.ok()) {
      return Status::Corruption("error reply carries an OK status");
    }
  } else if (out->code == ReplyCode::kOk) {
    switch (out->verb) {
      case Verb::kPing:
      case Verb::kFlush:
      case Verb::kRepair:
        break;
      case Verb::kStats:
        TSQ_RETURN_IF_ERROR(GetDatabaseStats(&reader, &out->stats));
        if (with_counters) {
          TSQ_RETURN_IF_ERROR(GetServerCounters(&reader, &out->server_counters));
          out->has_server_counters = true;
        }
        break;
      case Verb::kMetrics:
        TSQ_RETURN_IF_ERROR(reader.GetString(&out->metrics_text));
        break;
      case Verb::kQuery: {
        engine::BatchResult result;
        TSQ_RETURN_IF_ERROR(
            GetBatchResult(&reader, &result, approx_ext, stage_ext));
        out->results.push_back(std::move(result));
        break;
      }
      case Verb::kBatch: {
        uint64_t count = 0;
        TSQ_RETURN_IF_ERROR(reader.GetU64(&count));
        for (uint64_t i = 0; i < count; ++i) {
          engine::BatchResult result;
          TSQ_RETURN_IF_ERROR(
              GetBatchResult(&reader, &result, approx_ext, stage_ext));
          out->results.push_back(std::move(result));
        }
        break;
      }
      case Verb::kInsert: {
        uint64_t base = 0;
        TSQ_RETURN_IF_ERROR(reader.GetU64(&base));
        out->insert_base = base;
        TSQ_RETURN_IF_ERROR(reader.GetU64(&out->insert_count));
        break;
      }
      case Verb::kSelfJoin: {
        uint64_t count = 0;
        TSQ_RETURN_IF_ERROR(reader.GetU64(&count));
        for (uint64_t i = 0; i < count; ++i) {
          JoinPair p;
          uint64_t first = 0;
          uint64_t second = 0;
          TSQ_RETURN_IF_ERROR(reader.GetU64(&first));
          TSQ_RETURN_IF_ERROR(reader.GetU64(&second));
          TSQ_RETURN_IF_ERROR(reader.GetDouble(&p.distance));
          p.first = first;
          p.second = second;
          out->pairs.push_back(p);
        }
        break;
      }
      case Verb::kReindex:
        TSQ_RETURN_IF_ERROR(reader.GetU64(&out->reindex_epoch));
        break;
    }
  }
  if (stage_ext) {
    // Canonical encoding: the flag is set only when some result was
    // traced, so a flagged reply whose tails are all untraced is a
    // non-canonical variant, not a valid alternative spelling.
    bool any_traced = false;
    for (const engine::BatchResult& r : out->results) {
      any_traced = any_traced || r.stats.traced;
    }
    if (!any_traced) {
      return Status::Corruption("stage stats flag on an untraced reply");
    }
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("reply carries " +
                              std::to_string(reader.remaining()) +
                              " trailing bytes");
  }
  return Status::OK();
}

Status FrameReader::Feed(
    const uint8_t* data, size_t size,
    const std::function<Status(const uint8_t*, size_t)>& sink) {
  if (!fault_.ok()) return fault_;
  buf_.insert(buf_.end(), data, data + size);
  auto fail = [this](Status status) {
    fault_ = status;
    return status;
  };
  while (buf_.size() - pos_ >= kFrameHeaderBytes) {
    Reader header(buf_.data() + pos_, kFrameHeaderBytes);
    uint32_t magic = 0;
    uint32_t crc = 0;
    uint64_t len = 0;
    TSQ_RETURN_IF_ERROR(header.GetU32(&magic));
    TSQ_RETURN_IF_ERROR(header.GetU32(&crc));
    TSQ_RETURN_IF_ERROR(header.GetU64(&len));
    if (magic != kFrameMagic) {
      return fail(Status::Corruption("bad frame magic"));
    }
    if (len > max_payload_) {
      return fail(Status::Corruption(
          "frame declares " + std::to_string(len) + " payload bytes (limit " +
          std::to_string(max_payload_) + ")"));
    }
    if (buf_.size() - pos_ - kFrameHeaderBytes < len) break;  // incomplete
    const uint8_t* payload = buf_.data() + pos_ + kFrameHeaderBytes;
    if (serde::Crc32(payload, static_cast<size_t>(len)) != crc) {
      return fail(Status::Corruption("frame payload CRC mismatch"));
    }
    if (Status status = sink(payload, static_cast<size_t>(len));
        !status.ok()) {
      return fail(std::move(status));
    }
    pos_ += kFrameHeaderBytes + static_cast<size_t>(len);
  }
  // Compact the consumed prefix so a long-lived connection's buffer does
  // not grow with traffic served long ago.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return Status::OK();
}

}  // namespace server
}  // namespace tsq
