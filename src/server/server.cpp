// Copyright (c) 2026 The tsq Authors.

#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "server/net_util.h"

namespace tsq {
namespace server {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable label values for the per-verb request metrics.
const char* VerbLabel(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kStats: return "stats";
    case Verb::kQuery: return "query";
    case Verb::kBatch: return "batch";
    case Verb::kInsert: return "insert";
    case Verb::kSelfJoin: return "self_join";
    case Verb::kReindex: return "reindex";
    case Verb::kFlush: return "flush";
    case Verb::kRepair: return "repair";
    case Verb::kMetrics: return "metrics";
  }
  return "unknown";
}

/// One counter + latency histogram per verb, registered once and cached.
/// Lookup is branch-free after first use: function-local static init.
struct VerbMetrics {
  obs::Counter* requests;
  obs::Histogram* latency;
};

VerbMetrics& MetricsForVerb(Verb verb) {
  static std::array<VerbMetrics, static_cast<size_t>(Verb::kMetrics)>
      metrics = [] {
    std::array<VerbMetrics, static_cast<size_t>(Verb::kMetrics)> m{};
    for (size_t i = 0; i < m.size(); ++i) {
      const Verb v = static_cast<Verb>(i + 1);
      const std::string label =
          std::string("verb=\"") + VerbLabel(v) + "\"";
      m[i].requests = obs::RegisterCounter("tsqd_requests_total", label);
      m[i].latency =
          obs::RegisterHistogram("tsqd_request_latency_us", label);
    }
    return m;
  }();
  return metrics[static_cast<size_t>(verb) - 1];
}

/// Records one served request (any disposition) against the per-verb
/// families. Disarmed metrics make this one relaxed load.
void RecordRequest(Verb verb, uint64_t start_nanos) {
  if (!obs::MetricsArmed()) return;
  VerbMetrics& m = MetricsForVerb(verb);
  m.requests->Add(1);
  m.latency->Observe(NowNanos() - start_nanos);
}

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t ResolvePollers(size_t requested) {
  if (requested > 0) return requested;
  const size_t hw = std::thread::hardware_concurrency();
  return std::min<size_t>(4, std::max<size_t>(1, hw));
}

/// accept4 errnos that mean "out of resources, not out of clients": the
/// listener stays readable, so retrying immediately would spin.
bool IsAcceptExhaustion(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

}  // namespace

/// Per-connection state. The owning poller thread owns the socket and
/// the read side (FrameReader); the write buffer is shared with pool
/// workers under write_mutex — workers append whole reply frames, the
/// poller flushes. `pending` counts admitted requests whose reply frame
/// has not been appended yet; it is decremented only after QueueReply,
/// so the poller observing pending == 0 is guaranteed to also observe
/// every reply in the buffer (release/acquire pairing).
struct Server::Connection {
  Connection(int fd_in, uint64_t id_in, size_t max_frame, Poller* owner_in)
      : fd(fd_in), id(id_in), owner(owner_in), reader(max_frame) {}
  // Backstop for abnormal poller exits: the retire pass closes fds on
  // the normal paths (and sets fd to -1), but a connection that outlives
  // its poller must not leak its socket.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  int fd;
  const uint64_t id;    // stable across the connection's life; in log lines
  Poller* const owner;  // which poller to wake when a reply is queued
  FrameReader reader;
  bool read_closed = false;  // owning poller only
  bool broken = false;       // transport dead; owning poller only

  std::mutex write_mutex;
  serde::Buffer write_buf;
  size_t write_pos = 0;

  std::atomic<size_t> pending{0};
};

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              const ServerOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("Server::Start needs a database");
  }
  auto server = std::unique_ptr<Server>(new Server(db, options));

  server->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options.host +
                                   "'");
  }
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + options.host + ":" + std::to_string(options.port));
  }
  if (::listen(server->listen_fd_, 128) != 0) return ErrnoStatus("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  const size_t pollers = ResolvePollers(options.pollers);
  server->pollers_.reserve(pollers);
  for (size_t i = 0; i < pollers; ++i) {
    auto poller = std::make_unique<Poller>();
    poller->index = i;
    if (::pipe2(poller->wake_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
      return ErrnoStatus("pipe2");
    }
    server->pollers_.push_back(std::move(poller));
  }

  // Serving traffic arms the metrics registry for the whole process:
  // per-verb histograms, query stage timers and engine gauges all start
  // recording the moment a scrape could observe them.
  obs::ArmMetrics();
  server->pool_ = std::make_unique<engine::ThreadPool>(options.workers);
  for (auto& poller : server->pollers_) {
    poller->thread =
        std::thread(&Server::PollerLoop, server.get(), poller.get());
  }
  TSQ_LOG(kInfo) << "tsqd listening on " << options.host << ":"
                 << server->port_ << " (" << pollers << " pollers, "
                 << server->pool_->size() << " workers, max_inflight "
                 << options.max_inflight << ")";
  return server;
}

void Server::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    for (auto& poller : pollers_) WakePoller(poller.get());
    for (auto& poller : pollers_) {
      if (poller->thread.joinable()) poller->thread.join();
    }
    // Each poller exits only after every connection it owns is closed;
    // any still-running tasks hold their own Connection references, and
    // the pool destructor waits them out before the wake pipes close.
    pool_.reset();
    // The accept poller closes the listener on drain; this covers a
    // Start that failed before the loop ever ran.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (auto& poller : pollers_) {
      // An fd handed off by the acceptor in the last instants before the
      // target poller exited is still sitting in its inbox: close it now
      // rather than leak it.
      for (int fd : poller->inbox) {
        if (fd >= 0) ::close(fd);
      }
      poller->inbox.clear();
      for (int& fd : poller->wake_fds) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
    TSQ_LOG(kInfo) << "tsqd stopped";
  });
}

void Server::WakePoller(Poller* poller) {
  if (poller->wake_fds[1] < 0) return;
  const uint8_t byte = 0;
  // A full pipe already guarantees a pending wake; all errors ignorable.
  [[maybe_unused]] ssize_t n = ::write(poller->wake_fds[1], &byte, 1);
}

ServerCounters Server::counters() const {
  ServerCounters out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  out.frames_received = frames_received_.load(std::memory_order_relaxed);
  out.requests_executed = requests_executed_.load(std::memory_order_relaxed);
  out.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.accept_backoffs = accept_backoffs_.load(std::memory_order_relaxed);
  return out;
}

void Server::SetExecutionHookForTesting(std::function<void()> hook) {
  execution_hook_ = std::move(hook);
}

std::string Server::RenderMetricsText() {
  // Point-in-time engine state is refreshed into gauges at scrape time —
  // no registration-time callbacks, no lifetime puzzles: a scrape simply
  // reports the database as it is now.
  // Families that otherwise register lazily (the first traced span, the
  // first slow query) are pinned here so every scrape carries them and
  // dashboards never see a family appear mid-flight.
  static const bool lazy_families_pinned = [] {
    obs::RegisterCounter("tsq_slow_queries_total");
    for (const char* s :
         {"prepare", "descent", "delta", "pool_wait", "refine"}) {
      obs::RegisterHistogram("tsq_query_stage_self_us",
                             std::string("stage=\"") + s + "\"");
    }
    return true;
  }();
  (void)lazy_families_pinned;
  static obs::Gauge* series = obs::RegisterGauge("tsq_series");
  static obs::Gauge* index_epoch = obs::RegisterGauge("tsq_index_epoch");
  static obs::Gauge* delta_entries = obs::RegisterGauge("tsq_delta_entries");
  static obs::Gauge* merges = obs::RegisterGauge("tsq_merges_completed");
  static obs::Gauge* degraded = obs::RegisterGauge("tsq_degraded");
  static obs::Gauge* write_faults = obs::RegisterGauge("tsq_write_faults");
  static obs::Gauge* repairs = obs::RegisterGauge("tsq_repairs_completed");
  const DatabaseStats stats = db_->StatsSnapshot();
  series->Set(static_cast<int64_t>(stats.series));
  index_epoch->Set(static_cast<int64_t>(stats.index_epoch));
  delta_entries->Set(static_cast<int64_t>(stats.delta_entries));
  merges->Set(static_cast<int64_t>(stats.merges_completed));
  degraded->Set(stats.degraded ? 1 : 0);
  write_faults->Set(static_cast<int64_t>(stats.write_faults));
  repairs->Set(static_cast<int64_t>(stats.repairs_completed));

  // The server's own counters live as relaxed atomics on this object;
  // mirror them into monotone registry counters by delta. The lock keeps
  // two concurrent scrapes from double-applying one delta, and the clamp
  // keeps a second Server in the same process (tests do this) from
  // driving a mirror backwards.
  static obs::Counter* accepted =
      obs::RegisterCounter("tsqd_connections_accepted_total");
  static obs::Counter* closed =
      obs::RegisterCounter("tsqd_connections_closed_total");
  static obs::Counter* frames =
      obs::RegisterCounter("tsqd_frames_received_total");
  static obs::Counter* executed =
      obs::RegisterCounter("tsqd_requests_executed_total");
  static obs::Counter* busy = obs::RegisterCounter("tsqd_busy_rejected_total");
  static obs::Counter* errors =
      obs::RegisterCounter("tsqd_protocol_errors_total");
  static obs::Counter* backoffs =
      obs::RegisterCounter("tsqd_accept_backoffs_total");
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    const ServerCounters c = counters();
    auto mirror = [](obs::Counter* counter, uint64_t current) {
      const uint64_t seen = counter->Value();
      if (current > seen) counter->Add(current - seen);
    };
    mirror(accepted, c.connections_accepted);
    mirror(closed, c.connections_closed);
    mirror(frames, c.frames_received);
    mirror(executed, c.requests_executed);
    mirror(busy, c.busy_rejected);
    mirror(errors, c.protocol_errors);
    mirror(backoffs, c.accept_backoffs);
  }
  return obs::Registry::Global().RenderPrometheus();
}

void Server::QueueReply(const std::shared_ptr<Connection>& conn,
                        const Reply& reply) {
  serde::Buffer frame;
  EncodeReply(reply, &frame);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  conn->write_buf.insert(conn->write_buf.end(), frame.begin(), frame.end());
}

void Server::ExecuteRequest(const std::shared_ptr<Connection>& conn,
                            const std::shared_ptr<Request>& request) {
  if (execution_hook_) execution_hook_();
  requests_executed_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t start_nanos = NowNanos();

  Reply reply;
  reply.verb = request->verb;
  reply.id = request->id;
  auto fail = [&reply](const Status& status) {
    reply.code = ReplyCode::kError;
    reply.error = status;
  };
  switch (request->verb) {
    case Verb::kPing:
    case Verb::kMetrics:
      break;  // answered inline by the owning poller; kept for safety
    case Verb::kStats:
      reply.stats = db_->StatsSnapshot();
      if (request->want_server_counters) {
        reply.server_counters = counters();
        reply.has_server_counters = true;
      }
      break;
    case Verb::kQuery:
    case Verb::kBatch: {
      auto results = db_->RunBatch(request->queries, options_.engine_threads);
      if (!results.ok()) {
        fail(results.status());
      } else {
        reply.results = std::move(*results);
      }
      break;
    }
    case Verb::kInsert: {
      auto ids = db_->InsertBatch(request->insert_names,
                                  request->insert_values,
                                  options_.engine_threads);
      if (!ids.ok()) {
        fail(ids.status());
      } else {
        reply.insert_base = ids->empty() ? 0 : ids->front();
        reply.insert_count = ids->size();
      }
      break;
    }
    case Verb::kSelfJoin: {
      QueryStats stats;
      auto pairs = db_->ParallelSelfJoin(request->epsilon, request->transform,
                                         options_.engine_threads, &stats);
      if (!pairs.ok()) {
        fail(pairs.status());
      } else {
        reply.pairs = std::move(*pairs);
      }
      break;
    }
    case Verb::kReindex: {
      auto epoch = db_->Reindex();
      if (!epoch.ok()) {
        fail(epoch.status());
      } else {
        reply.reindex_epoch = *epoch;
      }
      break;
    }
    case Verb::kFlush:
      if (Status status = db_->Flush(); !status.ok()) fail(status);
      break;
    case Verb::kRepair:
      if (Status status = db_->Repair(); !status.ok()) fail(status);
      break;
  }
  RecordRequest(request->verb, start_nanos);
  QueueReply(conn, reply);
  // Decrement only after the reply frame is buffered: the owning poller
  // treats pending == 0 as "every admitted reply is flushable".
  conn->pending.fetch_sub(1, std::memory_order_release);
  inflight_.fetch_sub(1, std::memory_order_release);
  WakePoller(conn->owner);
}

Status Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                           const uint8_t* payload, size_t size) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t start_nanos = NowNanos();
  auto request = std::make_shared<Request>();
  if (Status status = DecodeRequest(payload, size, request.get());
      !status.ok()) {
    // CRC was valid, so framing is intact: report the decode failure to
    // the peer (verb/id are best-effort partial decodes) and carry on.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    TSQ_LOG(kDebug) << "tsqd conn=" << conn->id << " req=" << request->id
                    << " undecodable request: " << status.ToString();
    Reply reply;
    reply.code = ReplyCode::kError;
    reply.verb = request->verb;
    reply.id = request->id;
    reply.error = std::move(status);
    QueueReply(conn, reply);
    return Status::OK();
  }
  if (request->verb == Verb::kPing) {
    // Liveness probes bypass admission: answered inline, never BUSY.
    Reply reply;
    reply.verb = Verb::kPing;
    reply.id = request->id;
    RecordRequest(Verb::kPing, start_nanos);
    QueueReply(conn, reply);
    return Status::OK();
  }
  if (request->verb == Verb::kMetrics) {
    // Metrics scrapes bypass admission too: monitoring must keep working
    // when the admission queue is saturated — that is exactly when the
    // numbers matter. Rendering reads only relaxed atomics plus one
    // StatsSnapshot; cheap enough for the poller thread.
    Reply reply;
    reply.verb = Verb::kMetrics;
    reply.id = request->id;
    reply.metrics_text = RenderMetricsText();
    RecordRequest(Verb::kMetrics, start_nanos);
    QueueReply(conn, reply);
    return Status::OK();
  }
  size_t inflight = inflight_.load(std::memory_order_relaxed);
  bool admitted = false;
  while (inflight < options_.max_inflight) {
    if (inflight_.compare_exchange_weak(inflight, inflight + 1,
                                        std::memory_order_acq_rel)) {
      admitted = true;
      break;
    }
  }
  if (!admitted) {
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    Reply reply;
    reply.code = ReplyCode::kBusy;
    reply.verb = request->verb;
    reply.id = request->id;
    QueueReply(conn, reply);
    return Status::OK();
  }
  conn->pending.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit([this, conn, request] { ExecuteRequest(conn, request); });
  return Status::OK();
}

void Server::PollerLoop(Poller* self) {
  const bool acceptor = self->index == 0;
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool listener_open = acceptor;
  bool draining = false;
  uint64_t drain_deadline_ms = 0;
  // Fd-exhaustion backoff (acceptor only): while now < rearm the
  // listener is left out of the poll set so a permanently-readable
  // listener cannot spin this thread; pending peers wait in the backlog.
  uint64_t listener_rearm_ms = 0;
  bool exhaustion_logged = false;
  size_t next_poller = 0;  // round-robin handoff cursor

  auto flush_writes = [](Connection* conn) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    while (conn->write_pos < conn->write_buf.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->write_buf.data() + conn->write_pos,
                 conn->write_buf.size() - conn->write_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->write_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn->broken = true;
      break;
    }
    if (conn->write_pos > 0) {
      conn->write_buf.erase(
          conn->write_buf.begin(),
          conn->write_buf.begin() + static_cast<ptrdiff_t>(conn->write_pos));
      conn->write_pos = 0;
    }
  };
  auto write_pending = [](Connection* conn) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    return conn->write_buf.size() - conn->write_pos;
  };

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !draining) {
      draining = true;
      drain_deadline_ms = NowMillis() + options_.drain_timeout_ms;
      if (listener_open) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        listener_open = false;
      }
      for (const auto& conn : self->connections) {
        if (!conn->read_closed) {
          ::shutdown(conn->fd, SHUT_RD);
          conn->read_closed = true;
        }
      }
    }

    // Adopt sockets the acceptor handed off. During drain an adopted
    // connection is immediately read-shut so it only flushes replies —
    // it carried no admitted requests yet, so it retires right away.
    {
      std::vector<int> adopted;
      {
        std::lock_guard<std::mutex> lock(self->inbox_mutex);
        adopted.swap(self->inbox);
      }
      for (int fd : adopted) {
        auto conn = std::make_shared<Connection>(
            fd, next_connection_id_.fetch_add(1, std::memory_order_relaxed),
            options_.max_frame_bytes, self);
        if (draining) {
          ::shutdown(fd, SHUT_RD);
          conn->read_closed = true;
        }
        self->connections.push_back(std::move(conn));
      }
    }

    // Retire connections that are fully done: nothing more to read,
    // every admitted request replied, every reply byte flushed — or the
    // transport is dead (broken), or the drain deadline passed.
    for (auto it = self->connections.begin(); it != self->connections.end();) {
      Connection* conn = it->get();
      const bool drained =
          conn->pending.load(std::memory_order_acquire) == 0 &&
          write_pending(conn) == 0;
      const bool expired = draining && NowMillis() >= drain_deadline_ms;
      if (conn->broken || ((conn->read_closed || draining) && drained) ||
          expired) {
        ::close(conn->fd);
        conn->fd = -1;
        connections_closed_.fetch_add(1, std::memory_order_relaxed);
        it = self->connections.erase(it);
      } else {
        ++it;
      }
    }
    if (draining && self->connections.empty()) return;

    const uint64_t now_ms = NowMillis();
    const bool listener_armed = listener_open && now_ms >= listener_rearm_ms;
    pfds.clear();
    polled.clear();
    pfds.push_back({self->wake_fds[0], POLLIN, 0});
    if (listener_armed) pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : self->connections) {
      short events = 0;
      if (!conn->read_closed) events |= POLLIN;
      if (write_pending(conn.get()) > 0) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
    }
    // Finite timeout: a cheap idle tick that also bounds the drain wait
    // and, while the listener is backed off, its re-arm latency.
    int timeout_ms = draining ? 20 : 500;
    if (listener_open && !listener_armed) {
      const uint64_t until_rearm =
          listener_rearm_ms > now_ms ? listener_rearm_ms - now_ms : 1;
      timeout_ms = std::min<int>(timeout_ms, static_cast<int>(until_rearm));
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      // Unrecoverable poller failure (EINVAL/ENOMEM): close this
      // poller's sockets so peers see FIN instead of hanging; in-flight
      // tasks still hold their Connection references and finish
      // harmlessly. Other pollers keep serving.
      TSQ_LOG(kError) << "tsqd poller " << self->index
                      << " poll failed: " << std::strerror(errno);
      for (const auto& conn : self->connections) {
        ::close(conn->fd);
        conn->fd = -1;
        connections_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      self->connections.clear();
      if (listener_open) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      return;
    }
    if (ready <= 0) continue;  // timeout tick or EINTR

    size_t idx = 0;
    if (pfds[idx].revents & POLLIN) {
      uint8_t drain[256];
      while (::read(self->wake_fds[0], drain, sizeof(drain)) > 0) {
      }
    }
    ++idx;

    if (listener_armed) {
      if (pfds[idx].revents & POLLIN) {
        for (;;) {
          const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd >= 0) {
            exhaustion_logged = false;
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            connections_accepted_.fetch_add(1, std::memory_order_relaxed);
            Poller* target = pollers_[next_poller % pollers_.size()].get();
            ++next_poller;
            if (target == self) {
              self->connections.push_back(std::make_shared<Connection>(
                  fd,
                  next_connection_id_.fetch_add(1, std::memory_order_relaxed),
                  options_.max_frame_bytes, self));
            } else {
              {
                std::lock_guard<std::mutex> lock(target->inbox_mutex);
                target->inbox.push_back(fd);
              }
              WakePoller(target);
            }
            continue;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK ||
              errno == ECONNABORTED) {
            break;  // backlog empty (or a peer gave up): nothing to do
          }
          // Out of fds (or kernel memory): the listener would stay
          // readable forever, so back off instead of spinning. The
          // backlog keeps the pending peers; re-arm after the window.
          listener_rearm_ms = NowMillis() + kAcceptBackoffMs;
          accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
          if (!exhaustion_logged) {
            TSQ_LOG(kWarn) << "tsqd accept failed ("
                           << std::strerror(errno)
                           << "); pausing the listener for "
                           << kAcceptBackoffMs << "ms"
                           << (IsAcceptExhaustion(errno)
                                   ? ""
                                   : " (unexpected errno)");
            exhaustion_logged = true;
          }
          break;
        }
      }
      ++idx;
    }

    for (size_t c = 0; c < polled.size(); ++c, ++idx) {
      const std::shared_ptr<Connection>& conn = polled[c];
      const short revents = pfds[idx].revents;
      if (revents & POLLERR) {
        conn->broken = true;
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) && !conn->read_closed) {
        uint8_t buf[64 * 1024];
        for (;;) {
          const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
          if (n > 0) {
            Status status = conn->reader.Feed(
                buf, static_cast<size_t>(n),
                [this, &conn](const uint8_t* payload, size_t size) {
                  return HandleFrame(conn, payload, size);
                });
            if (!status.ok()) {
              // Framing is gone (bad magic/CRC/oversize): stop reading,
              // deliver what was admitted, then the retire pass closes.
              protocol_errors_.fetch_add(1, std::memory_order_relaxed);
              TSQ_LOG(kDebug) << "tsqd conn=" << conn->id
                              << " dropping connection: "
                              << status.ToString();
              ::shutdown(conn->fd, SHUT_RD);
              conn->read_closed = true;
              break;
            }
            continue;
          }
          if (n == 0) {
            conn->read_closed = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          // Fatal transport error (e.g. ECONNRESET): the peer is gone,
          // so replies can never be delivered — retire the connection
          // now instead of lingering until a later send fails.
          conn->broken = true;
          break;
        }
      }
      if ((revents & POLLOUT) && !conn->broken) flush_writes(conn.get());
    }
  }
}

}  // namespace server
}  // namespace tsq
