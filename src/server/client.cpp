// Copyright (c) 2026 The tsq Authors.

#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "server/net_util.h"

namespace tsq {
namespace server {

namespace {

/// Connect with a deadline: non-blocking connect, poll for writability,
/// then surface the socket's final disposition via SO_ERROR. The socket
/// is restored to blocking mode on success.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          const std::string& where, uint64_t timeout_ms) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl " + where);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect " + where);
    pollfd pfd{fd, POLLOUT, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return ErrnoStatus("poll " + where);
      if (ready == 0) {
        return Status::Unavailable("connect " + where + " timed out after " +
                                   std::to_string(timeout_ms) + "ms");
      }
      break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return ErrnoStatus("getsockopt " + where);
    }
    if (err != 0) {
      errno = err;
      return ErrnoStatus("connect " + where);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return ErrnoStatus("fcntl " + where);
  return Status::OK();
}

/// The socket half of Connect: resolves, connects (with the optional
/// deadline) and applies the socket options. Shared by Connect and
/// Reconnect.
Result<int> OpenSocket(const std::string& host, uint16_t port,
                       const ClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  const std::string where = host + ":" + std::to_string(port);
  if (options.connect_timeout_ms > 0) {
    if (Status status =
            ConnectWithTimeout(fd, addr, where, options.connect_timeout_ms);
        !status.ok()) {
      ::close(fd);
      return status;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    Status status = ErrnoStatus("connect " + where);
    ::close(fd);
    return status;
  }
  if (options.io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options.io_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((options.io_timeout_ms % 1000) *
                                          1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                const ClientOptions& options) {
  TSQ_ASSIGN_OR_RETURN(const int fd, OpenSocket(host, port, options));
  return std::unique_ptr<Client>(new Client(fd, host, port, options));
}

Status Client::Reconnect() {
  TSQ_ASSIGN_OR_RETURN(const int fd, OpenSocket(host_, port_, options_));
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  reader_ = FrameReader();  // any half-read frame died with the old stream
  fault_ = Status::OK();
  return Status::OK();
}

Status Client::SendAll(const serde::Buffer& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        options_.io_timeout_ms > 0) {
      return Status::Unavailable(
          "send timed out after " + std::to_string(options_.io_timeout_ms) +
          "ms; the request may be partially written — reconnect");
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Result<Reply> Client::RoundTrip(Request request) {
  if (!fault_.ok()) return fault_;
  request.id = next_id_++;
  serde::Buffer frame;
  EncodeRequest(request, &frame);
  if (Status status = SendAll(frame); !status.ok()) {
    fault_ = status;
    return status;
  }

  Reply reply;
  bool have_reply = false;
  uint8_t buf[64 * 1024];
  while (!have_reply) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      fault_ = Status::IOError("server closed the connection");
      return fault_;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
          options_.io_timeout_ms > 0) {
        // SO_RCVTIMEO expired: the server is hung (or the reply is very
        // late). The reply may still arrive, so the stream position is
        // indeterminate — poison the connection; the caller reconnects.
        fault_ = Status::Unavailable(
            "no reply within " + std::to_string(options_.io_timeout_ms) +
            "ms; connection state indeterminate — reconnect");
        return fault_;
      }
      fault_ = ErrnoStatus("recv");
      return fault_;
    }
    Status status = reader_.Feed(
        buf, static_cast<size_t>(n),
        [&reply, &have_reply](const uint8_t* payload, size_t size) {
          if (have_reply) {
            return Status::Corruption("unexpected extra reply frame");
          }
          TSQ_RETURN_IF_ERROR(DecodeReply(payload, size, &reply));
          have_reply = true;
          return Status::OK();
        });
    if (!status.ok()) {
      fault_ = status;
      return status;
    }
  }
  if (reply.id != request.id) {
    // A blocking client has exactly one request outstanding; any other id
    // means the stream is off the rails.
    fault_ = Status::Corruption(
        "reply id " + std::to_string(reply.id) + " does not match request " +
        std::to_string(request.id));
    return fault_;
  }
  if (reply.code == ReplyCode::kBusy) {
    return Status::Unavailable("server admission queue full; retry later");
  }
  if (reply.code == ReplyCode::kError) return reply.error;
  return reply;
}

Result<Reply> Client::RoundTripWithRetry(Request request) {
  // Inserts are deliberately excluded: an indeterminate failure (io
  // timeout) leaves it unknown whether ids were assigned, and a resend
  // could store the batch twice. Everything else is idempotent.
  const bool idempotent = request.verb != Verb::kInsert;
  Result<Reply> result = RoundTrip(request);
  for (uint32_t attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (result.ok() || !idempotent ||
        result.status().code() != StatusCode::kUnavailable) {
      break;
    }
    // Capped exponential backoff with jitter: sleep a uniform draw from
    // [backoff/2, backoff] so a herd of clients bounced by the same BUSY
    // burst does not return in lockstep.
    uint64_t backoff_ms = options_.retry_base_ms > 0
                              ? options_.retry_base_ms
                              : 1;
    for (uint32_t i = 0; i < attempt && backoff_ms < 1000; ++i) {
      backoff_ms *= 2;
    }
    if (backoff_ms > 1000) backoff_ms = 1000;
    if (jitter_state_ == 0) {
      // Seed once per client from the address of this object and the
      // clock — uncorrelated across processes, no global state.
      jitter_state_ =
          (reinterpret_cast<uintptr_t>(this) ^
           static_cast<uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count())) |
          1;
    }
    // xorshift64: cheap, stateless-enough jitter (not cryptographic).
    jitter_state_ ^= jitter_state_ << 13;
    jitter_state_ ^= jitter_state_ >> 7;
    jitter_state_ ^= jitter_state_ << 17;
    const uint64_t sleep_ms =
        backoff_ms / 2 + jitter_state_ % (backoff_ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    if (!fault_.ok()) {
      // The failure poisoned the stream (timeout mid-reply); a BUSY
      // bounce leaves it healthy and retries in place.
      if (Status status = Reconnect(); !status.ok()) {
        result = status;
        continue;
      }
    }
    result = RoundTrip(request);
  }
  return result;
}

Status Client::Ping() {
  Request request;
  request.verb = Verb::kPing;
  return RoundTripWithRetry(std::move(request)).status();
}

Result<DatabaseStats> Client::Stats(ServerCounters* counters) {
  Request request;
  request.verb = Verb::kStats;
  request.want_server_counters = counters != nullptr;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  if (counters != nullptr) {
    if (!reply.has_server_counters) {
      return Status::Corruption("stats reply omits the requested counters");
    }
    *counters = reply.server_counters;
  }
  return reply.stats;
}

Result<std::string> Client::Metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  return std::move(reply.metrics_text);
}

Result<std::vector<engine::BatchResult>> Client::RunBatch(
    const std::vector<engine::BatchQuery>& queries) {
  Request request;
  request.verb = Verb::kBatch;
  request.queries = queries;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  if (reply.results.size() != queries.size()) {
    fault_ = Status::Corruption(
        "batch reply carries " + std::to_string(reply.results.size()) +
        " results for " + std::to_string(queries.size()) + " queries");
    return fault_;
  }
  return std::move(reply.results);
}

namespace {

/// Unwraps the single result of a kQuery reply the way an in-process
/// caller unwraps results[0] of a one-query RunBatch.
Result<engine::BatchResult> SingleResult(Reply reply) {
  if (reply.results.size() != 1) {
    return Status::Corruption("query reply carries " +
                              std::to_string(reply.results.size()) +
                              " results");
  }
  engine::BatchResult result = std::move(reply.results[0]);
  TSQ_RETURN_IF_ERROR(result.status);
  return result;
}

}  // namespace

Result<std::vector<Match>> Client::Range(const RealVec& query, double epsilon,
                                         const QuerySpec& spec) {
  Request request;
  request.verb = Verb::kQuery;
  engine::BatchQuery q;
  q.kind = engine::BatchQueryKind::kRange;
  q.query = query;
  q.epsilon = epsilon;
  q.spec = spec;
  request.queries.push_back(std::move(q));
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  TSQ_ASSIGN_OR_RETURN(engine::BatchResult result,
                       SingleResult(std::move(reply)));
  return std::move(result.matches);
}

Result<std::vector<Match>> Client::Knn(const RealVec& query, size_t k,
                                       const QuerySpec& spec,
                                       const KnnOptions& options,
                                       QueryStats* stats) {
  Request request;
  request.verb = Verb::kQuery;
  engine::BatchQuery q;
  q.kind = engine::BatchQueryKind::kKnn;
  q.query = query;
  q.k = k;
  q.spec = spec;
  q.knn = options;
  request.queries.push_back(std::move(q));
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  TSQ_ASSIGN_OR_RETURN(engine::BatchResult result,
                       SingleResult(std::move(reply)));
  if (stats != nullptr) *stats = result.stats;
  return std::move(result.matches);
}

Result<std::vector<SubsequenceMatch>> Client::Subsequence(const RealVec& query,
                                                          double epsilon) {
  Request request;
  request.verb = Verb::kQuery;
  engine::BatchQuery q;
  q.kind = engine::BatchQueryKind::kSubsequence;
  q.query = query;
  q.epsilon = epsilon;
  request.queries.push_back(std::move(q));
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  TSQ_ASSIGN_OR_RETURN(engine::BatchResult result,
                       SingleResult(std::move(reply)));
  return std::move(result.subsequence_matches);
}

Result<std::vector<SeriesId>> Client::InsertBatch(
    const std::vector<std::string>& names,
    const std::vector<RealVec>& values) {
  Request request;
  request.verb = Verb::kInsert;
  request.insert_names = names;
  request.insert_values = values;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  // Bound the allocation by what was actually sent: a corrupt reply must
  // not make the client size a vector from an arbitrary wire value.
  if (reply.insert_count != names.size()) {
    fault_ = Status::Corruption(
        "insert reply claims " + std::to_string(reply.insert_count) +
        " ids for " + std::to_string(names.size()) + " series");
    return fault_;
  }
  std::vector<SeriesId> ids(names.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = reply.insert_base + i;
  }
  return ids;
}

Result<std::vector<JoinPair>> Client::SelfJoin(
    double epsilon, const std::optional<FeatureTransform>& transform) {
  Request request;
  request.verb = Verb::kSelfJoin;
  request.epsilon = epsilon;
  request.transform = transform;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  return std::move(reply.pairs);
}

Result<uint64_t> Client::Reindex() {
  Request request;
  request.verb = Verb::kReindex;
  TSQ_ASSIGN_OR_RETURN(Reply reply, RoundTripWithRetry(std::move(request)));
  return reply.reindex_epoch;
}

Status Client::Flush() {
  Request request;
  request.verb = Verb::kFlush;
  return RoundTripWithRetry(std::move(request)).status();
}

Status Client::Repair() {
  Request request;
  request.verb = Verb::kRepair;
  return RoundTripWithRetry(std::move(request)).status();
}

}  // namespace server
}  // namespace tsq
