// Copyright (c) 2026 The tsq Authors.
//
// Blocking C++ client for tsqd: one TCP connection, one outstanding
// request at a time, method-per-verb mirrors of the Database API. The
// remote methods return exactly what the corresponding in-process call
// returns — Range() relays the per-query status and matches a local
// Database::RunBatch would produce for the same query — so a caller can
// swap a Database* for a Client* without changing its error handling.
//
// BUSY replies (the server's admission queue was full) surface as
// Status::Unavailable; the request did no engine work and is safe to
// retry. A Corruption status from any call means the reply stream broke
// framing — the connection is poisoned and must be reconnected.
//
// Retries. With ClientOptions::max_retries > 0 the client retries
// idempotent verbs — everything except insert — on Unavailable (BUSY or
// a transport timeout), sleeping a capped exponential backoff with
// jitter between attempts and transparently reconnecting first when the
// failure poisoned the connection. Inserts are never retried: a timeout
// leaves it unknown whether the server assigned ids, and a blind resend
// could store the batch twice.
//
// Timeouts. By default every call blocks indefinitely — a hung server
// (e.g. a stuck drain) hangs the caller in recv. ClientOptions bounds
// that: `connect_timeout_ms` caps Connect (non-blocking connect + poll),
// `io_timeout_ms` caps each send/recv (SO_SNDTIMEO/SO_RCVTIMEO). An
// expired timeout returns Status::Unavailable — and, unlike a BUSY
// bounce, poisons the connection: a reply may still be in flight, so the
// stream position is indeterminate and the client must reconnect before
// issuing another request. Both default to 0 (off), preserving the
// original blocking behavior exactly.
//
// Thread-compatibility: a Client is NOT thread-safe; give each thread its
// own connection (connections are cheap, and tsqd multiplexes them onto
// its execution pool server-side).

#ifndef TSQ_SERVER_CLIENT_H_
#define TSQ_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"

namespace tsq {
namespace server {

/// Client construction parameters. Zero means "no timeout" (block
/// forever), the pre-timeout behavior.
struct ClientOptions {
  /// Cap on establishing the TCP connection; expiry is
  /// Status::Unavailable from Connect.
  uint64_t connect_timeout_ms = 0;
  /// Cap on each individual send/recv inside a round trip; expiry is
  /// Status::Unavailable and poisons the connection (reconnect to
  /// continue).
  uint64_t io_timeout_ms = 0;
  /// Retries after the first attempt for idempotent verbs answered with
  /// Unavailable (BUSY backpressure or a transport timeout). 0 (the
  /// default) preserves the no-retry behavior.
  uint32_t max_retries = 0;
  /// Backoff before the first retry; doubles per retry, capped at
  /// 1000 ms, with uniform jitter over [backoff/2, backoff].
  uint64_t retry_base_ms = 10;
};

/// A blocking tsqd connection.
class Client {
 public:
  TSQ_DISALLOW_COPY_AND_MOVE(Client);
  ~Client();

  /// Connects to a tsqd instance (IPv4 dotted quad).
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port,
      const ClientOptions& options = {});

  /// Liveness probe. Served inline by the server's event thread — never
  /// BUSY, even when the execution pool is saturated.
  Status Ping();

  /// Remote Database::StatsSnapshot(). With a non-null `counters` the
  /// request additionally asks for the server's own monitoring counters
  /// (rides on a verb-word flag bit; an old server answers ERROR, which
  /// surfaces here as that status — pass nullptr to stay compatible).
  Result<DatabaseStats> Stats(ServerCounters* counters = nullptr);

  /// Remote metrics scrape: the server's Prometheus-style text
  /// exposition. Served inline like Ping — never BUSY — so monitoring
  /// works when the admission queue is saturated.
  Result<std::string> Metrics();

  /// Remote single queries; match Database::RunBatch of a one-query
  /// batch (per-query status unwrapped).
  Result<std::vector<Match>> Range(const RealVec& query, double epsilon,
                                   const QuerySpec& spec = {});
  /// `options` selects approximate kNN (exact by default); when `stats`
  /// is non-null the per-query stats — including the observed
  /// (candidates, pruned, max_error) — are copied out.
  Result<std::vector<Match>> Knn(const RealVec& query, size_t k,
                                 const QuerySpec& spec = {},
                                 const KnnOptions& options = {},
                                 QueryStats* stats = nullptr);
  Result<std::vector<SubsequenceMatch>> Subsequence(const RealVec& query,
                                                    double epsilon);

  /// Remote Database::RunBatch: results[i] answers queries[i], statuses
  /// per query.
  Result<std::vector<engine::BatchResult>> RunBatch(
      const std::vector<engine::BatchQuery>& queries);

  /// Remote Database::InsertBatch; returns the assigned dense ids.
  Result<std::vector<SeriesId>> InsertBatch(
      const std::vector<std::string>& names,
      const std::vector<RealVec>& values);

  /// Remote Database::ParallelSelfJoin.
  Result<std::vector<JoinPair>> SelfJoin(
      double epsilon, const std::optional<FeatureTransform>& transform);

  /// Remote Database::Reindex: folds the delta into a fresh main tree on
  /// the server and returns the published epoch. Queries keep answering
  /// throughout the merge.
  Result<uint64_t> Reindex();

  /// Remote Database::Flush: a durability barrier at the server's
  /// configured durability level.
  Status Flush();

  /// Remote Database::Repair: recovers a write-fault-degraded database
  /// and lifts its read-only state (see Database::Repair).
  Status Repair();

 private:
  Client(int fd, std::string host, uint16_t port,
         const ClientOptions& options)
      : fd_(fd), host_(std::move(host)), port_(port), options_(options) {}

  /// Sends `request` (id assigned here) and blocks for its reply.
  /// Translates kBusy to Unavailable and kError to the carried status.
  Result<Reply> RoundTrip(Request request);

  /// RoundTrip plus the retry policy: up to max_retries extra attempts
  /// for idempotent verbs on Unavailable, with capped exponential
  /// backoff + jitter, reconnecting when the connection is poisoned.
  Result<Reply> RoundTripWithRetry(Request request);

  /// Replaces the poisoned connection with a fresh one to the original
  /// host:port and clears the sticky fault.
  Status Reconnect();

  Status SendAll(const serde::Buffer& bytes);

  int fd_;
  const std::string host_;
  const uint16_t port_;
  const ClientOptions options_;
  uint64_t next_id_ = 1;
  FrameReader reader_;
  Status fault_;  // sticky stream failure
  uint64_t jitter_state_ = 0;  // lazily seeded xorshift for retry jitter
};

}  // namespace server
}  // namespace tsq

#endif  // TSQ_SERVER_CLIENT_H_
