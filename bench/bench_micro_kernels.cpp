// Copyright (c) 2026 The tsq Authors.
//
// Micro-benchmarks (google-benchmark) for the computational kernels: FFT
// variants, unitary DFT, circular convolution, distance kernels (full,
// early-abandon, fused transform+distance), feature extraction and moving
// averages. These quantify the constant factors behind the paper's curves
// (e.g. the CPU-only gap in Figures 8/9 is the rect-transform + complex
// multiply cost measured here).
//
// Before the google-benchmark registrations run, main() executes a
// deterministic per-level sweep of the src/simd/ kernel table over
// lengths {64, 256, 1024, 8192} and drops BENCH_kernels.json: ns/call
// and speedup-vs-scalar for every compiled dispatch level, plus a bitwise
// answer checksum per (kernel, length, level) cell. A checksum mismatch
// between levels aborts the binary — the determinism contract is enforced
// on the benchmark's own workload, not just in unit tests.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/feature.h"
#include "dft/dft.h"
#include "dft/fft.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "core/seq_scan.h"
#include "simd/simd.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

RealVec MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  return workload::RandomWalkSeries(&rng, n, {});
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

ComplexVec MakeComplex(size_t n, uint64_t seed) {
  Rng rng(seed);
  ComplexVec out(n);
  for (Complex& c : out) {
    c = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  }
  return out;
}

void BM_FftRadix2(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = MakeComplex(n, 1);
  for (auto _ : state) {
    ComplexVec y = x;
    fft::TransformRadix2(&y, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = MakeComplex(n, 2);
  for (auto _ : state) {
    ComplexVec y = x;
    fft::TransformBluestein(&y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(63)->Arg(127)->Arg(1000)->Arg(1023);

void BM_UnitaryDftRealInput(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 3);
  for (auto _ : state) {
    ComplexVec X = dft::Forward(x);
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_UnitaryDftRealInput)->Arg(128)->Arg(1024);

void BM_CircularConvolution(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 4);
  RealVec kernel = MovingAverageKernel(n, 20);
  for (auto _ : state) {
    RealVec y = dft::CircularConvolution(x, kernel);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CircularConvolution)->Arg(128)->Arg(1024);

void BM_EuclideanDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 5);
  RealVec y = MakeSeries(n, 6);
  // Per-iteration answer checksum: every iteration must reproduce the
  // same bits, so the optimizer cannot skip the verified arithmetic and
  // a nondeterministic kernel fails the bench instead of polluting it.
  const double first = EuclideanDistance(x, y);
  double acc = 0.0;
  for (auto _ : state) {
    const double d = EuclideanDistance(x, y);
    if (Bits(d) != Bits(first)) state.SkipWithError("answer drift");
    acc += d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EuclideanDistance)->Arg(128)->Arg(1024);

void BM_EarlyAbandonDistanceFrequencyDomain(benchmark::State& state) {
  // The paper's scan trick: frequency-domain vectors abandon after a few
  // coefficients because the energy is concentrated up front.
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 7));
  ComplexVec y = dft::Forward(MakeSeries(n, 8));
  const double first = EarlyAbandonEuclidean(x, y, 1.0).value_or(-1.0);
  double acc = 0.0;
  for (auto _ : state) {
    const double d = EarlyAbandonEuclidean(x, y, 1.0).value_or(-1.0);
    if (Bits(d) != Bits(first)) state.SkipWithError("answer drift");
    acc += d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EarlyAbandonDistanceFrequencyDomain)->Arg(128)->Arg(1024);

void BM_TransformedPairDistanceFused(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 9));
  ComplexVec y = dft::Forward(MakeSeries(n, 10));
  LinearTransform t = transforms::MovingAverage(n, 20);
  const double first = EarlyAbandonPairDistance(x, y, &t, 1.0).value_or(-1.0);
  double acc = 0.0;
  for (auto _ : state) {
    const double d = EarlyAbandonPairDistance(x, y, &t, 1.0).value_or(-1.0);
    if (Bits(d) != Bits(first)) state.SkipWithError("answer drift");
    acc += d;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_TransformedPairDistanceFused)->Arg(128)->Arg(1024);

void BM_TransformApplyFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 11));
  LinearTransform t = transforms::MovingAverage(n, 20);
  for (auto _ : state) {
    ComplexVec y = t.Apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TransformApplyFull)->Arg(128)->Arg(1024);

void BM_NormalForm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 12);
  for (auto _ : state) {
    NormalForm nf = ToNormalForm(x);
    benchmark::DoNotOptimize(nf.normalized.data());
  }
}
BENCHMARK(BM_NormalForm)->Arg(128)->Arg(1024);

void BM_CircularMovingAverage(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 13);
  for (auto _ : state) {
    RealVec y = CircularMovingAverage(x, 20);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CircularMovingAverage)->Arg(128)->Arg(1024);

void BM_FeatureExtraction(benchmark::State& state) {
  // The full ingest pipeline per series: normal form + DFT + point.
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 14);
  FeatureExtractor extractor(FeatureLayout::Paper());
  for (auto _ : state) {
    SeriesFeatures f = extractor.Extract(x);
    spatial::Point p = extractor.ToPoint(f);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(128)->Arg(1024);

// ---------------------------------------------------------------------------
// Deterministic per-level kernel sweep -> BENCH_kernels.json
// ---------------------------------------------------------------------------

/// One timed cell: mean ns per call and the bitwise answer checksum
/// accumulated across every iteration (identical inputs each iteration,
/// so the checksum doubles as a per-iteration answer check once compared
/// across dispatch levels).
struct Cell {
  double ns_per_call = 0.0;
  double checksum = 0.0;
};

template <typename Fn>
Cell TimeKernel(size_t iters, Fn&& call) {
  for (size_t i = 0; i < 3; ++i) call(i);  // Warm caches and pages.
  Cell cell;
  Stopwatch watch;
  for (size_t i = 0; i < iters; ++i) cell.checksum += call(i);
  cell.ns_per_call = static_cast<double>(watch.ElapsedNanos()) /
                     static_cast<double>(iters);
  return cell;
}

/// Sweeps every compiled dispatch level over the kernel table for lengths
/// {64, 256, 1024, 8192}, enforces bitwise cross-level checksum equality,
/// prints the speedup table and writes BENCH_kernels.json.
void KernelSweep() {
  bench::Banner(
      "src/simd kernel sweep: ns/call per dispatch level",
      "Squared-distance (full + early-abandon), batched rect MINDIST,\n"
      "moments and DFT-projection elementwise kernels; each (kernel, n)\n"
      "cell must produce bit-identical checksums at every level.");

  const simd::Level best = simd::BestSupportedLevel();
  std::printf("  dispatched level on this host: %s\n\n",
              simd::LevelName(simd::ActiveLevel()));

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("kernels");
  bench::Json host = bench::Json::Object();
  host["best_level"] = bench::Json::Str(simd::LevelName(best));
  host["dispatched_level"] =
      bench::Json::Str(simd::LevelName(simd::ActiveLevel()));
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);

  bench::Table table({"kernel", "n", "level", "ns/call", "speedup"});
  bench::Json rows = bench::Json::Array();
  double speedup_1024_distance = 0.0;

  for (const size_t n : {64u, 256u, 1024u, 8192u}) {
    Rng rng(20260808 + n);
    RealVec x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(-1.0, 1.0);
      y[i] = rng.Uniform(-1.0, 1.0);
    }
    // Batched MINDIST works in feature space: paper-shaped 6-d rects,
    // `n` of them per call (the sweep variable is the batch size).
    const size_t kDims = 6;
    std::vector<double> rect_data(2 * kDims * n);
    std::vector<const double*> los(n), his(n);
    for (size_t r = 0; r < n; ++r) {
      double* lo = &rect_data[2 * kDims * r];
      double* hi = lo + kDims;
      for (size_t d = 0; d < kDims; ++d) {
        const double a = rng.Uniform(-1.0, 1.0);
        const double b = rng.Uniform(-1.0, 1.0);
        lo[d] = a < b ? a : b;
        hi[d] = a < b ? b : a;
      }
      los[r] = lo;
      his[r] = hi;
    }
    std::vector<double> mindist_out(n);
    std::vector<double> shifted(n);
    std::vector<double> widened(2 * n);

    const simd::KernelTable& scalar = simd::KernelsFor(simd::Level::kScalar);
    const double full = scalar.sum_squared_diff(x.data(), y.data(), n);
    const double ea_limit = 0.25 * full;  // Abandons partway through.
    const double mean = scalar.sum(x.data(), n) / static_cast<double>(n);

    const size_t iters =
        std::max<size_t>(bench::Scaled(67'108'864 / n, 64), 64);

    struct Kernel {
      const char* name;
      std::function<double(const simd::KernelTable&, size_t)> call;
    };
    const Kernel kernels[] = {
        {"sum_squared_diff",
         [&](const simd::KernelTable& k, size_t) {
           return k.sum_squared_diff(x.data(), y.data(), n);
         }},
        {"sum_squared_diff_ea",
         [&](const simd::KernelTable& k, size_t) {
           return k.sum_squared_diff_ea(x.data(), y.data(), n, ea_limit);
         }},
        {"min_dist_squared_batch",
         [&](const simd::KernelTable& k, size_t i) {
           k.min_dist_squared_batch(x.data(), los.data(), his.data(), n,
                                    kDims, mindist_out.data());
           return mindist_out[i & (n - 1)] + mindist_out[n - 1];
         }},
        {"moments",
         [&](const simd::KernelTable& k, size_t) {
           return k.sum(x.data(), n) +
                  k.centered_sum_squares(x.data(), n, mean);
         }},
        {"scale_shift",
         [&](const simd::KernelTable& k, size_t i) {
           k.scale_shift(x.data(), n, mean, 3.25, shifted.data());
           return shifted[i & (n - 1)] + shifted[n - 1];
         }},
        {"widen_to_complex",
         [&](const simd::KernelTable& k, size_t i) {
           k.widen_to_complex(x.data(), n, widened.data());
           return widened[(2 * i) & (2 * n - 1)] + widened[2 * n - 2];
         }},
    };

    for (const Kernel& kernel : kernels) {
      double scalar_ns = 0.0;
      double scalar_checksum = 0.0;
      for (int l = 0; l <= static_cast<int>(best); ++l) {
        const simd::Level level = static_cast<simd::Level>(l);
        const simd::KernelTable& k = simd::KernelsFor(level);
        const Cell cell =
            TimeKernel(iters, [&](size_t i) { return kernel.call(k, i); });
        if (level == simd::Level::kScalar) {
          scalar_ns = cell.ns_per_call;
          scalar_checksum = cell.checksum;
        }
        TSQ_CHECK_MSG(Bits(cell.checksum) == Bits(scalar_checksum),
                      "cross-level checksum mismatch: the determinism "
                      "contract is broken");
        const double speedup = scalar_ns / cell.ns_per_call;
        if (std::string(kernel.name) == "sum_squared_diff" && n == 1024 &&
            level == simd::ActiveLevel()) {
          speedup_1024_distance = speedup;
        }
        table.AddRow({kernel.name, std::to_string(n),
                      simd::LevelName(level),
                      bench::Table::Num(cell.ns_per_call, 1),
                      bench::Table::Num(speedup, 2) + "x"});
        bench::Json row = bench::Json::Object();
        row["kernel"] = bench::Json::Str(kernel.name);
        row["n"] = bench::Json::Int(n);
        row["level"] = bench::Json::Str(simd::LevelName(level));
        row["ns_per_call"] = bench::Json::Num(cell.ns_per_call);
        row["speedup_vs_scalar"] = bench::Json::Num(speedup);
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016" PRIx64, Bits(cell.checksum));
        row["checksum"] = bench::Json::Str(hex);
        rows.Append(std::move(row));
      }
    }
  }
  table.Print();
  doc["rows"] = std::move(rows);
  // The headline number the perf trajectory tracks: dispatched-vs-scalar
  // on the 1024-length distance kernel (the kNN verify hot loop).
  doc["speedup_1024_distance"] = bench::Json::Num(speedup_1024_distance);
  std::printf("\n  dispatched speedup on 1024-length distance kernel: %.2fx\n",
              speedup_1024_distance);

  const char* out_path = "BENCH_kernels.json";
  if (doc.WriteFile(out_path)) {
    std::printf("  wrote %s\n\n", out_path);
  } else {
    std::printf("  WARNING: could not write %s\n\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

// Like BENCHMARK_MAIN(), but first runs the deterministic kernel sweep
// (which writes BENCH_kernels.json and enforces cross-level bitwise
// equality on its own workload) before the google-benchmark
// registrations.
int main(int argc, char** argv) {
  tsq::KernelSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
