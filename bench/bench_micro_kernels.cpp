// Copyright (c) 2026 The tsq Authors.
//
// Micro-benchmarks (google-benchmark) for the computational kernels: FFT
// variants, unitary DFT, circular convolution, distance kernels (full,
// early-abandon, fused transform+distance), feature extraction and moving
// averages. These quantify the constant factors behind the paper's curves
// (e.g. the CPU-only gap in Figures 8/9 is the rect-transform + complex
// multiply cost measured here).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/feature.h"
#include "dft/dft.h"
#include "dft/fft.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "core/seq_scan.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

RealVec MakeSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  return workload::RandomWalkSeries(&rng, n, {});
}

ComplexVec MakeComplex(size_t n, uint64_t seed) {
  Rng rng(seed);
  ComplexVec out(n);
  for (Complex& c : out) {
    c = Complex(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
  }
  return out;
}

void BM_FftRadix2(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = MakeComplex(n, 1);
  for (auto _ : state) {
    ComplexVec y = x;
    fft::TransformRadix2(&y, false);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FftRadix2)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_FftBluestein(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = MakeComplex(n, 2);
  for (auto _ : state) {
    ComplexVec y = x;
    fft::TransformBluestein(&y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(63)->Arg(127)->Arg(1000)->Arg(1023);

void BM_UnitaryDftRealInput(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 3);
  for (auto _ : state) {
    ComplexVec X = dft::Forward(x);
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_UnitaryDftRealInput)->Arg(128)->Arg(1024);

void BM_CircularConvolution(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 4);
  RealVec kernel = MovingAverageKernel(n, 20);
  for (auto _ : state) {
    RealVec y = dft::CircularConvolution(x, kernel);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CircularConvolution)->Arg(128)->Arg(1024);

void BM_EuclideanDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 5);
  RealVec y = MakeSeries(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(x, y));
  }
}
BENCHMARK(BM_EuclideanDistance)->Arg(128)->Arg(1024);

void BM_EarlyAbandonDistanceFrequencyDomain(benchmark::State& state) {
  // The paper's scan trick: frequency-domain vectors abandon after a few
  // coefficients because the energy is concentrated up front.
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 7));
  ComplexVec y = dft::Forward(MakeSeries(n, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EarlyAbandonEuclidean(x, y, 1.0));
  }
}
BENCHMARK(BM_EarlyAbandonDistanceFrequencyDomain)->Arg(128)->Arg(1024);

void BM_TransformedPairDistanceFused(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 9));
  ComplexVec y = dft::Forward(MakeSeries(n, 10));
  LinearTransform t = transforms::MovingAverage(n, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EarlyAbandonPairDistance(x, y, &t, 1.0));
  }
}
BENCHMARK(BM_TransformedPairDistanceFused)->Arg(128)->Arg(1024);

void BM_TransformApplyFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ComplexVec x = dft::Forward(MakeSeries(n, 11));
  LinearTransform t = transforms::MovingAverage(n, 20);
  for (auto _ : state) {
    ComplexVec y = t.Apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TransformApplyFull)->Arg(128)->Arg(1024);

void BM_NormalForm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 12);
  for (auto _ : state) {
    NormalForm nf = ToNormalForm(x);
    benchmark::DoNotOptimize(nf.normalized.data());
  }
}
BENCHMARK(BM_NormalForm)->Arg(128)->Arg(1024);

void BM_CircularMovingAverage(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 13);
  for (auto _ : state) {
    RealVec y = CircularMovingAverage(x, 20);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CircularMovingAverage)->Arg(128)->Arg(1024);

void BM_FeatureExtraction(benchmark::State& state) {
  // The full ingest pipeline per series: normal form + DFT + point.
  const size_t n = static_cast<size_t>(state.range(0));
  RealVec x = MakeSeries(n, 14);
  FeatureExtractor extractor(FeatureLayout::Paper());
  for (auto _ : state) {
    SeriesFeatures f = extractor.Extract(x);
    spatial::Point p = extractor.ToPoint(f);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace tsq

BENCHMARK_MAIN();
