// Copyright (c) 2026 The tsq Authors.
//
// Ablations of the design choices DESIGN.md calls out:
//   1. number of indexed coefficients k — filter power (candidates per
//      query) vs index dimensionality;
//   2. polar vs rectangular coordinate space — identical correctness for
//      identity queries; polar additionally admits multiplicative
//      transforms (moving average), which rectangular must reject;
//   3. R* forced reinsertion on/off — node accesses per query.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "transform/builtin.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

workload::StockMarketOptions MarketOptions() {
  workload::StockMarketOptions opts;
  opts.num_series = 800;
  return opts;
}

void RunCoefficientSweep(const std::vector<TimeSeries>& market) {
  bench::Banner("Ablation 1: number of indexed DFT coefficients (k)",
                "More coefficients -> fewer candidates (better filtering) "
                "but higher dimensionality (larger index, fatter nodes).");
  bench::Table table({"k", "index dims", "tree height", "avg candidates",
                      "avg answers", "avg query ms"});
  const int kQueries = static_cast<int>(bench::Scaled(12, 3));
  for (const size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    bench::ScratchDir dir("abl_k" + std::to_string(k));
    DatabaseOptions base;
    base.layout = FeatureLayout::Paper();
    base.layout.num_coefficients = k;
    auto db = bench::BuildDatabase(dir.path(), "abl", market, base);
    double ms = 0.0;
    uint64_t candidates = 0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 67) % market.size()].values();
      ms += bench::MeanMillis(
          [&db, &query]() { db->RangeQuery(query, 2.0).value(); }, 3);
      candidates += db->last_stats().candidates;
      answers += db->last_stats().answers;
    }
    table.AddRow({std::to_string(k),
                  std::to_string(db->options().layout.dims()),
                  std::to_string(db->index()->tree()->height()),
                  bench::Table::Num(static_cast<double>(candidates) / kQueries,
                                    1),
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1),
                  bench::Table::Num(ms / kQueries)});
  }
  table.Print();
}

void RunSpaceComparison(const std::vector<TimeSeries>& market) {
  bench::Banner(
      "Ablation 2: polar (Spol) vs rectangular (Srect) coordinate space",
      "Identity queries behave the same; only Spol admits the moving-"
      "average transform (Theorem 3), which Srect must reject (Theorem 2).");
  bench::Table table({"space", "avg candidates", "avg answers",
                      "avg query ms", "accepts Tmavg20?"});
  const int kQueries = 12;
  for (const bool polar : {true, false}) {
    bench::ScratchDir dir(polar ? "abl_polar" : "abl_rect");
    DatabaseOptions base;
    base.layout = FeatureLayout::Paper();
    base.layout.space =
        polar ? CoordinateSpace::kPolar : CoordinateSpace::kRectangular;
    auto db = bench::BuildDatabase(dir.path(), "abl", market, base);
    double ms = 0.0;
    uint64_t candidates = 0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 67) % market.size()].values();
      ms += bench::MeanMillis(
          [&db, &query]() { db->RangeQuery(query, 2.0).value(); }, 3);
      candidates += db->last_stats().candidates;
      answers += db->last_stats().answers;
    }
    QuerySpec ma;
    ma.transform =
        FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
    const bool accepts =
        db->RangeQuery(market[0].values(), 2.0, ma).ok();
    table.AddRow({polar ? "polar" : "rectangular",
                  bench::Table::Num(static_cast<double>(candidates) / kQueries,
                                    1),
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1),
                  bench::Table::Num(ms / kQueries),
                  accepts ? "yes" : "no (rejected, Theorem 2)"});
  }
  table.Print();
}

void RunReinsertAblation(const std::vector<TimeSeries>& market) {
  bench::Banner("Ablation 3: R* forced reinsertion on/off",
                "Reinsertion spends insert-time work to tighten MBRs; the "
                "payoff is fewer node accesses per query.");
  bench::Table table({"forced reinsert", "build ms", "avg nodes/query",
                      "avg query ms"});
  const int kQueries = 12;
  for (const bool reinsert : {true, false}) {
    bench::ScratchDir dir(reinsert ? "abl_re1" : "abl_re0");
    DatabaseOptions base;
    base.rtree.forced_reinsert = reinsert;
    Stopwatch build_watch;
    auto db = bench::BuildDatabase(dir.path(), "abl", market, base);
    const double build_ms = build_watch.ElapsedMillis();
    double ms = 0.0;
    uint64_t nodes = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 67) % market.size()].values();
      ms += bench::MeanMillis(
          [&db, &query]() { db->RangeQuery(query, 2.0).value(); }, 3);
      nodes += db->last_stats().nodes_visited;
    }
    table.AddRow({reinsert ? "on" : "off", bench::Table::Num(build_ms, 1),
                  bench::Table::Num(static_cast<double>(nodes) / kQueries, 1),
                  bench::Table::Num(ms / kQueries)});
  }
  table.Print();
}

void RunBulkLoadAblation(const std::vector<TimeSeries>& market) {
  bench::Banner("Ablation 4: STR bulk loading vs repeated insertion",
                "Static data sets (the paper's setting) can pack the tree "
                "in one pass; repeated insertion is the dynamic baseline.");
  bench::Table table({"build method", "build ms", "tree height",
                      "avg nodes/query", "avg query ms"});
  const int kQueries = 12;
  for (const bool bulk : {true, false}) {
    bench::ScratchDir dir(bulk ? "abl_bulk" : "abl_incr");
    DatabaseOptions base;
    base.bulk_load = bulk;
    Stopwatch build_watch;
    auto db = bench::BuildDatabase(dir.path(), "abl", market, base);
    const double build_ms = build_watch.ElapsedMillis();
    double ms = 0.0;
    uint64_t nodes = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 67) % market.size()].values();
      ms += bench::MeanMillis(
          [&db, &query]() { db->RangeQuery(query, 2.0).value(); }, 3);
      nodes += db->last_stats().nodes_visited;
    }
    table.AddRow({bulk ? "STR bulk load" : "repeated insert",
                  bench::Table::Num(build_ms, 1),
                  std::to_string(db->index()->tree()->height()),
                  bench::Table::Num(static_cast<double>(nodes) / kQueries, 1),
                  bench::Table::Num(ms / kQueries)});
  }
  table.Print();
}

void RunBasisAblation(const std::vector<TimeSeries>& market) {
  bench::Banner("Ablation 5: Fourier vs Haar coefficient basis",
                "Both bases are orthonormal (Parseval), so correctness is "
                "identical; filter power on stock-like data differs.");
  bench::Table table({"basis", "avg candidates", "avg answers",
                      "avg query ms"});
  const int kQueries = 12;
  for (const bool use_haar : {false, true}) {
    bench::ScratchDir dir(use_haar ? "abl_haar" : "abl_dft");
    DatabaseOptions base;
    if (use_haar) {
      base.layout = FeatureLayout::Haar(2);  // same 6-D budget as Paper()
    }
    auto db = bench::BuildDatabase(dir.path(), "abl", market, base);
    double ms = 0.0;
    uint64_t candidates = 0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 67) % market.size()].values();
      ms += bench::MeanMillis(
          [&db, &query]() { db->RangeQuery(query, 2.0).value(); }, 3);
      candidates += db->last_stats().candidates;
      answers += db->last_stats().answers;
    }
    table.AddRow({use_haar ? "Haar (k=2)" : "Fourier (k=2, paper)",
                  bench::Table::Num(static_cast<double>(candidates) / kQueries,
                                    1),
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1),
                  bench::Table::Num(ms / kQueries)});
  }
  table.Print();
}

}  // namespace
}  // namespace tsq

int main() {
  auto market = tsq::workload::MakeStockMarket(31337, tsq::MarketOptions());
  tsq::RunCoefficientSweep(market);
  tsq::RunSpaceComparison(market);
  tsq::RunReinsertAblation(market);
  tsq::RunBulkLoadAblation(market);
  tsq::RunBasisAblation(market);
  return 0;
}
