// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Figure 12: query time versus answer-set size on the
// (simulated) stock relation of 1067 series x 128 days. The threshold is
// swept so the answer set grows from a handful to most of the relation.
// Expected shape: the index wins while answers are selective and loses to
// the sequential scan once the answer set reaches roughly one third of the
// relation (paper: crossover near 300 of 1067).

#include <cstdio>

#include "bench_util.h"
#include "transform/builtin.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Figure 12: time per query varying the size of the answer set",
      "Simulated stock relation, 1067 series x 128 days (paper data set "
      "shape).\nPaper shape: index wins until the answer set is ~1/3 of "
      "the relation.");

  bench::ScratchDir dir("fig12");
  auto market = workload::MakeStockMarket(20260612);
  market.resize(bench::Scaled(market.size(), 128));
  auto db = bench::BuildDatabase(dir.path(), "fig12", market);
  const size_t kLength = 128;
  const int kQueries = static_cast<int>(bench::Scaled(8, 2));

  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Identity(kLength));

  bench::Table table(
      {"epsilon", "avg answers", "index ms", "seqscan ms", "winner"});

  double crossover_answers = -1.0;
  for (const double eps :
       {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 20.0}) {
    double index_ms = 0.0;
    double scan_ms = 0.0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 127) % market.size()].values();
      index_ms += bench::MeanMillis(
          [&db, &query, eps, &spec]() {
            db->RangeQuery(query, eps, spec).value();
          },
          2);
      answers += db->last_stats().answers;
      scan_ms += bench::MeanMillis(
          [&db, &query, eps, &spec]() {
            db->ScanRangeQuery(query, eps, spec, /*early_abandon=*/true)
                .value();
          },
          2);
    }
    index_ms /= kQueries;
    scan_ms /= kQueries;
    const double avg_answers = static_cast<double>(answers) / kQueries;
    const bool index_wins = index_ms <= scan_ms;
    if (!index_wins && crossover_answers < 0.0) {
      crossover_answers = avg_answers;
    }
    table.AddRow({bench::Table::Num(eps, 1),
                  bench::Table::Num(avg_answers, 1),
                  bench::Table::Num(index_ms), bench::Table::Num(scan_ms),
                  index_wins ? "index" : "seqscan"});
  }
  table.Print();
  if (crossover_answers >= 0.0) {
    std::printf(
        "\n  crossover: the scan first wins at ~%.0f answers "
        "(%.0f%% of 1067; paper: ~300 = 28%%)\n",
        crossover_answers, 100.0 * crossover_answers / 1067.0);
  } else {
    std::printf(
        "\n  crossover: not reached in this sweep — the index won every "
        "row (shape still consistent: the gap narrows as answers grow)\n");
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
