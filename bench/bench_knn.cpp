// Copyright (c) 2026 The tsq Authors.
//
// Nearest-neighbor queries (Sec. 4: "similarly ... nearest neighbor
// queries can be processed efficiently using the index"). The paper claims
// but does not plot NN performance; this harness measures the optimal
// multi-step kNN (best-first lower-bound streaming + full-length
// verification) against the scan, with and without transformations, on
// the paper-shaped stock relation.

#include <cstdio>
#include <cstdint>
#include <cstring>

#include "bench_util.h"
#include "common/macros.h"
#include "transform/builtin.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Order-sensitive answer checksum; bitwise-compared across iterations so
// the optimizer cannot elide the verified work and a nondeterministic
// answer set aborts the bench instead of silently skewing it.
double MatchChecksum(const std::vector<Match>& matches) {
  double acc = 0.0;
  for (const Match& m : matches) {
    acc = acc * 1.0009765625 + m.distance + static_cast<double>(m.id);
  }
  return acc;
}

void Run() {
  bench::Banner(
      "k-nearest-neighbor queries (Sec. 4 capability; no paper figure)",
      "Simulated stock relation, 1067 x 128; optimal multi-step kNN vs "
      "full scan ranking.");

  bench::ScratchDir dir("knn");
  auto market = workload::MakeStockMarket(481516);
  market.resize(bench::Scaled(market.size(), 128));
  auto db = bench::BuildDatabase(dir.path(), "knn", market);
  const int kQueries = static_cast<int>(bench::Scaled(10, 2));

  bench::Table table({"k", "transform", "index ms", "scan ms", "speedup",
                      "avg candidates verified"});

  for (const size_t k : {1u, 10u, 50u}) {
    for (const bool transformed : {false, true}) {
      QuerySpec spec;
      if (transformed) {
        spec.transform =
            FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
      }
      double index_ms = 0.0;
      double scan_ms = 0.0;
      uint64_t verified = 0;
      for (int q = 0; q < kQueries; ++q) {
        const RealVec& query = market[(q * 97) % market.size()].values();
        const double expected = MatchChecksum(db->Knn(query, k, spec).value());
        index_ms += bench::MeanMillis(
            [&db, &query, k, &spec, expected]() {
              const double got = MatchChecksum(db->Knn(query, k, spec).value());
              TSQ_CHECK_MSG(Bits(got) == Bits(expected),
                            "kNN answer drift across iterations");
            },
            2);
        verified += db->last_stats().verified;
        // Scan ranking: a full pass with an infinite threshold, then
        // take the top k (what a user without the index would run).
        const double scan_expected = MatchChecksum(
            db->ScanRangeQuery(query, 1e18, spec, /*early_abandon=*/false)
                .value());
        scan_ms += bench::MeanMillis(
            [&db, &query, &spec, scan_expected]() {
              const double got = MatchChecksum(
                  db->ScanRangeQuery(query, 1e18, spec,
                                     /*early_abandon=*/false)
                      .value());
              TSQ_CHECK_MSG(Bits(got) == Bits(scan_expected),
                            "scan answer drift across iterations");
            },
            2);
      }
      index_ms /= kQueries;
      scan_ms /= kQueries;
      table.AddRow({std::to_string(k), transformed ? "mavg20" : "none",
                    bench::Table::Num(index_ms), bench::Table::Num(scan_ms),
                    bench::Table::Num(scan_ms / index_ms, 1) + "x",
                    bench::Table::Num(
                        static_cast<double>(verified) / kQueries, 1)});
    }
  }
  table.Print();
  std::printf(
      "\n  shape: the multi-step kNN verifies a handful of candidates and "
      "beats the full-ranking scan; the margin narrows as k grows (more "
      "verification work) — the classic GEMINI NN economics.\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
