// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Figure 11: index-with-transformations versus the tuned
// sequential scan, varying the number of sequences at fixed length 128.
// Expected shape: the index wins everywhere and the gap widens with the
// relation size.

#include <cstdio>

#include "bench_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Figure 11: index vs sequential scan, varying the number of sequences",
      "Sequence length 128; both methods run the same transformed queries.\n"
      "Paper shape: index far below scan; gap grows with the count.");

  bench::Table table(
      {"sequences", "index ms", "seqscan ms", "speedup", "avg answers"});

  const size_t kLength = 128;
  const int kQueries = static_cast<int>(bench::Scaled(10, 3));
  const double kEps = 0.12 * 11.3137;  // matches Figures 8/9

  for (const size_t full_count :
       {500u, 1000u, 2000u, 4000u, 8000u, 12000u}) {
    const size_t count = bench::Scaled(full_count, 64);
    bench::ScratchDir dir("fig11_" + std::to_string(count));
    auto data = workload::MakeRandomWalkDataset(1117 + count, count, kLength);
    auto db = bench::BuildDatabase(dir.path(), "fig11", data);

    QuerySpec spec;
    spec.transform =
        FeatureTransform::Spectral(transforms::Identity(kLength));

    double index_ms = 0.0;
    double scan_ms = 0.0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = data[(q * 211) % count].values();
      index_ms += bench::MeanMillis(
          [&db, &query, kEps, &spec]() {
            db->RangeQuery(query, kEps, spec).value();
          },
          2);
      answers += db->last_stats().answers;
      scan_ms += bench::MeanMillis(
          [&db, &query, kEps, &spec]() {
            db->ScanRangeQuery(query, kEps, spec, /*early_abandon=*/true)
                .value();
          },
          2);
    }
    index_ms /= kQueries;
    scan_ms /= kQueries;

    table.AddRow({std::to_string(count), bench::Table::Num(index_ms),
                  bench::Table::Num(scan_ms),
                  bench::Table::Num(scan_ms / index_ms, 1) + "x",
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1)});
  }
  table.Print();
  std::printf(
      "\n  shape check: speedup > 1 on every row and grows with the "
      "relation size.\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
