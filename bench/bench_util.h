// Copyright (c) 2026 The tsq Authors.
//
// Shared plumbing for the paper-reproduction benchmark harness: scratch
// directories, database construction from generated workloads, repeated
// timing, and aligned table output so every binary prints rows in the
// shape of the paper's figures/tables.

#ifndef TSQ_BENCH_BENCH_UTIL_H_
#define TSQ_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "series/time_series.h"

namespace tsq {
namespace bench {

/// A unique scratch directory under /tmp, removed at destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag);
  ~ScratchDir();
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Builds a Database over `series`, inserts everything, builds the index.
/// Aborts on error (benchmarks have no error consumers).
std::unique_ptr<Database> BuildDatabase(const std::string& directory,
                                        const std::string& name,
                                        const std::vector<TimeSeries>& series,
                                        const DatabaseOptions& base_options =
                                            DatabaseOptions{});

/// Runs `fn` `reps` times; returns the mean elapsed milliseconds.
double MeanMillis(const std::function<void()>& fn, int reps);

/// Workload scale divisor from the TSQ_BENCH_SMOKE environment variable
/// (>= 1; 1 when unset or unparsable). The ctest `bench_smoke` entries
/// set it so every figure-reproduction binary runs its full code path on
/// a shrunken workload instead of silently rotting.
size_t SmokeDivisor();

/// n divided by SmokeDivisor(), never below `floor`. Route every
/// workload-sized constant (series counts, query counts, repetitions)
/// through this.
size_t Scaled(size_t n, size_t floor = 1);

/// Aligned-column table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// Formats a double with `prec` decimals.
  static std::string Num(double v, int prec = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard benchmark banner (experiment id + paper reference).
void Banner(const std::string& experiment, const std::string& description);

/// A minimal JSON value for the machine-readable BENCH_*.json artifacts
/// the benches drop next to their console tables (CI uploads them so the
/// perf trajectory is tracked across PRs). Supports exactly what those
/// files need: objects (insertion-ordered), arrays, strings, doubles,
/// unsigned integers and booleans. Build with the factory functions and
/// operator[]/Append, then Dump() or WriteFile().
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string v);
  static Json Num(double v);
  static Json Int(uint64_t v);
  static Json Bool(bool v);

  /// Object member access; inserts a null member on first use (insertion
  /// order is preserved in the output). The value must be an object.
  Json& operator[](const std::string& key);

  /// Appends an element. The value must be an array.
  void Append(Json v);

  /// Serializes with 2-space indentation.
  std::string Dump() const;

  /// Writes Dump() to `path` (truncating); returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  enum class Kind { kNull, kObject, kArray, kString, kNumber, kInt, kBool };

  explicit Json(Kind kind) : kind_(kind) {}
  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  double number_ = 0.0;
  uint64_t int_ = 0;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> elements_;                         // kArray
};

}  // namespace bench
}  // namespace tsq

#endif  // TSQ_BENCH_BENCH_UTIL_H_
