// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Figure 8: range-query time versus sequence length (64..1024)
// on 1,000 synthetic random-walk sequences, comparing
//   (a) queries through the index WITH the transformation machinery
//       engaged (identity transformation, exactly as the paper does for a
//       precise comparison), against
//   (b) plain index queries with no transformations.
// Expected shape: the two curves differ by a small constant (the CPU cost
// of the on-the-fly MBR transformation); disk/node accesses are identical.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Figure 8: time per query varying the sequence length",
      "1000 synthetic sequences; identity transformation vs no "
      "transformation.\nPaper shape: constant gap (CPU only), identical "
      "disk accesses.");

  bench::Table table({"length", "no-transform ms", "with-transform ms",
                      "gap ms", "nodes (plain)", "nodes (transf)",
                      "avg answers"});

  const size_t kNumSeries = bench::Scaled(1000, 64);
  const int kQueries = static_cast<int>(bench::Scaled(25, 4));

  for (const size_t length : {64u, 128u, 256u, 512u, 1024u}) {
    bench::ScratchDir dir("fig08_" + std::to_string(length));
    auto data = workload::MakeRandomWalkDataset(813 + length, kNumSeries,
                                                length);
    auto db = bench::BuildDatabase(dir.path(), "fig08", data);

    // Selective threshold, scaled so answer sets stay comparable across
    // lengths (normal-form spectra have energy ~ length).
    const double eps = 0.12 * std::sqrt(static_cast<double>(length));

    QuerySpec identity_spec;
    identity_spec.transform =
        FeatureTransform::Spectral(transforms::Identity(length));

    double plain_ms = 0.0;
    double transformed_ms = 0.0;
    uint64_t plain_nodes = 0;
    uint64_t transformed_nodes = 0;
    uint64_t answers = 0;

    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query =
          data[(q * 37) % kNumSeries].values();  // stored series as queries

      plain_ms += bench::MeanMillis(
          [&db, &query, eps]() { db->RangeQuery(query, eps).value(); }, 3);
      plain_nodes += db->last_stats().nodes_visited;

      transformed_ms += bench::MeanMillis(
          [&db, &query, eps, &identity_spec]() {
            db->RangeQuery(query, eps, identity_spec).value();
          },
          3);
      transformed_nodes += db->last_stats().nodes_visited;
      answers += db->last_stats().answers;
    }
    plain_ms /= kQueries;
    transformed_ms /= kQueries;

    table.AddRow({std::to_string(length), bench::Table::Num(plain_ms),
                  bench::Table::Num(transformed_ms),
                  bench::Table::Num(transformed_ms - plain_ms),
                  std::to_string(plain_nodes / kQueries),
                  std::to_string(transformed_nodes / kQueries),
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1)});
  }
  table.Print();
  std::printf(
      "\n  shape check: node accesses identical per row; the transform "
      "column exceeds the plain column by a small CPU-only constant.\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
