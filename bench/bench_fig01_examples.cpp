// Copyright (c) 2026 The tsq Authors.
//
// Reproduces the paper's Figure 1 / Example 1.1 and Figure 2 / Example 1.2
// (and Appendix A): the motivating moving-average and time-warping
// examples whose data is printed verbatim in the paper, so the numbers
// must match exactly.

#include <cstdio>

#include "bench_util.h"
#include "dft/dft.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/warp.h"
#include "transform/builtin.h"
#include "workload/paper_data.h"

namespace tsq {
namespace {

void RunFigure1() {
  bench::Banner("Figure 1 / Example 1.1 (exact paper data)",
                "3-day moving average makes s1 and s2 similar. "
                "Paper: D(s1,s2)=11.92, D(MA3(s1),MA3(s2))=0.47");
  const TimeSeries s1 = workload::paper::Fig1SeriesS1();
  const TimeSeries s2 = workload::paper::Fig1SeriesS2();
  const double d_raw = EuclideanDistance(s1, s2);
  const double d_ma = EuclideanDistance(CircularMovingAverage(s1.values(), 3),
                                        CircularMovingAverage(s2.values(), 3));

  // The same computation through the transformation language (Sec. 3.2):
  // Tmavg3 applied to the DFTs, distance in the frequency domain.
  const LinearTransform tmavg3 = transforms::MovingAverage(15, 3);
  const ComplexVec ts1 = tmavg3.Apply(dft::Forward(s1.values()));
  const ComplexVec ts2 = tmavg3.Apply(dft::Forward(s2.values()));
  const double d_freq = cvec::Distance(ts1, ts2);

  bench::Table table({"quantity", "paper", "measured"});
  table.AddRow({"D(s1, s2)", "11.92", bench::Table::Num(d_raw, 2)});
  table.AddRow({"D(MA3 s1, MA3 s2) [time domain]", "0.47",
                bench::Table::Num(d_ma, 2)});
  table.AddRow({"D(Tmavg3 S1, Tmavg3 S2) [freq domain]", "0.47",
                bench::Table::Num(d_freq, 2)});
  table.Print();
}

void RunFigure2() {
  bench::Banner("Figure 2 / Example 1.2 + Appendix A (exact paper data)",
                "Time warping: scaling p's time axis by 2 yields s; the "
                "Appendix A transform builds the warped spectrum directly.");
  const TimeSeries p = workload::paper::Fig2SeriesP();
  const TimeSeries s = workload::paper::Fig2SeriesS();

  const RealVec stretched = StretchTime(p.values(), 2);
  const double d_warped = EuclideanDistance(stretched, s.values());

  // Eq. 19: predict s's spectrum from p's spectrum; compare.
  const LinearTransform warp = transforms::TimeWarp(
      4, 2, 4, transforms::WarpConvention::kUnitary);
  const ComplexVec predicted = warp.Apply(dft::Forward(p.values()));
  // The warp transform predicts the first k (= 4) coefficients of the
  // length-8 warped series.
  const ComplexVec actual = dft::Truncate(dft::Forward(s.values()), 4);
  const double spectrum_gap = cvec::Distance(predicted, actual);

  // The claim "distance between p and any length-4 subsequence of s
  // exceeds 1.41".
  double min_sub = 1e18;
  for (size_t off = 0; off + 4 <= s.length(); ++off) {
    RealVec sub(s.values().begin() + static_cast<ptrdiff_t>(off),
                s.values().begin() + static_cast<ptrdiff_t>(off + 4));
    min_sub = std::min(min_sub, EuclideanDistance(p.values(), sub));
  }

  bench::Table table({"quantity", "paper", "measured"});
  table.AddRow({"D(stretch2(p), s)", "0 (identical)",
                bench::Table::Num(d_warped, 4)});
  table.AddRow({"min D(p, subseq4(s))", "> 1.41",
                bench::Table::Num(min_sub, 2)});
  table.AddRow({"|| warp2(DFT p) - DFT s ||", "0 (Eq. 19)",
                bench::Table::Num(spectrum_gap, 12)});
  table.Print();
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::RunFigure1();
  tsq::RunFigure2();
  return 0;
}
