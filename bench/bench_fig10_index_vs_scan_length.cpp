// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Figure 10: index-with-transformations versus the tuned
// sequential scan (frequency-domain storage + early abandoning, exactly
// the paper's "good implementation"), varying the sequence length at 1,000
// sequences. Expected shape: the index wins everywhere and the gap widens
// with the length.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Figure 10: index vs sequential scan, varying the sequence length",
      "1000 synthetic sequences; both methods run the same transformed "
      "queries.\nPaper shape: index far below scan; gap grows with length.");

  bench::Table table({"length", "index ms", "seqscan ms", "speedup",
                      "avg answers"});

  const size_t kNumSeries = bench::Scaled(1000, 64);
  const int kQueries = static_cast<int>(bench::Scaled(15, 3));

  for (const size_t length : {64u, 128u, 256u, 512u, 1024u}) {
    bench::ScratchDir dir("fig10_" + std::to_string(length));
    auto data =
        workload::MakeRandomWalkDataset(1013 + length, kNumSeries, length);
    auto db = bench::BuildDatabase(dir.path(), "fig10", data);

    const double eps = 0.12 * std::sqrt(static_cast<double>(length));
    QuerySpec spec;
    spec.transform =
        FeatureTransform::Spectral(transforms::Identity(length));

    double index_ms = 0.0;
    double scan_ms = 0.0;
    uint64_t answers = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = data[(q * 61) % kNumSeries].values();
      index_ms += bench::MeanMillis(
          [&db, &query, eps, &spec]() {
            db->RangeQuery(query, eps, spec).value();
          },
          2);
      answers += db->last_stats().answers;
      scan_ms += bench::MeanMillis(
          [&db, &query, eps, &spec]() {
            db->ScanRangeQuery(query, eps, spec, /*early_abandon=*/true)
                .value();
          },
          2);
    }
    index_ms /= kQueries;
    scan_ms /= kQueries;

    table.AddRow({std::to_string(length), bench::Table::Num(index_ms),
                  bench::Table::Num(scan_ms),
                  bench::Table::Num(scan_ms / index_ms, 1) + "x",
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1)});
  }
  table.Print();
  std::printf(
      "\n  shape check: speedup > 1 on every row and grows with the "
      "sequence length.\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
