// Copyright (c) 2026 The tsq Authors.
//
// The price of a promise: ingest throughput across the three durability
// levels (none / on-flush / per-batch group commit) at several batch
// sizes, plus the cost of an explicit Flush() barrier at each level.
// Not a paper figure — the paper predates fsync discipline — but the
// trade the levels buy is exactly the classic group-commit curve: small
// batches pay one fdatasync per segment per batch, so per-batch
// durability converges on buffered throughput as the batch grows.
//
// Drops BENCH_durability.json in the working directory so CI archives
// the durability-overhead trajectory across PRs.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

const char* LevelName(Durability level) {
  switch (level) {
    case Durability::kNone:
      return "none";
    case Durability::kOnFlush:
      return "flush";
    case Durability::kPerBatch:
      return "batch";
  }
  return "?";
}

void Run() {
  bench::Banner(
      "Durability overhead: records/sec vs durability level x batch size",
      "Per-batch group commit fdatasyncs each touched segment before the\n"
      "batch is acknowledged; on-flush defers the barrier to Flush();\n"
      "none never syncs. Expected shape: per-batch overhead shrinks as\n"
      "the batch grows (the sync amortizes), on-flush tracks none until\n"
      "the explicit barrier.");

  const size_t kNumSeries = bench::Scaled(2000, 64);
  const size_t kLength = 128;
  const auto data =
      workload::MakeRandomWalkDataset(20260808, kNumSeries, kLength);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  names.reserve(data.size());
  values.reserve(data.size());
  for (const TimeSeries& s : data) {
    names.push_back(s.name());
    values.push_back(s.values());
  }

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("durability");
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(kNumSeries);
  workload_json["length"] = bench::Json::Int(kLength);
  workload_json["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["workload"] = std::move(workload_json);

  bench::ScratchDir dir("durability");
  bench::Table table({"durability", "batch size", "wall ms", "records/sec",
                      "flush ms"});
  bench::Json sweep = bench::Json::Array();

  for (const Durability level :
       {Durability::kNone, Durability::kOnFlush, Durability::kPerBatch}) {
    for (const size_t batch : {size_t{1}, size_t{32}, size_t{512}}) {
      DatabaseOptions options;
      options.directory = dir.path();
      options.name = std::string("d_") + LevelName(level) + "_b" +
                     std::to_string(batch);
      options.relation_segments = 4;
      options.durability = level;
      auto db = Database::Create(options).value();

      // Feed the whole workload as batch-sized InsertBatch calls — each
      // call is one acknowledgment (and, at per-batch, one group
      // commit).
      Stopwatch watch;
      for (size_t start = 0; start < names.size(); start += batch) {
        const size_t end = std::min(start + batch, names.size());
        const std::vector<std::string> batch_names(names.begin() + start,
                                                   names.begin() + end);
        const std::vector<RealVec> batch_values(values.begin() + start,
                                                values.begin() + end);
        db->InsertBatch(batch_names, batch_values).value();
      }
      const double wall_ms = watch.ElapsedMillis();
      TSQ_CHECK_MSG(db->size() == kNumSeries, "ingest lost records");

      // The explicit barrier on top: a no-op at none (buffered flush
      // only), a full fdatasync at the durable levels.
      Stopwatch flush_watch;
      TSQ_CHECK_MSG(db->Flush().ok(), "flush barrier failed");
      const double flush_ms = flush_watch.ElapsedMillis();

      table.AddRow({LevelName(level), std::to_string(batch),
                    bench::Table::Num(wall_ms),
                    bench::Table::Num(1000.0 * kNumSeries / wall_ms, 0),
                    bench::Table::Num(flush_ms)});
      bench::Json row = bench::Json::Object();
      row["durability"] = bench::Json::Str(LevelName(level));
      row["batch_size"] = bench::Json::Int(batch);
      row["wall_ms"] = bench::Json::Num(wall_ms);
      row["records_per_sec"] = bench::Json::Num(1000.0 * kNumSeries / wall_ms);
      row["flush_ms"] = bench::Json::Num(flush_ms);
      sweep.Append(std::move(row));
    }
  }
  table.Print();
  doc["sweep"] = std::move(sweep);

  const char* out_path = "BENCH_durability.json";
  if (doc.WriteFile(out_path)) {
    std::printf("\n  wrote %s\n", out_path);
  } else {
    std::printf("\n  WARNING: could not write %s\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
