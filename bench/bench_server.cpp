// Copyright (c) 2026 The tsq Authors.
//
// tsqd front-end throughput: pipelined frames/second through the full
// network stack — frame decode, admission, execution pool, reply encode,
// loopback TCP — for a connections x pollers sweep, plus the in-process
// RunBatch baseline so the wire overhead is visible. Each connection is
// a raw-socket driver that writes a stream of single-query frames
// back-to-back (no request/reply lockstep), so the poller threads see
// the many-frames-per-recv pattern the multi-poller front end is built
// for. Not a paper figure; it measures the server subsystem the same
// way bench_batch_throughput measures the engine.
//
// Drops BENCH_server.json (schema v2: pipelined rows keyed by pollers x
// connections) next to the console table. CI's bench-perf job archives
// BENCH_*.json per run, so server perf is tracked PR over PR.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

/// Blocking loopback connect; aborts on failure (benchmarks have no
/// error consumers).
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TSQ_CHECK_MSG(fd >= 0, "socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  TSQ_CHECK_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "connect failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Sends the whole pre-encoded frame stream, then reads until `count`
/// replies have decoded. The server buffers replies it cannot flush yet,
/// so write-then-read cannot deadlock.
void DrivePipelined(uint16_t port, const serde::Buffer& stream,
                    size_t count) {
  const int fd = RawConnect(port);
  size_t sent = 0;
  while (sent < stream.size()) {
    const ssize_t n = ::send(fd, stream.data() + sent, stream.size() - sent,
                             MSG_NOSIGNAL);
    TSQ_CHECK_MSG(n > 0, "send failed");
    sent += static_cast<size_t>(n);
  }
  server::FrameReader reader;
  size_t replies = 0;
  uint8_t buf[64 * 1024];
  while (replies < count) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    TSQ_CHECK_MSG(n > 0, "recv failed before all replies arrived");
    Status status = reader.Feed(buf, static_cast<size_t>(n),
                                [&replies](const uint8_t*, size_t) {
                                  ++replies;
                                  return Status::OK();
                                });
    TSQ_CHECK_MSG(status.ok(), "reply stream corrupt: %s",
                  status.ToString().c_str());
  }
  ::close(fd);
}

void Run() {
  bench::Banner(
      "tsqd: pipelined frames/sec vs connections x pollers",
      "Raw-socket drivers stream single-query range frames back-to-back\n"
      "over TCP loopback against one tsqd. Expected shape: more pollers\n"
      "spread the socket work across threads; on a single hardware thread\n"
      "the sweep mostly measures coordination overhead.");
  std::printf("  hardware threads on this host: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t kNumSeries = bench::Scaled(1000, 64);
  const size_t kLength = 128;
  const size_t kFramesPerConnection = bench::Scaled(256, 16);

  bench::ScratchDir scratch("bench_server");
  auto data =
      workload::MakeRandomWalkDataset(20260729, kNumSeries, kLength);
  auto db = bench::BuildDatabase(scratch.path(), "served", data);

  auto make_query = [&](size_t i, uint64_t salt) {
    engine::BatchQuery q;
    q.kind = engine::BatchQueryKind::kRange;
    q.query = data[(i * 13 + salt * 31) % kNumSeries].values();
    q.epsilon = (i % 2 == 0) ? 1.0 : 4.0;
    return q;
  };
  // Per-connection pre-encoded frame stream (one query per frame, ids
  // dense) so the timed region is pure wire + server work.
  auto make_stream = [&](uint64_t salt) {
    serde::Buffer stream;
    for (size_t i = 0; i < kFramesPerConnection; ++i) {
      server::Request request;
      request.verb = server::Verb::kQuery;
      request.id = i + 1;
      request.queries.push_back(make_query(i, salt));
      server::EncodeRequest(request, &stream);
    }
    return stream;
  };

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("server");
  doc["schema_version"] = bench::Json::Int(2);
  bench::Json host = bench::Json::Object();
  host["hardware_threads"] =
      bench::Json::Int(std::thread::hardware_concurrency());
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(kNumSeries);
  workload_json["length"] = bench::Json::Int(kLength);
  workload_json["frames_per_connection"] =
      bench::Json::Int(kFramesPerConnection);
  doc["workload"] = std::move(workload_json);
  bench::Json rows = bench::Json::Array();

  // In-process baseline: the same queries as one RunBatch, no network.
  {
    std::vector<engine::BatchQuery> batch;
    for (size_t i = 0; i < kFramesPerConnection; ++i) {
      batch.push_back(make_query(i, 0));
    }
    const double ms = bench::MeanMillis(
        [&] { db->RunBatch(batch, 0); }, /*reps=*/3);
    const double qps =
        ms > 0.0 ? 1000.0 * static_cast<double>(batch.size()) / ms : 0.0;
    std::printf("  in-process baseline: %.2f ms / batch, %.0f q/s\n\n", ms,
                qps);
    bench::Json row = bench::Json::Object();
    row["mode"] = bench::Json::Str("in_process");
    row["pollers"] = bench::Json::Int(0);
    row["connections"] = bench::Json::Int(0);
    row["wall_ms"] = bench::Json::Num(ms);
    row["frames_per_sec"] = bench::Json::Num(qps);
    rows.Append(std::move(row));
  }

  bench::Table table({"pollers", "conns", "wall ms", "frames/s", "p50us",
                      "p99us", "busy", "backoffs"});
  // Every frame in the sweep is a kQuery, so the server-side per-verb
  // latency histogram for verb="query" captures exactly this workload.
  // Server::Start arms the metrics registry, so it records for free;
  // snapshot deltas isolate each cell of the sweep.
  obs::Histogram* const latency =
      obs::RegisterHistogram("tsqd_request_latency_us", "verb=\"query\"");
  for (const size_t pollers : {size_t{1}, size_t{2}, size_t{4}}) {
    server::ServerOptions options;
    options.pollers = pollers;
    options.workers = 2;
    options.engine_threads = 1;
    // Pipelining intentionally floods admission; size the bound so the
    // sweep measures execution, not BUSY bouncing.
    options.max_inflight = 16 * kFramesPerConnection;
    auto started = server::Server::Start(db.get(), options);
    TSQ_CHECK_MSG(started.ok(), "server start failed: %s",
                  started.status().ToString().c_str());
    auto server = std::move(*started);

    for (const size_t connections :
         {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      const obs::Histogram::Snapshot before = latency->Snap();
      const double ms = bench::MeanMillis(
          [&] {
            std::vector<std::thread> threads;
            for (size_t c = 0; c < connections; ++c) {
              threads.emplace_back([&, c] {
                DrivePipelined(server->port(), make_stream(c),
                               kFramesPerConnection);
              });
            }
            for (std::thread& t : threads) t.join();
          },
          /*reps=*/3);
      const obs::Histogram::Snapshot delta =
          obs::SnapshotDelta(before, latency->Snap());
      const double p50 = obs::SnapshotQuantileMicros(delta, 0.5);
      const double p99 = obs::SnapshotQuantileMicros(delta, 0.99);
      const double total_frames =
          static_cast<double>(connections * kFramesPerConnection);
      const double fps = ms > 0.0 ? 1000.0 * total_frames / ms : 0.0;
      const server::ServerCounters counters = server->counters();
      table.AddRow({std::to_string(pollers), std::to_string(connections),
                    bench::Table::Num(ms, 2), bench::Table::Num(fps, 0),
                    bench::Table::Num(p50, 0), bench::Table::Num(p99, 0),
                    std::to_string(counters.busy_rejected),
                    std::to_string(counters.accept_backoffs)});
      bench::Json row = bench::Json::Object();
      row["mode"] = bench::Json::Str("loopback_pipelined");
      row["pollers"] = bench::Json::Int(pollers);
      row["connections"] = bench::Json::Int(connections);
      row["wall_ms"] = bench::Json::Num(ms);
      row["frames_per_sec"] = bench::Json::Num(fps);
      row["latency_p50_us"] = bench::Json::Num(p50);
      row["latency_p99_us"] = bench::Json::Num(p99);
      row["busy_rejected"] = bench::Json::Int(counters.busy_rejected);
      row["accept_backoffs"] = bench::Json::Int(counters.accept_backoffs);
      rows.Append(std::move(row));
    }
    server->Stop();
  }
  table.Print();

  doc["rows"] = std::move(rows);
  if (!doc.WriteFile("BENCH_server.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_server.json\n");
  } else {
    std::printf("\nwrote BENCH_server.json\n");
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
