// Copyright (c) 2026 The tsq Authors.
//
// tsqd loopback throughput: queries/second through the full network
// stack — client encode, TCP loopback, server frame decode, admission,
// execution pool, reply encode — for a clients x workers sweep, plus the
// in-process RunBatch baseline so the wire overhead is visible. Not a
// paper figure; it measures the server subsystem the same way
// bench_batch_throughput measures the engine.
//
// Drops BENCH_server.json next to the console table (CI's bench-perf job
// archives BENCH_*.json per run, so server perf is tracked PR over PR).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "tsqd: remote queries/sec vs clients x workers",
      "Mixed range/kNN batches over TCP loopback against one tsqd.\n"
      "Expected shape: the wire adds per-request latency; concurrent\n"
      "clients recover throughput until the execution pool saturates.");
  std::printf("  hardware threads on this host: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t kNumSeries = bench::Scaled(1000, 64);
  const size_t kLength = 128;
  const size_t kQueriesPerClient = bench::Scaled(128, 8);

  bench::ScratchDir scratch("bench_server");
  auto data =
      workload::MakeRandomWalkDataset(20260729, kNumSeries, kLength);
  auto db = bench::BuildDatabase(scratch.path(), "served", data);

  auto make_batch = [&](uint64_t salt) {
    std::vector<engine::BatchQuery> batch;
    batch.reserve(kQueriesPerClient);
    for (size_t i = 0; i < kQueriesPerClient; ++i) {
      engine::BatchQuery q;
      q.query = data[(i * 13 + salt * 31) % kNumSeries].values();
      if (i % 4 == 2) {
        q.kind = engine::BatchQueryKind::kKnn;
        q.k = 1 + i % 5;
      } else {
        q.kind = engine::BatchQueryKind::kRange;
        q.epsilon = (i % 2 == 0) ? 1.0 : 4.0;
      }
      batch.push_back(std::move(q));
    }
    return batch;
  };

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("server");
  bench::Json host = bench::Json::Object();
  host["hardware_threads"] =
      bench::Json::Int(std::thread::hardware_concurrency());
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(kNumSeries);
  workload_json["length"] = bench::Json::Int(kLength);
  workload_json["queries_per_client"] = bench::Json::Int(kQueriesPerClient);
  doc["workload"] = std::move(workload_json);
  bench::Json rows = bench::Json::Array();

  // In-process baseline: the same total query count, no network.
  {
    const auto batch = make_batch(0);
    const double ms = bench::MeanMillis(
        [&] { db->RunBatch(batch, 0); }, /*reps=*/3);
    const double qps =
        ms > 0.0 ? 1000.0 * static_cast<double>(batch.size()) / ms : 0.0;
    std::printf("  in-process baseline: %.2f ms / batch, %.0f q/s\n\n", ms,
                qps);
    bench::Json row = bench::Json::Object();
    row["mode"] = bench::Json::Str("in_process");
    row["clients"] = bench::Json::Int(0);
    row["workers"] = bench::Json::Int(0);
    row["wall_ms"] = bench::Json::Num(ms);
    row["queries_per_sec"] = bench::Json::Num(qps);
    rows.Append(std::move(row));
  }

  bench::Table table({"clients", "workers", "wall ms", "queries/s",
                      "busy", "frames"});
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    server::ServerOptions options;
    options.workers = workers;
    options.engine_threads = 1;  // parallelism comes from the worker sweep
    auto started = server::Server::Start(db.get(), options);
    TSQ_CHECK_MSG(started.ok(), "server start failed: %s",
                  started.status().ToString().c_str());
    auto server = std::move(*started);

    for (const size_t clients : {size_t{1}, size_t{2}, size_t{4}}) {
      const double ms = bench::MeanMillis(
          [&] {
            std::vector<std::thread> threads;
            for (size_t c = 0; c < clients; ++c) {
              threads.emplace_back([&, c] {
                auto client =
                    server::Client::Connect("127.0.0.1", server->port());
                TSQ_CHECK_MSG(client.ok(), "connect failed: %s",
                              client.status().ToString().c_str());
                auto results = (*client)->RunBatch(make_batch(c));
                TSQ_CHECK_MSG(results.ok(), "remote batch failed: %s",
                              results.status().ToString().c_str());
              });
            }
            for (std::thread& t : threads) t.join();
          },
          /*reps=*/3);
      const double total_queries =
          static_cast<double>(clients * kQueriesPerClient);
      const double qps = ms > 0.0 ? 1000.0 * total_queries / ms : 0.0;
      const server::ServerCounters counters = server->counters();
      table.AddRow({std::to_string(clients), std::to_string(workers),
                    bench::Table::Num(ms, 2), bench::Table::Num(qps, 0),
                    std::to_string(counters.busy_rejected),
                    std::to_string(counters.frames_received)});
      bench::Json row = bench::Json::Object();
      row["mode"] = bench::Json::Str("loopback");
      row["clients"] = bench::Json::Int(clients);
      row["workers"] = bench::Json::Int(workers);
      row["wall_ms"] = bench::Json::Num(ms);
      row["queries_per_sec"] = bench::Json::Num(qps);
      row["busy_rejected"] = bench::Json::Int(counters.busy_rejected);
      rows.Append(std::move(row));
    }
    server->Stop();
  }
  table.Print();

  doc["rows"] = std::move(rows);
  if (!doc.WriteFile("BENCH_server.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_server.json\n");
  } else {
    std::printf("\nwrote BENCH_server.json\n");
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
