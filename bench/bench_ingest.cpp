// Copyright (c) 2026 The tsq Authors.
//
// Ingest throughput for the v2 write contract: records/second through
// Database::InsertBatch across 1, 2, 4 and 8 ingest threads and 1, 4 and
// 16 relation segments, against the sequential Insert-by-Insert baseline
// (the seed's write path: one mutex, one heap file). Not a paper figure —
// it measures the segmented parallel ingest pipeline tsq adds on top; the
// resulting relation files are byte-identical in every configuration with
// the same segment count (asserted by tests/ingest_test.cpp), so the
// sweep varies only wall time.
//
// Besides the console table, the binary drops BENCH_ingest.json in the
// working directory — wall ms and records/sec per (segments, threads)
// cell plus the Insert baseline — so CI can archive the ingest perf
// trajectory across PRs.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Parallel ingest: records/sec vs ingest threads x segments",
      "InsertBatch fans DFT feature extraction over the pool and appends\n"
      "one task per relation segment; expected shape: throughput grows\n"
      "with segment count once threads can overlap (flat on a single\n"
      "hardware thread).");
  std::printf("  hardware threads on this host: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t kNumSeries = bench::Scaled(4000, 128);
  const size_t kLength = 128;

  const auto data =
      workload::MakeRandomWalkDataset(20260729, kNumSeries, kLength);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  names.reserve(data.size());
  values.reserve(data.size());
  for (const TimeSeries& s : data) {
    names.push_back(s.name());
    values.push_back(s.values());
  }

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("ingest");
  bench::Json host = bench::Json::Object();
  host["hardware_threads"] =
      bench::Json::Int(std::thread::hardware_concurrency());
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(kNumSeries);
  workload_json["length"] = bench::Json::Int(kLength);
  doc["workload"] = std::move(workload_json);

  bench::ScratchDir dir("ingest");

  // Baseline: the seed's write path — Insert one record at a time.
  double baseline_ms = 0.0;
  {
    DatabaseOptions options;
    options.directory = dir.path();
    options.name = "seq";
    options.relation_segments = 1;
    auto db = Database::Create(options).value();
    Stopwatch watch;
    for (size_t i = 0; i < names.size(); ++i) {
      db->Insert(names[i], values[i]).value();
    }
    baseline_ms = watch.ElapsedMillis();
    TSQ_CHECK_MSG(db->size() == kNumSeries, "baseline lost records");
  }
  std::printf("  Insert-by-Insert baseline (1 segment): %.1f ms, %.0f rec/s\n\n",
              baseline_ms, 1000.0 * kNumSeries / baseline_ms);
  bench::Json baseline = bench::Json::Object();
  baseline["wall_ms"] = bench::Json::Num(baseline_ms);
  baseline["records_per_sec"] =
      bench::Json::Num(1000.0 * kNumSeries / baseline_ms);
  doc["insert_baseline"] = std::move(baseline);

  bench::Table table({"segments", "threads", "wall ms", "records/sec",
                      "speedup vs baseline"});
  bench::Json sweep = bench::Json::Array();
  for (const size_t segments : {1u, 4u, 16u}) {
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      DatabaseOptions options;
      options.directory = dir.path();
      options.name = "s" + std::to_string(segments) + "_t" +
                     std::to_string(threads);
      options.relation_segments = segments;
      auto db = Database::Create(options).value();
      Stopwatch watch;
      db->InsertBatch(names, values, threads).value();
      const double wall_ms = watch.ElapsedMillis();
      TSQ_CHECK_MSG(db->size() == kNumSeries, "batch ingest lost records");

      table.AddRow({std::to_string(segments), std::to_string(threads),
                    bench::Table::Num(wall_ms),
                    bench::Table::Num(1000.0 * kNumSeries / wall_ms, 0),
                    bench::Table::Num(baseline_ms / wall_ms, 2)});
      bench::Json row = bench::Json::Object();
      row["segments"] = bench::Json::Int(segments);
      row["threads"] = bench::Json::Int(threads);
      row["wall_ms"] = bench::Json::Num(wall_ms);
      row["records_per_sec"] =
          bench::Json::Num(1000.0 * kNumSeries / wall_ms);
      sweep.Append(std::move(row));
    }
  }
  table.Print();
  doc["sweep"] = std::move(sweep);

  const char* out_path = "BENCH_ingest.json";
  if (doc.WriteFile(out_path)) {
    std::printf("\n  wrote %s\n", out_path);
  } else {
    std::printf("\n  WARNING: could not write %s\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
