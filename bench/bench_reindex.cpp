// Copyright (c) 2026 The tsq Authors.
//
// Ingest throughput with the v4 delta index, merge on vs off: records/
// second through Database::InsertBatch against a database with a built
// index, (a) with no merging (everything accumulates in the delta),
// (b) with the background merge thread folding aggressively, and (c) one
// explicit foreground Reindex after ingest — plus query latency on the
// pre-merge (tree + delta) and post-merge (tree only) shapes. Not a
// paper figure — it measures what the epoch-published snapshot contract
// costs and buys: ingest never waits on a tree fold-in, merges happen
// off the write path, and queries run lock-free on both shapes.
//
// Besides the console table, the binary drops BENCH_reindex.json in the
// working directory so CI can archive the merge perf trajectory.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Reindex: ingest + merge throughput with the delta index",
      "InsertBatch appends feature points to the delta (no tree work);\n"
      "a merge STR-bulk-loads main+delta into a fresh tree off the write\n"
      "path. Expected shape: ingest throughput is the same with merging\n"
      "on or off, and post-merge queries match pre-merge answers.");
  std::printf("  hardware threads on this host: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t kIndexed = bench::Scaled(2000, 64);
  const size_t kIngested = bench::Scaled(2000, 64);
  const size_t kLength = 128;
  const size_t kQueries = bench::Scaled(200, 16);

  const auto data = workload::MakeRandomWalkDataset(20260808, kIndexed,
                                                    kLength);
  const auto extra = workload::MakeRandomWalkDataset(20260809, kIngested,
                                                     kLength);
  std::vector<std::string> names;
  std::vector<RealVec> values;
  for (const TimeSeries& s : extra) {
    names.push_back("delta_" + s.name());
    values.push_back(s.values());
  }

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("reindex");
  bench::Json host = bench::Json::Object();
  host["hardware_threads"] =
      bench::Json::Int(std::thread::hardware_concurrency());
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);
  bench::Json workload_json = bench::Json::Object();
  workload_json["indexed_series"] = bench::Json::Int(kIndexed);
  workload_json["ingested_series"] = bench::Json::Int(kIngested);
  workload_json["length"] = bench::Json::Int(kLength);
  doc["workload"] = std::move(workload_json);

  bench::ScratchDir dir("reindex");
  bench::Table table({"config", "ingest ms", "records/sec", "merge ms",
                      "query ms/op"});
  bench::Json sweep = bench::Json::Array();
  int config_index = 0;

  auto seed_db = [&](const std::string& name, uint64_t merge_interval_ms)
      -> std::unique_ptr<Database> {
    DatabaseOptions options;
    options.directory = dir.path();
    options.name = name;
    options.merge_interval_ms = merge_interval_ms;
    auto db = Database::Create(options).value();
    std::vector<std::string> base_names;
    std::vector<RealVec> base_values;
    for (const TimeSeries& s : data) {
      base_names.push_back(s.name());
      base_values.push_back(s.values());
    }
    db->InsertBatch(base_names, base_values, 4).value();
    TSQ_CHECK_MSG(db->BuildIndex().ok(), "bench index build failed");
    return db;
  };

  auto time_queries = [&](Database* db) {
    Stopwatch watch;
    for (size_t i = 0; i < kQueries; ++i) {
      db->RangeQuery(data[(i * 31) % kIndexed].values(), 2.0).value();
    }
    return watch.ElapsedMillis() / double(kQueries);
  };

  struct Config {
    const char* label;
    uint64_t merge_interval_ms;
    bool foreground_merge;
  };
  for (const Config& config :
       {Config{"merge off (delta only)", 0, false},
        Config{"merge thread 1ms", 1, false},
        Config{"foreground reindex", 0, true}}) {
    auto db = seed_db("db_" + std::to_string(++config_index),
                      config.merge_interval_ms);
    Stopwatch ingest_watch;
    db->InsertBatch(names, values, 4).value();
    const double ingest_ms = ingest_watch.ElapsedMillis();
    double merge_ms = 0.0;
    if (config.foreground_merge) {
      Stopwatch merge_watch;
      merge_ms = 0.0;
      db->Reindex().value();
      merge_ms = merge_watch.ElapsedMillis();
    }
    const double query_ms = time_queries(db.get());
    TSQ_CHECK_MSG(db->size() == kIndexed + kIngested,
                  "reindex bench lost records");

    table.AddRow({config.label, bench::Table::Num(ingest_ms),
                  bench::Table::Num(1000.0 * kIngested / ingest_ms, 0),
                  bench::Table::Num(merge_ms),
                  bench::Table::Num(query_ms, 3)});
    bench::Json row = bench::Json::Object();
    row["config"] = bench::Json::Str(config.label);
    row["merge_interval_ms"] = bench::Json::Int(config.merge_interval_ms);
    row["ingest_wall_ms"] = bench::Json::Num(ingest_ms);
    row["records_per_sec"] = bench::Json::Num(1000.0 * kIngested / ingest_ms);
    row["merge_wall_ms"] = bench::Json::Num(merge_ms);
    row["query_ms_per_op"] = bench::Json::Num(query_ms);
    row["delta_entries_after"] =
        bench::Json::Int(db->StatsSnapshot().delta_entries);
    row["merges_completed"] =
        bench::Json::Int(db->StatsSnapshot().merges_completed);
    sweep.Append(std::move(row));
  }
  table.Print();
  doc["sweep"] = std::move(sweep);

  const char* out_path = "BENCH_reindex.json";
  if (doc.WriteFile(out_path)) {
    std::printf("\n  wrote %s\n", out_path);
  } else {
    std::printf("\n  WARNING: could not write %s\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
