// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Table 1: the 20-day-moving-average spatial self-join on the
// (simulated) stock relation of 1067 series x 128 days, with the paper's
// four execution methods:
//   a  scan-scan, full distance per pair (no shortcuts)
//   b  scan-scan with early abandoning at epsilon
//   c  index join WITHOUT the transformation
//   d  index join THROUGH the transformed index (Tmavg20)
// Expected shape: a >> b >> {c, d}; d slightly slower than c; the answer
// set of d is exactly twice b's (ordered pairs); c answers a different
// (unsmoothed) question and finds fewer pairs.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/seq_scan.h"
#include "transform/builtin.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

std::string FormatDuration(double ms) {
  const int minutes = static_cast<int>(ms / 60000.0);
  const double seconds = (ms - minutes * 60000.0) / 1000.0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%d:%06.3f", minutes, seconds);
  return buf;
}

void Run() {
  bench::Banner(
      "Table 1: the result of the 20-day-MA self-join",
      "Simulated stock relation, 1067 x 128; Tmavg20; epsilon tuned for a "
      "paper-sized answer set.\nPaper: a=20:36 (12), b=2:31 (12), "
      "c=0:10 (3x2=6), d=0:17 (12x2=24).");

  bench::ScratchDir dir("table1");
  auto market = workload::MakeStockMarket(19970525);  // SIGMOD'97 :-)
  market.resize(bench::Scaled(market.size(), 128));
  auto db = bench::BuildDatabase(dir.path(), "table1", market);

  // Calibrated so the smoothed join finds the planted similar pairs plus
  // at most a few random ones — a paper-sized answer set.
  const double kEps = 0.5;
  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));

  struct MethodRow {
    const char* label;
    JoinMethod method;
    const char* paper_time;
    const char* paper_answers;
  };
  const MethodRow methods[] = {
      {"a (scan, full distance)", JoinMethod::kScanFull, "20:36.323", "12"},
      {"b (scan, early abandon)", JoinMethod::kScanEarlyAbandon, "2:31.217",
       "12"},
      {"c (index, no transform)", JoinMethod::kIndexPlain, "0:10.139",
       "3x2=6"},
      {"d (index, Tmavg20)", JoinMethod::kIndexTransformed, "0:17.698",
       "12x2=24"},
  };

  bench::Table table({"method", "paper time", "paper answers",
                      "measured time", "measured answers"});
  double times_ms[4] = {0, 0, 0, 0};
  size_t answers[4] = {0, 0, 0, 0};
  int i = 0;
  for (const MethodRow& m : methods) {
    Stopwatch watch;
    auto pairs = db->SelfJoin(kEps, m.method, transform);
    TSQ_CHECK_MSG(pairs.ok(), "join failed: %s",
                  pairs.status().ToString().c_str());
    times_ms[i] = watch.ElapsedMillis();
    answers[i] = pairs->size();
    table.AddRow({m.label, m.paper_time, m.paper_answers,
                  FormatDuration(times_ms[i]), std::to_string(answers[i])});
    ++i;
  }
  table.Print();

  std::printf("\n  shape checks:\n");
  std::printf("    a slowest: %s;  a/b speedup: %.1fx (paper: ~10x)\n",
              (times_ms[0] >= times_ms[1] && times_ms[0] >= times_ms[2] &&
               times_ms[0] >= times_ms[3])
                  ? "OK"
                  : "VIOLATED",
              times_ms[0] / times_ms[1]);
  std::printf("    b/d speedup: %.1fx (paper: ~9x)   %s\n",
              times_ms[1] / times_ms[3],
              times_ms[1] > times_ms[3] ? "OK" : "VIOLATED");
  std::printf("    d vs c: d %s slower (paper: slightly slower)\n",
              times_ms[3] >= times_ms[2] ? "is" : "is NOT");
  std::printf("    |a| == |b|: %s;  |d| == 2|b|: %s;  |c| <= |d|: %s\n",
              answers[0] == answers[1] ? "OK" : "VIOLATED",
              answers[3] == 2 * answers[1] ? "OK" : "VIOLATED",
              answers[2] <= answers[3] ? "OK" : "VIOLATED");

  // Extra (beyond the paper): the tree-match join — one synchronized
  // traversal of the transformed tree against itself instead of one range
  // query per record.
  {
    Stopwatch watch;
    auto pairs = db->SelfJoin(kEps, JoinMethod::kTreeMatch, transform);
    TSQ_CHECK_MSG(pairs.ok(), "tree-match join failed: %s",
                  pairs.status().ToString().c_str());
    std::printf(
        "\n  extension (not in the paper): tree-match join: %s, %zu answers "
        "(%llu node accesses)\n",
        FormatDuration(watch.ElapsedMillis()).c_str(), pairs->size(),
        static_cast<unsigned long long>(db->last_stats().nodes_visited));
  }

  // Extra (beyond the paper): the strongest possible modern scan — spectra
  // cached in memory after one relation pass, fused transform+distance
  // with early abandoning. This is how cheap the scan gets when the
  // relation fits in RAM on 2026 hardware; see EXPERIMENTS.md for the
  // discussion of how this compresses the paper's scan-vs-index gap at
  // 1067 series (the disk-resident regime above is the paper's).
  std::vector<ComplexVec> spectra;
  spectra.reserve(market.size());
  db->relation()
      ->Scan([&spectra](const SeriesRecord& rec) {
        spectra.push_back(rec.dft);
        return true;
      })
      .ok();
  const LinearTransform fused = transforms::MovingAverage(128, 20);
  Stopwatch watch;
  size_t hits = 0;
  for (size_t x = 0; x < spectra.size(); ++x) {
    for (size_t y = x + 1; y < spectra.size(); ++y) {
      if (EarlyAbandonPairDistance(spectra[x], spectra[y], &fused, kEps)
              .has_value()) {
        ++hits;
      }
    }
  }
  std::printf(
      "\n  reference (not in the paper): in-memory fused scan join: %s, "
      "%zu answers\n",
      FormatDuration(watch.ElapsedMillis()).c_str(), hits);
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
