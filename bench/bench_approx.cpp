// Copyright (c) 2026 The tsq Authors.
//
// Approximate kNN: recall and speedup versus the exact multi-step search
// as the (1+epsilon) relaxation, the probe budget and the first-leaf
// heuristic are dialed. Not a paper figure — the paper's kNN is exact;
// this measures the accuracy/latency dial tsq adds on top (KnnOptions),
// and asserts the correctness contract on the bench workload itself:
// the observed max_error reported in QueryStats never exceeds the
// requested epsilon, and epsilon = 0 answers are identical to exact.
//
// Drops BENCH_approx.json in the working directory — per-configuration
// mean ms, speedup, recall@k, observed and true max relative error,
// candidates verified and pruned — so CI archives the recall-vs-speedup
// trade-off across PRs.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/macros.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

struct Config {
  const char* label;
  KnnOptions options;
};

void Run() {
  bench::Banner(
      "Approximate kNN: recall vs speedup (KnnOptions dial)",
      "Simulated stock relation; exact multi-step kNN baseline against\n"
      "(1+eps)-relaxed pruning, probe budgets and the first-leaf stop.\n"
      "Contract checked per query: reported max_error <= requested eps.");

  bench::ScratchDir dir("approx");
  auto market = workload::MakeStockMarket(481516);
  market.resize(bench::Scaled(market.size(), 128));
  auto db = bench::BuildDatabase(dir.path(), "approx", market);
  const size_t k = 10;
  const int kQueries = static_cast<int>(bench::Scaled(20, 4));
  const int kReps = 3;

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("approx_knn");
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(market.size());
  workload_json["length"] = bench::Json::Int(market[0].values().size());
  workload_json["k"] = bench::Json::Int(k);
  workload_json["queries"] = bench::Json::Int(kQueries);
  workload_json["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["workload"] = std::move(workload_json);

  // Exact baselines: answers for recall/true-error, mean ms for speedup.
  std::vector<std::vector<Match>> exact(kQueries);
  double exact_ms = 0.0;
  for (int q = 0; q < kQueries; ++q) {
    const RealVec& query = market[(q * 97) % market.size()].values();
    exact[q] = db->Knn(query, k).value();
    exact_ms += bench::MeanMillis(
        [&db, &query, k]() { db->Knn(query, k).value(); }, kReps);
  }
  exact_ms /= kQueries;

  const Config configs[] = {
      {"eps=0", {0.0, 0, false}},
      {"eps=0.05", {0.05, 0, false}},
      {"eps=0.1", {0.1, 0, false}},
      {"eps=0.25", {0.25, 0, false}},
      {"eps=0.5", {0.5, 0, false}},
      {"eps=1.0", {1.0, 0, false}},
      {"probes=64", {0.0, 64, false}},
      {"probes=16", {0.0, 16, false}},
      {"first-leaf", {0.0, 0, true}},
  };

  bench::Table table({"config", "mean ms", "speedup", "recall@k",
                      "observed max_err", "true max_err", "visited",
                      "pruned"});
  table.AddRow({"exact", bench::Table::Num(exact_ms), "1.00x", "1.000", "-",
                "-", "-", "-"});
  bench::Json rows = bench::Json::Array();

  for (const Config& config : configs) {
    double mean_ms = 0.0;
    double recall = 0.0;
    double observed_max_error = 0.0;
    double true_max_error = 0.0;
    uint64_t visited = 0;
    uint64_t pruned = 0;
    const bool pure_epsilon =
        config.options.probe_budget == 0 && !config.options.stop_after_first_leaf;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = market[(q * 97) % market.size()].values();
      const std::vector<Match> approx =
          db->Knn(query, k, QuerySpec{}, config.options).value();
      const QueryStats stats = db->last_stats();
      mean_ms += bench::MeanMillis(
          [&db, &query, k, &config]() {
            db->Knn(query, k, QuerySpec{}, config.options).value();
          },
          kReps);

      // Correctness contract, checked on the bench workload: the
      // reported error bound honors the requested epsilon, and with
      // epsilon = 0 (and no other knob) the answer IS the exact answer.
      TSQ_CHECK_MSG(
          !pure_epsilon ||
              stats.max_error <= config.options.epsilon + 1e-12,
          "observed max_error exceeds the requested epsilon");
      if (config.options.is_default()) {
        TSQ_CHECK_MSG(approx.size() == exact[q].size(),
                      "eps=0 answer size differs from exact");
      }

      size_t hits = 0;
      for (const Match& m : approx) {
        for (const Match& e : exact[q]) {
          if (e.id == m.id) {
            ++hits;
            break;
          }
        }
      }
      recall += static_cast<double>(hits) /
                static_cast<double>(exact[q].size());
      if (!approx.empty() && !exact[q].empty()) {
        const double d_true = exact[q].back().distance;
        const double d_got = approx.back().distance;
        if (d_true > 0.0) {
          const double err = d_got / d_true - 1.0;
          true_max_error = err > true_max_error ? err : true_max_error;
        }
        TSQ_CHECK_MSG(!pure_epsilon ||
                          d_got <= d_true * (1.0 + config.options.epsilon) +
                                       1e-9,
                      "true k-th distance violates the epsilon bound");
      }
      observed_max_error = stats.max_error > observed_max_error
                               ? stats.max_error
                               : observed_max_error;
      visited += stats.candidates;
      pruned += stats.pruned;
    }
    mean_ms /= kQueries;
    recall /= kQueries;

    table.AddRow({config.label, bench::Table::Num(mean_ms),
                  bench::Table::Num(exact_ms / mean_ms, 2) + "x",
                  bench::Table::Num(recall, 3),
                  bench::Table::Num(observed_max_error, 4),
                  bench::Table::Num(true_max_error, 4),
                  std::to_string(visited / kQueries),
                  std::to_string(pruned / kQueries)});
    bench::Json row = bench::Json::Object();
    row["config"] = bench::Json::Str(config.label);
    row["epsilon"] = bench::Json::Num(config.options.epsilon);
    row["probe_budget"] = bench::Json::Int(config.options.probe_budget);
    row["first_leaf"] = bench::Json::Bool(config.options.stop_after_first_leaf);
    row["mean_ms"] = bench::Json::Num(mean_ms);
    row["speedup_vs_exact"] = bench::Json::Num(exact_ms / mean_ms);
    row["recall_at_k"] = bench::Json::Num(recall);
    row["observed_max_error"] = bench::Json::Num(observed_max_error);
    row["true_max_error"] = bench::Json::Num(true_max_error);
    row["mean_visited"] = bench::Json::Int(visited / kQueries);
    row["mean_pruned"] = bench::Json::Int(pruned / kQueries);
    rows.Append(std::move(row));
  }
  table.Print();
  bench::Json exact_json = bench::Json::Object();
  exact_json["mean_ms"] = bench::Json::Num(exact_ms);
  doc["exact"] = std::move(exact_json);
  doc["sweep"] = std::move(rows);

  std::printf(
      "\n  shape: recall stays high well past eps=0.25 because the "
      "(1+eps) relaxation only prunes candidates whose lower bound was "
      "already close to the k-th distance; the probe budget buys the "
      "largest speedups and gives up recall first.\n");

  const char* out_path = "BENCH_approx.json";
  if (doc.WriteFile(out_path)) {
    std::printf("\n  wrote %s\n", out_path);
  } else {
    std::printf("\n  WARNING: could not write %s\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
