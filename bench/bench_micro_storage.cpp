// Copyright (c) 2026 The tsq Authors.
//
// Micro-benchmarks (google-benchmark) for the storage substrate: page
// file I/O, buffer pool hit/miss paths, relation append/get/scan, and node
// (de)serialization — the constants behind every "disk access" the paper's
// experiments count.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/relation.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

std::string TempPath(const char* tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          (std::string("tsq_microstorage_") + tag + "_" +
           std::to_string(counter++)))
      .string();
}

void BM_PageFileWrite(benchmark::State& state) {
  const std::string path = TempPath("pfw");
  auto file = PageFile::Create(path).value();
  const PageId id = file->Allocate().value();
  Page page(kDefaultPageSize);
  uint64_t v = 0;
  for (auto _ : state) {
    page.WriteU64(0, ++v);
    benchmark::DoNotOptimize(file->Write(id, page).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kDefaultPageSize));
  file.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_PageFileWrite);

void BM_PageFileRead(benchmark::State& state) {
  const std::string path = TempPath("pfr");
  auto file = PageFile::Create(path).value();
  const PageId id = file->Allocate().value();
  Page page(kDefaultPageSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(file->Read(id, &page).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(kDefaultPageSize));
  file.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_PageFileRead);

void BM_BufferPoolHit(benchmark::State& state) {
  const std::string path = TempPath("bph");
  auto file = PageFile::Create(path).value();
  {
    // Scoped: the pool flushes dirty frames at destruction, so it must
    // die before the file it writes to.
    BufferPool pool(file.get(), 16);
    const PageId id = pool.New().value().id();
    for (auto _ : state) {
      auto handle = pool.Fetch(id);
      benchmark::DoNotOptimize(handle->page());
    }
  }
  file.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMissEvict(benchmark::State& state) {
  // Every fetch misses: the working set is twice the pool capacity.
  const std::string path = TempPath("bpm");
  auto file = PageFile::Create(path).value();
  {
    // Scoped: destruction flushes into the file (see BM_BufferPoolHit).
    BufferPool pool(file.get(), 8);
    std::vector<PageId> ids;
    for (int i = 0; i < 16; ++i) ids.push_back(pool.New().value().id());
    size_t next = 0;
    for (auto _ : state) {
      auto handle = pool.Fetch(ids[next]);
      benchmark::DoNotOptimize(handle->page());
      next = (next + 1) % ids.size();
    }
  }
  file.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_BufferPoolMissEvict);

void BM_RelationAppend(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  RealVec values = workload::RandomWalkSeries(&rng, n, {});
  ComplexVec spectrum(n, Complex(1.0, -1.0));
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = TempPath("ra");
    auto rel = Relation::Create(path).value();
    state.ResumeTiming();
    for (int i = 0; i < 200; ++i) {
      benchmark::DoNotOptimize(rel->Append("S", values, spectrum).ok());
    }
    state.PauseTiming();
    rel.reset();
    std::filesystem::remove(path);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_RelationAppend)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RelationGet(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string path = TempPath("rg");
  auto rel = Relation::Create(path).value();
  Rng rng(5);
  RealVec values = workload::RandomWalkSeries(&rng, n, {});
  ComplexVec spectrum(n, Complex(1.0, -1.0));
  for (int i = 0; i < 512; ++i) rel->Append("S", values, spectrum).value();
  uint64_t id = 0;
  for (auto _ : state) {
    auto rec = rel->Get(id % 512);
    benchmark::DoNotOptimize(rec->dft.data());
    ++id;
  }
  rel.reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_RelationGet)->Arg(128)->Arg(1024);

void BM_NodeSerializeDeserialize(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  rtree::Node node;
  node.level = 1;
  Rng rng(6);
  const size_t capacity = rtree::NodeCapacity(kDefaultPageSize, dims);
  for (size_t i = 0; i < capacity; ++i) {
    rtree::Entry e;
    spatial::Point lo(dims), hi(dims);
    for (size_t d = 0; d < dims; ++d) {
      lo[d] = rng.Uniform(0, 50);
      hi[d] = lo[d] + rng.Uniform(0, 10);
    }
    e.rect = spatial::Rect(std::move(lo), std::move(hi));
    e.id = i;
    node.entries.push_back(std::move(e));
  }
  Page page(kDefaultPageSize);
  rtree::Node back;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtree::SerializeNode(node, dims, &page).ok());
    benchmark::DoNotOptimize(rtree::DeserializeNode(page, dims, &back).ok());
  }
}
BENCHMARK(BM_NodeSerializeDeserialize)->Arg(2)->Arg(6)->Arg(14);

}  // namespace
}  // namespace tsq

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_micro_storage.json (format json) when the caller didn't pick an
// output, so every run — including the CI bench-smoke job, which archives
// BENCH_*.json — leaves a machine-readable record next to the console
// table. Explicit --benchmark_out flags win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string default_out = "--benchmark_out=BENCH_micro_storage.json";
  std::string default_fmt = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(default_out.data());
    args.push_back(default_fmt.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
