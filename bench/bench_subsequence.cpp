// Copyright (c) 2026 The tsq Authors.
//
// Extension bench (not a paper artifact): the [FRM94]-style subsequence
// index (ST-index over sliding-window DFT trails) against the
// brute-force sliding scan, across data sizes and trail-piece lengths.
// The paper cites [FRM94] as the subsequence counterpart of its
// whole-match indexing; this harness shows the same filter-and-refine
// economics apply under tsq's substrate.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/subsequence.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Subsequence matching: ST-index vs sliding scan ([FRM94] extension)",
      "Window 64, 3 coefficients; queries are data windows plus noise.");

  bench::Table table({"series x length", "windows", "trail piece", "pieces",
                      "index ms", "scan ms", "win. verified", "cand. pieces",
                      "avg answers"});

  const size_t kWindow = 64;
  const int kQueries = static_cast<int>(bench::Scaled(10, 2));
  struct Config {
    size_t count;
    size_t length;
    size_t piece;
  };
  const Config configs[] = {{bench::Scaled(50, 8), 512, 8},
                            {bench::Scaled(50, 8), 512, 32},
                            {bench::Scaled(200, 16), 512, 16},
                            {bench::Scaled(100, 8), 2048, 16}};

  for (const Config& config : configs) {
    bench::ScratchDir dir("subseq");
    SubsequenceIndexOptions options;
    options.window = kWindow;
    options.coefficients = 3;
    options.trail_piece = config.piece;
    options.path = dir.path() + "/subseq.pages";
    auto index = SubsequenceIndex::Create(options).value();

    auto series =
        workload::MakeRandomWalkDataset(2026, config.count, config.length);
    for (SeriesId id = 0; id < series.size(); ++id) {
      TSQ_CHECK(index->AddSeries(id, series[id].values()).ok());
    }
    auto fetch = [&series](SeriesId id) -> Result<RealVec> {
      return series[id].values();
    };

    Rng rng(9);
    double index_ms = 0.0;
    double scan_ms = 0.0;
    uint64_t candidates = 0;
    uint64_t answers = 0;
    uint64_t verified = 0;
    for (int q = 0; q < kQueries; ++q) {
      const RealVec& src =
          series[static_cast<size_t>(rng.UniformInt(
                     0, static_cast<int64_t>(config.count) - 1))]
              .values();
      const size_t off = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(config.length - kWindow)));
      RealVec query(src.begin() + static_cast<ptrdiff_t>(off),
                    src.begin() + static_cast<ptrdiff_t>(off + kWindow));
      for (double& v : query) v += rng.Uniform(-0.05, 0.05);

      std::vector<SubsequenceMatch> out;
      QueryStats stats;
      Stopwatch w1;
      TSQ_CHECK(index->RangeSearch(query, 1.0, fetch, &out, &stats).ok());
      index_ms += w1.ElapsedMillis();
      candidates += stats.candidates;
      verified += stats.records_scanned;
      answers += out.size();

      Stopwatch w2;
      TSQ_CHECK(
          ScanSubsequences(series, kWindow, query, 1.0, &out).ok());
      scan_ms += w2.ElapsedMillis();
    }
    index_ms /= kQueries;
    scan_ms /= kQueries;

    table.AddRow(
        {std::to_string(config.count) + "x" + std::to_string(config.length),
         std::to_string(index->num_windows()),
         std::to_string(config.piece), std::to_string(index->num_pieces()),
         bench::Table::Num(index_ms), bench::Table::Num(scan_ms),
         bench::Table::Num(static_cast<double>(verified) / kQueries, 1) +
             " of " + std::to_string(index->num_windows()),
         bench::Table::Num(static_cast<double>(candidates) / kQueries, 1),
         bench::Table::Num(static_cast<double>(answers) / kQueries, 1)});
  }
  table.Print();
  std::printf(
      "\n  shape: the index verifies a vanishing fraction of the windows "
      "(the [FRM94] filter property). Wall-clock still favors the scan at "
      "RAM scale because early abandoning on raw prices rejects most "
      "offsets after ~1 sample; the index's advantage is its verified-work "
      "bound, which survives when windows are expensive to fetch (disk) or "
      "compare (long windows, no abandon).\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
