// Copyright (c) 2026 The tsq Authors.
//
// Batch query engine throughput: queries/second for a mixed range + kNN
// workload executed by engine::QueryEngine at 1, 2, 4 and 8 worker
// threads, the parallel self-join, and a buffer-pool shard-count sweep.
// This is not a paper figure — it measures the concurrency layer tsq adds
// on top of the paper's single-query pipeline (the index stack is shared
// read-only across workers; answers are identical at every thread count
// and shard count).
//
// Besides the console tables, the binary drops BENCH_batch_throughput.json
// in the working directory — wall ms, queries/sec and the buffer-pool
// hit/miss/disk counters for every thread and shard configuration — so CI
// can archive the perf trajectory across PRs instead of it living only in
// README prose.

#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

bench::Json PoolCountersJson(const BufferPoolStats& stats) {
  bench::Json j = bench::Json::Object();
  j["hits"] = bench::Json::Int(stats.hits.load());
  j["misses"] = bench::Json::Int(stats.misses.load());
  j["evictions"] = bench::Json::Int(stats.evictions.load());
  j["disk_reads"] = bench::Json::Int(stats.disk_reads.load());
  j["disk_writes"] = bench::Json::Int(stats.disk_writes.load());
  return j;
}

void Run() {
  bench::Banner(
      "Batch engine: queries/sec vs worker threads",
      "Mixed range/kNN batch over random-walk data; shared read-only "
      "index.\nExpected shape: near-linear scaling until the core count "
      "or the\nbuffer-pool miss path saturates (v3 hits are lock-free).");
  std::printf("  hardware threads on this host: %u\n\n",
              std::thread::hardware_concurrency());

  const size_t kNumSeries = bench::Scaled(2000, 64);
  const size_t kLength = 256;
  const size_t kBatch = bench::Scaled(512, 32);

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("batch_throughput");
  bench::Json host = bench::Json::Object();
  host["hardware_threads"] =
      bench::Json::Int(std::thread::hardware_concurrency());
  host["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["host"] = std::move(host);
  bench::Json workload = bench::Json::Object();
  workload["series"] = bench::Json::Int(kNumSeries);
  workload["length"] = bench::Json::Int(kLength);
  workload["batch_queries"] = bench::Json::Int(kBatch);
  doc["workload"] = std::move(workload);

  bench::ScratchDir dir("batch_throughput");
  const auto data =
      workload::MakeRandomWalkDataset(4711, kNumSeries, kLength);
  auto db = bench::BuildDatabase(dir.path(), "batch", data);

  // The workload: stored series as queries (distance 0 to themselves, a
  // few neighbours in range), alternating range and kNN.
  const double eps = 0.25 * std::sqrt(static_cast<double>(kLength));
  std::vector<engine::BatchQuery> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    engine::BatchQuery q;
    q.query = data[(i * 37) % kNumSeries].values();
    if (i % 2 == 0) {
      q.kind = engine::BatchQueryKind::kRange;
      q.epsilon = eps;
    } else {
      q.kind = engine::BatchQueryKind::kKnn;
      q.k = 10;
    }
    batch.push_back(std::move(q));
  }

  bench::Table table({"threads", "wall ms", "queries/sec", "speedup",
                      "answers", "candidates"});
  bench::Json thread_sweep = bench::Json::Array();
  double base_ms = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    engine::QueryEngineOptions options;
    options.threads = threads;
    engine::QueryEngine engine(db->index(), db->relation(),
                               /*subsequence_index=*/nullptr, options);
    engine.RunBatch(batch);  // warm the buffer pool / page cache
    db->index()->pool()->ResetStats();

    engine::BatchStats stats;
    const auto results = engine.RunBatch(batch, &stats);
    uint64_t failures = 0;
    for (const auto& r : results) {
      if (!r.status.ok()) ++failures;
    }
    TSQ_CHECK_MSG(failures == 0, "%llu batch queries failed",
                  static_cast<unsigned long long>(failures));

    if (threads == 1) base_ms = stats.wall_ms;
    table.AddRow({std::to_string(threads), bench::Table::Num(stats.wall_ms),
                  bench::Table::Num(1000.0 * kBatch / stats.wall_ms, 0),
                  bench::Table::Num(base_ms / stats.wall_ms, 2),
                  std::to_string(stats.aggregate.answers),
                  std::to_string(stats.aggregate.candidates)});
    bench::Json row = bench::Json::Object();
    row["threads"] = bench::Json::Int(threads);
    row["wall_ms"] = bench::Json::Num(stats.wall_ms);
    row["queries_per_sec"] = bench::Json::Num(1000.0 * kBatch /
                                              stats.wall_ms);
    row["answers"] = bench::Json::Int(stats.aggregate.answers);
    row["candidates"] = bench::Json::Int(stats.aggregate.candidates);
    row["pool"] = PoolCountersJson(db->index()->pool()->stats());
    thread_sweep.Append(std::move(row));
  }
  table.Print();
  doc["thread_sweep"] = std::move(thread_sweep);

  std::printf("\n");
  bench::Banner(
      "Buffer-pool shard sweep: 8-thread batch wall time vs shard count",
      "Same workload at 8 workers against databases whose pool has 1, 4 "
      "and 16\nshards (and a small frame budget, so page access leaves "
      "the lock-free\nhit path often enough to exercise the miss/eviction "
      "locks). 1 shard\nreproduces the single-mutex miss path.");

  bench::Table shard_table(
      {"shards", "wall ms", "queries/sec", "speedup vs 1"});
  bench::Json shard_sweep = bench::Json::Array();
  double one_shard_ms = 0.0;
  for (const size_t shards : {1u, 4u, 16u}) {
    DatabaseOptions shard_options;
    shard_options.buffer_pool_shards = shards;
    // A pool far smaller than the node count keeps eviction/refetch
    // traffic flowing through the miss path instead of pure hits.
    shard_options.buffer_pool_frames = 64;
    auto shard_db =
        bench::BuildDatabase(dir.path(), "batch_s" + std::to_string(shards),
                             data, shard_options);
    engine::QueryEngineOptions options;
    options.threads = 8;
    engine::QueryEngine engine(shard_db->index(), shard_db->relation(),
                               /*subsequence_index=*/nullptr, options);
    engine.RunBatch(batch);  // warm-up
    shard_db->index()->pool()->ResetStats();

    engine::BatchStats stats;
    const auto results = engine.RunBatch(batch, &stats);
    for (const auto& r : results) {
      TSQ_CHECK_MSG(r.status.ok(), "shard-sweep query failed: %s",
                    r.status.ToString().c_str());
    }
    if (shards == 1) one_shard_ms = stats.wall_ms;
    shard_table.AddRow({std::to_string(shards),
                        bench::Table::Num(stats.wall_ms),
                        bench::Table::Num(1000.0 * kBatch / stats.wall_ms, 0),
                        bench::Table::Num(one_shard_ms / stats.wall_ms, 2)});
    bench::Json row = bench::Json::Object();
    row["shards"] = bench::Json::Int(shards);
    row["pool_frames"] = bench::Json::Int(64);
    row["threads"] = bench::Json::Int(8);
    row["wall_ms"] = bench::Json::Num(stats.wall_ms);
    row["queries_per_sec"] = bench::Json::Num(1000.0 * kBatch /
                                              stats.wall_ms);
    row["pool"] = PoolCountersJson(shard_db->index()->pool()->stats());
    shard_sweep.Append(std::move(row));
  }
  shard_table.Print();
  doc["shard_sweep"] = std::move(shard_sweep);

  std::printf("\n");
  bench::Banner(
      "Parallel partitioned self-join: wall time vs worker threads",
      "Tree-match self-join; candidate leaf pairs split across workers "
      "for\nfull-length verification.");

  // A join-sized subset keeps the candidate pair count tractable.
  const size_t kJoinSeries = bench::Scaled(600, 48);
  const auto join_data =
      workload::MakeRandomWalkDataset(4712, kJoinSeries, kLength);
  auto join_db = bench::BuildDatabase(dir.path(), "batch_join", join_data);
  const double join_eps = 0.8 * std::sqrt(static_cast<double>(kLength));

  bench::Table join_table(
      {"threads", "wall ms", "speedup", "pairs", "candidates"});
  bench::Json join_sweep = bench::Json::Array();
  double join_base_ms = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    QueryStats stats;
    engine::QueryEngineOptions options;
    options.threads = threads;
    engine::QueryEngine engine(join_db->index(), join_db->relation(),
                               /*subsequence_index=*/nullptr, options);
    engine.SelfJoin(join_eps, std::nullopt, nullptr).value();  // warm-up
    const auto pairs = engine.SelfJoin(join_eps, std::nullopt, &stats).value();
    if (threads == 1) join_base_ms = stats.elapsed_ms;
    join_table.AddRow({std::to_string(threads),
                       bench::Table::Num(stats.elapsed_ms),
                       bench::Table::Num(join_base_ms / stats.elapsed_ms, 2),
                       std::to_string(pairs.size()),
                       std::to_string(stats.candidates)});
    bench::Json row = bench::Json::Object();
    row["threads"] = bench::Json::Int(threads);
    row["wall_ms"] = bench::Json::Num(stats.elapsed_ms);
    row["pairs"] = bench::Json::Int(pairs.size());
    row["candidates"] = bench::Json::Int(stats.candidates);
    join_sweep.Append(std::move(row));
  }
  join_table.Print();
  doc["join_sweep"] = std::move(join_sweep);

  const char* out_path = "BENCH_batch_throughput.json";
  if (doc.WriteFile(out_path)) {
    std::printf("\n  wrote %s\n", out_path);
  } else {
    std::printf("\n  WARNING: could not write %s\n", out_path);
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
