// Copyright (c) 2026 The tsq Authors.
//
// Observability overhead: the same query workload with instrumentation
// (a) fully disarmed, (b) metrics armed but tracing off, (c) metrics and
// per-query stage tracing armed. The contract under test is the obs
// subsystem's price list — disarmed instrumentation is one relaxed
// atomic load per site, so mode (a) must sit within noise of the
// pre-obs binary, and answers must be bit-identical in every mode (the
// timers only ever read clocks).
//
// Drops BENCH_obs.json in the working directory — per-mode mean ms for
// range and kNN sweeps plus the relative overhead against the disarmed
// mode — so CI archives the overhead trajectory across PRs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

struct Mode {
  const char* label;
  bool metrics;
  bool tracing;
};

void Apply(const Mode& mode) {
  if (mode.metrics) {
    obs::ArmMetrics();
  } else {
    obs::DisarmMetrics();
  }
  if (mode.tracing) {
    obs::ArmTracing();
  } else {
    obs::DisarmTracing();
  }
}

void Run() {
  bench::Banner(
      "Observability overhead: disarmed / metrics / full tracing",
      "Identical range + kNN sweeps per mode. Disarmed instrumentation\n"
      "must be free (one relaxed load per site) and answers must be\n"
      "bit-identical whether or not the stage timers run.");

  bench::ScratchDir dir("obs");
  auto market = workload::MakeStockMarket(271828);
  market.resize(bench::Scaled(market.size(), 128));
  auto db = bench::BuildDatabase(dir.path(), "obs", market);

  const int kQueries = static_cast<int>(bench::Scaled(40, 4));
  const int kReps = 5;
  const double epsilon = 2.0;
  const size_t k = 10;

  const Mode modes[] = {
      {"disarmed", false, false},
      {"metrics_only", true, false},
      {"metrics_and_tracing", true, true},
  };

  // Reference answers from the disarmed mode; every other mode must
  // reproduce them exactly (same ids, same distances, same order).
  std::vector<std::vector<Match>> range_ref;
  std::vector<std::vector<Match>> knn_ref;

  bench::Json doc = bench::Json::Object();
  doc["bench"] = bench::Json::Str("obs_overhead");
  bench::Json workload_json = bench::Json::Object();
  workload_json["series"] = bench::Json::Int(market.size());
  workload_json["length"] = bench::Json::Int(market[0].values().size());
  workload_json["queries"] = bench::Json::Int(kQueries);
  workload_json["reps"] = bench::Json::Int(kReps);
  workload_json["smoke_divisor"] = bench::Json::Int(bench::SmokeDivisor());
  doc["workload"] = std::move(workload_json);
  bench::Json rows = bench::Json::Array();

  bench::Table table({"mode", "range ms", "knn ms", "overhead %"});
  double baseline_ms = 0.0;

  for (const Mode& mode : modes) {
    Apply(mode);
    std::vector<std::vector<Match>> range_answers(kQueries);
    std::vector<std::vector<Match>> knn_answers(kQueries);
    const double range_ms = bench::MeanMillis(
        [&] {
          for (int q = 0; q < kQueries; ++q) {
            auto matches =
                db->RangeQuery(market[q % market.size()].values(), epsilon);
            if (!matches.ok()) std::abort();
            range_answers[q] = std::move(*matches);
          }
        },
        kReps);
    const double knn_ms = bench::MeanMillis(
        [&] {
          for (int q = 0; q < kQueries; ++q) {
            auto matches = db->Knn(market[q % market.size()].values(), k);
            if (!matches.ok()) std::abort();
            knn_answers[q] = std::move(*matches);
          }
        },
        kReps);

    if (range_ref.empty()) {
      range_ref = std::move(range_answers);
      knn_ref = std::move(knn_answers);
      baseline_ms = range_ms + knn_ms;
    } else {
      // Bit-identical answers in every mode: ids, distances and order.
      for (int q = 0; q < kQueries; ++q) {
        const auto check = [&](const std::vector<Match>& got,
                               const std::vector<Match>& want) {
          if (got.size() != want.size()) std::abort();
          for (size_t i = 0; i < got.size(); ++i) {
            if (got[i].id != want[i].id ||
                got[i].distance != want[i].distance) {
              std::fprintf(stderr,
                           "FATAL: answers changed under mode %s\n",
                           mode.label);
              std::abort();
            }
          }
        };
        check(range_answers[q], range_ref[q]);
        check(knn_answers[q], knn_ref[q]);
      }
    }

    const double total_ms = range_ms + knn_ms;
    const double overhead =
        baseline_ms > 0.0 ? (total_ms / baseline_ms - 1.0) * 100.0 : 0.0;
    table.AddRow({mode.label, bench::Table::Num(range_ms),
                  bench::Table::Num(knn_ms),
                  bench::Table::Num(overhead, 1)});
    bench::Json row = bench::Json::Object();
    row["mode"] = bench::Json::Str(mode.label);
    row["range_ms"] = bench::Json::Num(range_ms);
    row["knn_ms"] = bench::Json::Num(knn_ms);
    row["overhead_pct"] = bench::Json::Num(overhead);
    rows.Append(std::move(row));
  }
  // Leave the process as the next bench expects it: disarmed.
  obs::DisarmMetrics();
  obs::DisarmTracing();

  table.Print();
  doc["rows"] = std::move(rows);
  if (!doc.WriteFile("BENCH_obs.json")) {
    std::fprintf(stderr, "WARNING: could not write BENCH_obs.json\n");
  } else {
    std::printf("\nwrote BENCH_obs.json\n");
  }
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
