// Copyright (c) 2026 The tsq Authors.
//
// Reproduces the shapes of the paper's Figures 3-5 (Examples 2.1-2.3): the
// transformation pipelines on stock pairs. The original stock data
// (ftp.ai.mit.edu) is unavailable; fixed-seed simulated stand-ins with the
// same qualitative relationships are used instead (see DESIGN.md,
// "Substitutions"). The check is the *shape*: each pipeline step shrinks
// the distance for related pairs; smoothing cannot reconcile dissimilar
// trends.

#include <cstdio>

#include "bench_util.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "workload/paper_data.h"

namespace tsq {
namespace {

struct PipelineResult {
  double original;
  double shifted;
  double normalized;
  double smoothed;        // 20-day MA of normal forms
  double reversed = 0.0;  // only meaningful for the opposite pair
};

PipelineResult RunPipeline(const TimeSeries& a, const TimeSeries& b,
                           bool reverse_b) {
  PipelineResult r{};
  r.original = EuclideanDistance(a, b);

  RealVec sa = a.values();
  RealVec sb = b.values();
  const double ma = a.Mean();
  const double mb = b.Mean();
  for (double& v : sa) v -= ma;
  for (double& v : sb) v -= mb;
  r.shifted = EuclideanDistance(sa, sb);

  RealVec na = ToNormalForm(a.values()).normalized;
  RealVec nb = ToNormalForm(b.values()).normalized;
  r.normalized = EuclideanDistance(na, nb);

  if (reverse_b) {
    for (double& v : nb) v = -v;
    r.reversed = EuclideanDistance(na, nb);
  }
  r.smoothed = EuclideanDistance(CircularMovingAverage(na, 20),
                                 CircularMovingAverage(nb, 20));
  return r;
}

void RunFigure3() {
  bench::Banner(
      "Figure 3 / Example 2.1 (simulated stand-in for BBA/ZTR)",
      "Shift -> scale (normal form) -> 20-day MA shrinks the distance.\n"
      "Paper: 16.16 -> 12.78 -> 11.10 -> 2.75 (each step helps; MA is the "
      "big drop)");
  auto [a, b] = workload::paper::TrendingPair();
  PipelineResult r = RunPipeline(a, b, /*reverse_b=*/false);
  bench::Table table({"step", "paper(BBA/ZTR)", "measured(sim)"});
  table.AddRow({"original", "16.16", bench::Table::Num(r.original, 2)});
  table.AddRow({"shifted (mean 0)", "12.78", bench::Table::Num(r.shifted, 2)});
  table.AddRow({"scaled (normal form)", "11.10",
                bench::Table::Num(r.normalized, 2)});
  table.AddRow({"20-day MV", "2.75", bench::Table::Num(r.smoothed, 2)});
  table.Print();
  std::printf("\n  shape check: monotone decrease %s, MA drop >2x %s\n",
              (r.shifted <= r.original && r.normalized <= r.shifted &&
               r.smoothed < r.normalized)
                  ? "OK"
                  : "VIOLATED",
              (r.smoothed < r.normalized / 2.0) ? "OK" : "VIOLATED");
}

void RunFigure4() {
  bench::Banner(
      "Figure 4 / Example 2.2 (simulated stand-in for CC/VAR)",
      "Opposite movers: normal form -> reverse -> 20-day MA.\n"
      "Paper: 119.59 -> 21.81 -> 5.68 -> 3.81");
  auto [a, b] = workload::paper::OppositePair();
  PipelineResult r = RunPipeline(a, b, /*reverse_b=*/true);
  bench::Table table({"step", "paper(CC/VAR)", "measured(sim)"});
  table.AddRow({"original", "119.59", bench::Table::Num(r.original, 2)});
  table.AddRow({"normal form", "21.81", bench::Table::Num(r.normalized, 2)});
  table.AddRow({"reversed", "5.68", bench::Table::Num(r.reversed, 2)});
  table.AddRow({"20-day MV (reversed)", "3.81",
                bench::Table::Num(r.smoothed, 2)});
  table.Print();
  std::printf("\n  shape check: reverse is the key step %s\n",
              (r.reversed < r.normalized / 2.0 && r.smoothed <= r.reversed)
                  ? "OK"
                  : "VIOLATED");
}

void RunFigure5() {
  bench::Banner(
      "Figure 5 / Example 2.3 (simulated stand-in for DMIC/MXF)",
      "Dissimilar trends stay apart under repeated smoothing.\n"
      "Paper: 11.06 -> 10.09 -> 9.63 -> 9.22 -> ... -> 6.57 (10th MA)");
  auto [a, b] = workload::paper::DissimilarPair();
  RealVec na = ToNormalForm(a.values()).normalized;
  RealVec nb = ToNormalForm(b.values()).normalized;
  bench::Table table({"MA applications", "paper(DMIC/MXF)", "measured(sim)"});
  const char* paper_vals[] = {"11.06", "10.09", "9.63", "9.22", "-",
                              "-",     "-",     "-",    "-",    "-", "6.57"};
  double first = EuclideanDistance(na, nb);
  double last = first;
  for (int round = 0; round <= 10; ++round) {
    if (round > 0) {
      na = CircularMovingAverage(na, 20);
      nb = CircularMovingAverage(nb, 20);
    }
    last = EuclideanDistance(na, nb);
    table.AddRow({std::to_string(round), paper_vals[round],
                  bench::Table::Num(last, 2)});
  }
  table.Print();
  std::printf("\n  shape check: still far after 10 MAs (>%.0f%% remains) %s\n",
              100.0 / 2.5,
              (last > first / 2.5) ? "OK" : "VIOLATED");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::RunFigure3();
  tsq::RunFigure4();
  tsq::RunFigure5();
  return 0;
}
