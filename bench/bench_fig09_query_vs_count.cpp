// Copyright (c) 2026 The tsq Authors.
//
// Reproduces Figure 9: range-query time versus the number of sequences
// (500..12000) at fixed length 128, identity transformation vs no
// transformation. Expected shape: the curves track each other; index
// traversal with transformations does not deteriorate as the relation
// grows.

#include <cstdio>

#include "bench_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"

namespace tsq {
namespace {

void Run() {
  bench::Banner(
      "Figure 9: time per query varying the number of sequences",
      "Sequence length 128; identity transformation vs no transformation.\n"
      "Paper shape: same result as Figure 8 — a small constant gap.");

  bench::Table table({"sequences", "no-transform ms", "with-transform ms",
                      "gap ms", "nodes (plain)", "nodes (transf)",
                      "avg answers"});

  const size_t kLength = 128;
  const int kQueries = static_cast<int>(bench::Scaled(25, 4));
  const double kEps = 0.12 * 11.3137;  // 0.12 * sqrt(128), as in Figure 8

  for (const size_t full_count :
       {500u, 1000u, 2000u, 4000u, 8000u, 12000u}) {
    const size_t count = bench::Scaled(full_count, 64);
    bench::ScratchDir dir("fig09_" + std::to_string(count));
    auto data = workload::MakeRandomWalkDataset(907 + count, count, kLength);
    auto db = bench::BuildDatabase(dir.path(), "fig09", data);

    QuerySpec identity_spec;
    identity_spec.transform =
        FeatureTransform::Spectral(transforms::Identity(kLength));

    double plain_ms = 0.0;
    double transformed_ms = 0.0;
    uint64_t plain_nodes = 0;
    uint64_t transformed_nodes = 0;
    uint64_t answers = 0;

    for (int q = 0; q < kQueries; ++q) {
      const RealVec& query = data[(q * 131) % count].values();

      plain_ms += bench::MeanMillis(
          [&db, &query, kEps]() { db->RangeQuery(query, kEps).value(); }, 3);
      plain_nodes += db->last_stats().nodes_visited;

      transformed_ms += bench::MeanMillis(
          [&db, &query, kEps, &identity_spec]() {
            db->RangeQuery(query, kEps, identity_spec).value();
          },
          3);
      transformed_nodes += db->last_stats().nodes_visited;
      answers += db->last_stats().answers;
    }
    plain_ms /= kQueries;
    transformed_ms /= kQueries;

    table.AddRow({std::to_string(count), bench::Table::Num(plain_ms),
                  bench::Table::Num(transformed_ms),
                  bench::Table::Num(transformed_ms - plain_ms),
                  std::to_string(plain_nodes / kQueries),
                  std::to_string(transformed_nodes / kQueries),
                  bench::Table::Num(static_cast<double>(answers) / kQueries,
                                    1)});
  }
  table.Print();
  std::printf(
      "\n  shape check: the gap column stays roughly constant while the "
      "relation grows 24x.\n");
}

}  // namespace
}  // namespace tsq

int main() {
  tsq::Run();
  return 0;
}
