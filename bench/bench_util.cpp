// Copyright (c) 2026 The tsq Authors.

#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace tsq {
namespace bench {

ScratchDir::ScratchDir(const std::string& tag) {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      ("tsq_bench_" + tag + "_XXXXXX"))
                         .string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  TSQ_CHECK_MSG(mkdtemp(buf.data()) != nullptr, "mkdtemp failed for %s",
                tmpl.c_str());
  path_ = buf.data();
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

std::unique_ptr<Database> BuildDatabase(const std::string& directory,
                                        const std::string& name,
                                        const std::vector<TimeSeries>& series,
                                        const DatabaseOptions& base_options) {
  DatabaseOptions options = base_options;
  options.directory = directory;
  options.name = name;
  auto db = Database::Create(options);
  TSQ_CHECK_MSG(db.ok(), "Database::Create: %s",
                db.status().ToString().c_str());
  for (const TimeSeries& s : series) {
    auto id = (*db)->Insert(s.name(), s.values());
    TSQ_CHECK_MSG(id.ok(), "Insert: %s", id.status().ToString().c_str());
  }
  Status built = (*db)->BuildIndex();
  TSQ_CHECK_MSG(built.ok(), "BuildIndex: %s", built.ToString().c_str());
  return std::move(*db);
}

double MeanMillis(const std::function<void()>& fn, int reps) {
  TSQ_CHECK(reps > 0);
  Stopwatch watch;
  for (int i = 0; i < reps; ++i) fn();
  return watch.ElapsedMillis() / reps;
}

size_t SmokeDivisor() {
  static const size_t divisor = [] {
    const char* env = std::getenv("TSQ_BENCH_SMOKE");
    if (env == nullptr) return size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 1 ? static_cast<size_t>(parsed) : size_t{1};
  }();
  return divisor;
}

size_t Scaled(size_t n, size_t floor) {
  return std::max(floor, n / SmokeDivisor());
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  TSQ_CHECK_MSG(cells.size() == header_.size(),
                "row has %zu cells, header has %zu", cells.size(),
                header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  std::printf("  %s\n", std::string(total - 2, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

void Banner(const std::string& experiment, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n\n");
}

Json Json::Str(std::string v) {
  Json j(Kind::kString);
  j.string_ = std::move(v);
  return j;
}

Json Json::Num(double v) {
  Json j(Kind::kNumber);
  j.number_ = v;
  return j;
}

Json Json::Int(uint64_t v) {
  Json j(Kind::kInt);
  j.int_ = v;
  return j;
}

Json Json::Bool(bool v) {
  Json j(Kind::kBool);
  j.bool_ = v;
  return j;
}

Json& Json::operator[](const std::string& key) {
  TSQ_CHECK_MSG(kind_ == Kind::kObject, "operator[] on a non-object Json");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json());
  return members_.back().second;
}

void Json::Append(Json v) {
  TSQ_CHECK_MSG(kind_ == Kind::kArray, "Append on a non-array Json");
  elements_.push_back(std::move(v));
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent) const {
  const std::string pad(2 * indent, ' ');
  const std::string pad_in(2 * (indent + 1), ' ');
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kNumber: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6g", number_);
      *out += buf;
      break;
    }
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        *out += pad_in;
        AppendEscaped(out, members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < members_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (size_t i = 0; i < elements_.size(); ++i) {
        *out += pad_in;
        elements_[i].DumpTo(out, indent + 1);
        if (i + 1 < elements_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

bool Json::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = Dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace bench
}  // namespace tsq
