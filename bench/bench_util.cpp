// Copyright (c) 2026 The tsq Authors.

#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace tsq {
namespace bench {

ScratchDir::ScratchDir(const std::string& tag) {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      ("tsq_bench_" + tag + "_XXXXXX"))
                         .string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  TSQ_CHECK_MSG(mkdtemp(buf.data()) != nullptr, "mkdtemp failed for %s",
                tmpl.c_str());
  path_ = buf.data();
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

std::unique_ptr<Database> BuildDatabase(const std::string& directory,
                                        const std::string& name,
                                        const std::vector<TimeSeries>& series,
                                        const DatabaseOptions& base_options) {
  DatabaseOptions options = base_options;
  options.directory = directory;
  options.name = name;
  auto db = Database::Create(options);
  TSQ_CHECK_MSG(db.ok(), "Database::Create: %s",
                db.status().ToString().c_str());
  for (const TimeSeries& s : series) {
    auto id = (*db)->Insert(s.name(), s.values());
    TSQ_CHECK_MSG(id.ok(), "Insert: %s", id.status().ToString().c_str());
  }
  Status built = (*db)->BuildIndex();
  TSQ_CHECK_MSG(built.ok(), "BuildIndex: %s", built.ToString().c_str());
  return std::move(*db);
}

double MeanMillis(const std::function<void()>& fn, int reps) {
  TSQ_CHECK(reps > 0);
  Stopwatch watch;
  for (int i = 0; i < reps; ++i) fn();
  return watch.ElapsedMillis() / reps;
}

size_t SmokeDivisor() {
  static const size_t divisor = [] {
    const char* env = std::getenv("TSQ_BENCH_SMOKE");
    if (env == nullptr) return size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 1 ? static_cast<size_t>(parsed) : size_t{1};
  }();
  return divisor;
}

size_t Scaled(size_t n, size_t floor) {
  return std::max(floor, n / SmokeDivisor());
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  TSQ_CHECK_MSG(cells.size() == header_.size(),
                "row has %zu cells, header has %zu", cells.size(),
                header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 2;
  for (size_t w : widths) total += w + 2;
  std::printf("  %s\n", std::string(total - 2, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

void Banner(const std::string& experiment, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
  std::printf("================================================================\n\n");
}

}  // namespace bench
}  // namespace tsq
