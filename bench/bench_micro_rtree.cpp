// Copyright (c) 2026 The tsq Authors.
//
// Micro-benchmarks (google-benchmark) for the R-tree family: insertion and
// range-search throughput per split algorithm, with and without forced
// reinsertion — the index-construction ablation called out in DESIGN.md
// (the paper builds on the R*-tree because of its better query
// performance; these runs show the construction/query tradeoff).

#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/random.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tsq {
namespace {

using rtree::RStarTree;
using rtree::RTreeOptions;
using rtree::SplitAlgorithm;

struct TreeEnv {
  std::string path;
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<RStarTree> tree;

  TreeEnv(SplitAlgorithm split, bool reinsert, size_t dims) {
    path = (std::filesystem::temp_directory_path() /
            ("tsq_micrortree_" + std::to_string(reinterpret_cast<uintptr_t>(
                                     this))))
               .string();
    file = PageFile::Create(path).value();
    pool = std::make_unique<BufferPool>(file.get(), 512);
    RTreeOptions options;
    options.split = split;
    options.forced_reinsert = reinsert;
    tree = RStarTree::Create(pool.get(), dims, options).value();
  }
  ~TreeEnv() {
    tree.reset();
    pool.reset();
    file.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

spatial::Point RandomPoint(Rng* rng, size_t dims) {
  spatial::Point p(dims);
  for (double& v : p) v = rng->Uniform(0.0, 100.0);
  return p;
}

SplitAlgorithm SplitOf(int64_t arg) {
  switch (arg) {
    case 0:
      return SplitAlgorithm::kRStar;
    case 1:
      return SplitAlgorithm::kGuttmanQuadratic;
    default:
      return SplitAlgorithm::kGuttmanLinear;
  }
}

const char* SplitName(int64_t arg) {
  switch (arg) {
    case 0:
      return "rstar";
    case 1:
      return "quadratic";
    default:
      return "linear";
  }
}

void BM_RTreeInsert(benchmark::State& state) {
  const SplitAlgorithm split = SplitOf(state.range(0));
  const bool reinsert = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    TreeEnv env(split, reinsert, 6);
    Rng rng(42);
    state.ResumeTiming();
    for (uint64_t i = 0; i < 2000; ++i) {
      benchmark::DoNotOptimize(
          env.tree->InsertPoint(RandomPoint(&rng, 6), i).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel(std::string(SplitName(state.range(0))) +
                 (reinsert ? "+reinsert" : ""));
}
BENCHMARK(BM_RTreeInsert)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Unit(benchmark::kMillisecond);

void BM_RTreeRangeSearch(benchmark::State& state) {
  const SplitAlgorithm split = SplitOf(state.range(0));
  const bool reinsert = state.range(1) != 0;
  TreeEnv env(split, reinsert, 6);
  Rng rng(43);
  for (uint64_t i = 0; i < 5000; ++i) {
    env.tree->InsertPoint(RandomPoint(&rng, 6), i).ok();
  }
  spatial::Point lo(6), hi(6);
  for (size_t d = 0; d < 6; ++d) {
    lo[d] = 40.0;
    hi[d] = 60.0;
  }
  const spatial::Rect query(lo, hi);
  uint64_t sink = 0;
  for (auto _ : state) {
    env.tree
        ->Search(query,
                 [&sink](uint64_t id, const spatial::Rect&) {
                   sink += id;
                   return true;
                 })
        .ok();
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(std::string(SplitName(state.range(0))) +
                 (reinsert ? "+reinsert" : ""));
}
BENCHMARK(BM_RTreeRangeSearch)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0});

void BM_RTreeTransformedSearch(benchmark::State& state) {
  // The Figure 8 gap, isolated: plain vs transformed traversal.
  const bool transformed = state.range(0) != 0;
  TreeEnv env(SplitAlgorithm::kRStar, true, 6);
  Rng rng(44);
  for (uint64_t i = 0; i < 5000; ++i) {
    env.tree->InsertPoint(RandomPoint(&rng, 6), i).ok();
  }
  spatial::Point lo(6), hi(6);
  for (size_t d = 0; d < 6; ++d) {
    lo[d] = 40.0;
    hi[d] = 60.0;
  }
  const spatial::Rect query(lo, hi);
  const spatial::AffineMap identity = spatial::AffineMap::Identity(6);
  uint64_t sink = 0;
  auto emit = [&sink](uint64_t id, const spatial::Rect&) {
    sink += id;
    return true;
  };
  for (auto _ : state) {
    if (transformed) {
      env.tree->SearchTransformed(identity, query, emit).ok();
    } else {
      env.tree->Search(query, emit).ok();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetLabel(transformed ? "transformed(identity)" : "plain");
}
BENCHMARK(BM_RTreeTransformedSearch)->Arg(0)->Arg(1);

void BM_RTreeKnn(benchmark::State& state) {
  TreeEnv env(SplitAlgorithm::kRStar, true, 6);
  Rng rng(45);
  for (uint64_t i = 0; i < 5000; ++i) {
    env.tree->InsertPoint(RandomPoint(&rng, 6), i).ok();
  }
  class Metric final : public rtree::NnMetric {
   public:
    explicit Metric(spatial::Point q) : q_(std::move(q)) {}
    double MinDistSquared(const spatial::Rect& rect) const override {
      return spatial::MinDistSquared(q_, rect);
    }

   private:
    spatial::Point q_;
  };
  Metric metric(spatial::Point(6, 50.0));
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<rtree::NnResult> out;
  for (auto _ : state) {
    env.tree->NearestNeighbors(metric, k, nullptr, &out).ok();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace tsq

BENCHMARK_MAIN();
