// Copyright (c) 2026 The tsq Authors.
//
// Tests for the common runtime: Status/Result, logging levels, the
// deterministic PRNG, and the stopwatch.

#include <cmath>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace tsq {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("record 7");
  EXPECT_EQ(s.ToString(), "NotFound: record 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_NE(Status::IOError("a"), Status::IOError("b"));
  EXPECT_NE(Status::IOError("a"), Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, UnavailableFactoryAndPredicate) {
  Status s = Status::Unavailable("server busy");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.ToString(), "Unavailable: server busy");
}

// ---------------------------------------------------------------------------
// Result<T>
// ---------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 3;
  EXPECT_EQ(r.ValueOr(9), 3);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int in, int* out) {
  TSQ_ASSIGN_OR_RETURN(const int half, HalveEven(in));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseAssignOrReturn(7, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.NextU64());
  EXPECT_GT(seen.size(), 12u);  // not stuck in a degenerate cycle
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-4.0, 4.0);
    EXPECT_GE(v, -4.0);
    EXPECT_LT(v, 4.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {3,4,5,6,7} hit in 1000 draws
}

TEST(RngTest, UniformMeanConverges) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

// ---------------------------------------------------------------------------
// Stopwatch & logging
// ---------------------------------------------------------------------------

TEST(StopwatchTest, MeasuresMonotonicallyAndRestarts) {
  Stopwatch w;
  const int64_t t0 = w.ElapsedNanos();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const int64_t t1 = w.ElapsedNanos();
  EXPECT_GE(t1, t0);
  EXPECT_GT(w.ElapsedSeconds(), 0.0);
  w.Restart();
  EXPECT_LT(w.ElapsedNanos(), t1 + 1000000000);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel before = Logger::GetLevel();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — the call path is what we exercise).
  TSQ_LOG(kDebug) << "suppressed " << 42;
  TSQ_LOG(kError) << "emitted";
  Logger::SetLevel(before);
}

TEST(LoggingTest, ParseLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(Logger::ParseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::ParseLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(Logger::ParseLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::ParseLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(Logger::ParseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logger::ParseLevel("off"), LogLevel::kOff);
  EXPECT_EQ(Logger::ParseLevel("none"), LogLevel::kOff);
  EXPECT_EQ(Logger::ParseLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(Logger::ParseLevel("4"), LogLevel::kOff);
  EXPECT_EQ(Logger::ParseLevel(nullptr), std::nullopt);
  EXPECT_EQ(Logger::ParseLevel(""), std::nullopt);
  EXPECT_EQ(Logger::ParseLevel("loud"), std::nullopt);
  EXPECT_EQ(Logger::ParseLevel("7"), std::nullopt);
}

TEST(LoggingTest, ReloadFromEnvAppliesTsqLogLevel) {
  const LogLevel before = Logger::GetLevel();
  ::setenv("TSQ_LOG_LEVEL", "debug", /*overwrite=*/1);
  Logger::ReloadFromEnv();
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
  // Unparsable values leave the level untouched instead of resetting it.
  ::setenv("TSQ_LOG_LEVEL", "shout", 1);
  Logger::ReloadFromEnv();
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kDebug);
  ::setenv("TSQ_LOG_LEVEL", "off", 1);
  Logger::ReloadFromEnv();
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kOff);
  ::unsetenv("TSQ_LOG_LEVEL");
  Logger::ReloadFromEnv();
  EXPECT_EQ(Logger::GetLevel(), LogLevel::kOff);
  Logger::SetLevel(before);
}

}  // namespace
}  // namespace tsq
