// Copyright (c) 2026 The tsq Authors.
//
// Tests for the workload generators: the paper's synthetic random walk
// (Sec. 5), the stock-market simulator (including the planted-pair
// behaviours the Table 1 join relies on), and the paper's literal example
// data with its printed distances — plus the Sec. 2 example pipelines on
// the simulated stand-in pairs.

#include <cmath>

#include "gtest/gtest.h"
#include "series/distance.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "series/warp.h"
#include "test_util.h"
#include "workload/paper_data.h"
#include "workload/random_walk.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace workload {
namespace {

// ---------------------------------------------------------------------------
// Random walk
// ---------------------------------------------------------------------------

TEST(RandomWalkTest, RespectsStartAndStepBounds) {
  Rng rng(1);
  RandomWalkOptions opts;
  for (int trial = 0; trial < 50; ++trial) {
    RealVec x = RandomWalkSeries(&rng, 100, opts);
    ASSERT_EQ(x.size(), 100u);
    EXPECT_GE(x[0], 20.0);
    EXPECT_LE(x[0], 99.0);
    for (size_t i = 1; i < x.size(); ++i) {
      EXPECT_LE(std::abs(x[i] - x[i - 1]), 4.0 + 1e-12);
    }
  }
}

TEST(RandomWalkTest, TruncatedNormalStartStaysInRange) {
  Rng rng(2);
  RandomWalkOptions opts;
  opts.start = StartDistribution::kTruncatedNormal;
  for (int trial = 0; trial < 100; ++trial) {
    RealVec x = RandomWalkSeries(&rng, 4, opts);
    EXPECT_GE(x[0], 20.0);
    EXPECT_LE(x[0], 99.0);
  }
}

TEST(RandomWalkTest, DatasetIsDeterministicPerSeed) {
  auto a = MakeRandomWalkDataset(7, 10, 32);
  auto b = MakeRandomWalkDataset(7, 10, 32);
  auto c = MakeRandomWalkDataset(8, 10, 32);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a[3].values(), b[3].values());
  EXPECT_NE(a[3].values(), c[3].values());
  EXPECT_EQ(a[0].name(), "RW000000");
  EXPECT_EQ(a[9].name(), "RW000009");
}

TEST(RandomWalkTest, SeriesAreDiverse) {
  auto data = MakeRandomWalkDataset(9, 50, 64);
  // No two series identical; pairwise distances are nontrivial.
  double min_dist = 1e18;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      min_dist = std::min(
          min_dist, EuclideanDistance(data[i].values(), data[j].values()));
    }
  }
  EXPECT_GT(min_dist, 1.0);
}

// ---------------------------------------------------------------------------
// Stock market simulator
// ---------------------------------------------------------------------------

TEST(StockSimTest, GeneratesRequestedShape) {
  StockMarketOptions opts;
  opts.num_series = 200;
  opts.length = 64;
  auto market = MakeStockMarket(3, opts);
  ASSERT_EQ(market.size(), 200u);
  for (const TimeSeries& s : market) {
    ASSERT_EQ(s.length(), 64u);
    EXPECT_GT(s.Min(), 0.0);  // prices stay positive
  }
  EXPECT_EQ(market[0].name(), "SIMa0000");
  EXPECT_EQ(market[1].name(), "SIMb0000");
}

TEST(StockSimTest, DefaultMatchesPaperDataSetShape) {
  auto market = MakeStockMarket(4);
  EXPECT_EQ(market.size(), 1067u);  // the paper's relation size
  EXPECT_EQ(market[0].length(), 128u);
}

TEST(StockSimTest, DeterministicPerSeed) {
  StockMarketOptions opts;
  opts.num_series = 50;
  auto a = MakeStockMarket(5, opts);
  auto b = MakeStockMarket(5, opts);
  EXPECT_EQ(a[20].values(), b[20].values());
}

TEST(StockSimTest, PlantedSimilarPairsAreCloseAfterSmoothing) {
  StockMarketOptions opts;
  opts.num_series = 100;
  opts.similar_pairs = 5;
  opts.opposite_pairs = 0;
  auto market = MakeStockMarket(6, opts);
  // For each planted pair, the normal-form + 20-day-MA distance must be
  // small compared to a random pair's.
  double planted_max = 0.0;
  for (size_t p = 0; p < 5; ++p) {
    const RealVec a = SuccessiveCircularMovingAverage(
        ToNormalForm(market[2 * p].values()).normalized, 20, 1);
    const RealVec b = SuccessiveCircularMovingAverage(
        ToNormalForm(market[2 * p + 1].values()).normalized, 20, 1);
    planted_max = std::max(planted_max, EuclideanDistance(a, b));
  }
  // Random (non-planted) pairs for contrast.
  double random_min = 1e18;
  for (size_t i = 10; i < 30; i += 2) {
    const RealVec a = SuccessiveCircularMovingAverage(
        ToNormalForm(market[i].values()).normalized, 20, 1);
    const RealVec b = SuccessiveCircularMovingAverage(
        ToNormalForm(market[i + 1].values()).normalized, 20, 1);
    random_min = std::min(random_min, EuclideanDistance(a, b));
  }
  EXPECT_LT(planted_max, random_min);
  EXPECT_LT(planted_max, 2.0);
}

TEST(StockSimTest, PlantedOppositePairsReverseCorrectly) {
  StockMarketOptions opts;
  opts.num_series = 100;
  opts.similar_pairs = 0;
  opts.opposite_pairs = 5;
  auto market = MakeStockMarket(7, opts);
  for (size_t p = 0; p < 5; ++p) {
    const RealVec nfa = ToNormalForm(market[2 * p].values()).normalized;
    RealVec nfb = ToNormalForm(market[2 * p + 1].values()).normalized;
    const double straight =
        EuclideanDistance(CircularMovingAverage(nfa, 20),
                          CircularMovingAverage(nfb, 20));
    for (double& v : nfb) v = -v;  // reverse
    const double reversed =
        EuclideanDistance(CircularMovingAverage(nfa, 20),
                          CircularMovingAverage(nfb, 20));
    EXPECT_LT(reversed, straight / 2.0) << "pair " << p;
  }
}

TEST(StockSimTest, RejectsImpossiblePlantCounts) {
  StockMarketOptions opts;
  opts.num_series = 5;
  opts.similar_pairs = 2;
  opts.opposite_pairs = 2;  // needs 8 slots > 5
  EXPECT_DEATH(MakeStockMarket(8, opts), "too small");
}

// ---------------------------------------------------------------------------
// Paper example data (exact)
// ---------------------------------------------------------------------------

TEST(PaperDataTest, Figure1SequencesAndDistances) {
  const TimeSeries s1 = paper::Fig1SeriesS1();
  const TimeSeries s2 = paper::Fig1SeriesS2();
  ASSERT_EQ(s1.length(), 15u);
  ASSERT_EQ(s2.length(), 15u);
  EXPECT_EQ(s1[0], 36.0);
  EXPECT_EQ(s2[0], 40.0);
  // Example 1.1's two printed distances.
  EXPECT_NEAR(EuclideanDistance(s1, s2), 11.92, 0.005);
  EXPECT_NEAR(EuclideanDistance(CircularMovingAverage(s1.values(), 3),
                                CircularMovingAverage(s2.values(), 3)),
              0.47, 0.005);
}

TEST(PaperDataTest, Figure2WarpIdentity) {
  const TimeSeries p = paper::Fig2SeriesP();
  const TimeSeries s = paper::Fig2SeriesS();
  ASSERT_EQ(p.length(), 4u);
  ASSERT_EQ(s.length(), 8u);
  EXPECT_EQ(StretchTime(p.values(), 2), s.values());
}

TEST(PaperDataTest, Figure2SubsequenceDistanceClaim) {
  // "The Euclidean distance between ~p and any subsequence of length four
  // of ~s is more than 1.41."
  const RealVec p = paper::Fig2SeriesP().values();
  const RealVec s = paper::Fig2SeriesS().values();
  for (size_t off = 0; off + 4 <= s.size(); ++off) {
    const RealVec sub(s.begin() + static_cast<ptrdiff_t>(off),
                      s.begin() + static_cast<ptrdiff_t>(off + 4));
    EXPECT_GT(EuclideanDistance(p, sub), 1.41 - 1e-9) << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Sec. 2 example pipelines on the simulated stand-ins
// ---------------------------------------------------------------------------

TEST(PaperDataTest, TrendingPairPipelineShrinksDistance) {
  // Ex. 2.1 shape: original >> shifted > scaled(normal form) >> 20-day MA.
  auto [a, b] = paper::TrendingPair();
  const double original = EuclideanDistance(a, b);
  RealVec sa = a.values();
  RealVec sb = b.values();
  const double mean_a = a.Mean();
  const double mean_b = b.Mean();
  for (double& v : sa) v -= mean_a;
  for (double& v : sb) v -= mean_b;
  const double shifted = EuclideanDistance(sa, sb);
  const RealVec na = ToNormalForm(a.values()).normalized;
  const RealVec nb = ToNormalForm(b.values()).normalized;
  const double normalized = EuclideanDistance(na, nb);
  const double smoothed = EuclideanDistance(CircularMovingAverage(na, 20),
                                            CircularMovingAverage(nb, 20));
  EXPECT_LT(shifted, original);
  EXPECT_LT(smoothed, normalized);
  EXPECT_LT(smoothed, original / 4.0);  // the big drop the example shows
}

TEST(PaperDataTest, OppositePairPipelineNeedsReversal) {
  // Ex. 2.2 shape: normal form helps, reversal + smoothing collapses it.
  auto [a, b] = paper::OppositePair();
  const double original = EuclideanDistance(a, b);
  const RealVec na = ToNormalForm(a.values()).normalized;
  RealVec nb = ToNormalForm(b.values()).normalized;
  const double normalized = EuclideanDistance(na, nb);
  for (double& v : nb) v = -v;
  const double reversed = EuclideanDistance(na, nb);
  const double smoothed = EuclideanDistance(CircularMovingAverage(na, 20),
                                            CircularMovingAverage(nb, 20));
  EXPECT_LT(normalized, original);
  EXPECT_LT(reversed, normalized);
  EXPECT_LT(smoothed, reversed + 1e-9);
  EXPECT_LT(smoothed, original / 8.0);
}

TEST(PaperDataTest, DissimilarPairStaysFar) {
  // Ex. 2.3 shape: smoothing keeps reducing the distance slightly but the
  // pair never becomes close — "two series that have dissimilar trends
  // still look different".
  auto [a, b] = paper::DissimilarPair();
  const RealVec na = ToNormalForm(a.values()).normalized;
  const RealVec nb = ToNormalForm(b.values()).normalized;
  const double normalized = EuclideanDistance(na, nb);
  double prev = normalized;
  RealVec sa = na;
  RealVec sb = nb;
  for (int round = 1; round <= 10; ++round) {
    sa = CircularMovingAverage(sa, 20);
    sb = CircularMovingAverage(sb, 20);
    const double d = EuclideanDistance(sa, sb);
    EXPECT_LE(d, prev + 1e-9) << "round " << round;
    prev = d;
  }
  // Even the 10th moving average leaves them clearly apart (paper: 6.57
  // from 11.06; we require the same "more than half remains" shape).
  EXPECT_GT(prev, normalized / 2.5);
}

TEST(PaperDataTest, StandInsAreDeterministic) {
  auto [a1, b1] = paper::TrendingPair();
  auto [a2, b2] = paper::TrendingPair();
  EXPECT_EQ(a1.values(), a2.values());
  EXPECT_EQ(b1.values(), b2.values());
}

}  // namespace
}  // namespace workload
}  // namespace tsq
