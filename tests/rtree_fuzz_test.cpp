// Copyright (c) 2026 The tsq Authors.
//
// Model-based fuzz test for the R*-tree: random interleavings of inserts,
// removes and searches are checked against an exact in-memory reference
// after every batch, with structural invariants audited along the way.
// Parameterized over seeds and tree configurations so ctest runs many
// independent schedules.

#include <map>
#include <set>
#include <tuple>

#include "common/random.h"
#include "gtest/gtest.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace tsq {
namespace rtree {
namespace {

using spatial::Point;
using spatial::Rect;
using tsq::testing::TempDir;

class RTreeFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, SplitAlgorithm>> {
};

TEST_P(RTreeFuzzTest, RandomScheduleMatchesReferenceModel) {
  const auto [seed, split] = GetParam();
  TempDir dir;
  auto file = PageFile::Create(dir.file("fuzz.pages")).value();
  BufferPool pool(file.get(), 96);
  RTreeOptions options;
  options.split = split;
  options.max_entries_override = 6;  // deep trees, frequent splits/merges
  auto tree = RStarTree::Create(&pool, 3, options).value();

  Rng rng(seed);
  std::map<uint64_t, Point> model;  // id -> point
  uint64_t next_id = 0;

  auto check_against_model = [&]() {
    // Count and invariants.
    ASSERT_EQ(tree->size(), model.size());
    auto report = tree->CheckInvariants();
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->ok) << report->message;
    // Three random range queries.
    for (int q = 0; q < 3; ++q) {
      Rect query = tsq::testing::RandomRect(&rng, 3, 0.0, 50.0);
      std::set<uint64_t> expected;
      for (const auto& [id, p] : model) {
        if (query.Contains(p)) expected.insert(id);
      }
      std::set<uint64_t> actual;
      ASSERT_TRUE(tree->Search(query,
                               [&actual](uint64_t id, const Rect&) {
                                 actual.insert(id);
                                 return true;
                               })
                      .ok());
      ASSERT_EQ(actual, expected);
    }
  };

  for (int batch = 0; batch < 12; ++batch) {
    const int ops = 60;
    for (int op = 0; op < ops; ++op) {
      const double dice = rng.NextDouble();
      if (dice < 0.65 || model.empty()) {
        // Insert; clustered coordinates provoke overlapping MBRs.
        Point p(3);
        const double cluster = 10.0 * static_cast<double>(rng.UniformInt(0, 4));
        for (double& v : p) v = cluster + rng.Uniform(0.0, 10.0);
        ASSERT_TRUE(tree->InsertPoint(p, next_id).ok());
        model.emplace(next_id, std::move(p));
        ++next_id;
      } else {
        // Remove a random existing entry.
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.UniformInt(
                             0, static_cast<int64_t>(model.size()) - 1)));
        auto removed = tree->Remove(Rect::FromPoint(it->second), it->first);
        ASSERT_TRUE(removed.ok()) << removed.status().ToString();
        ASSERT_TRUE(*removed);
        model.erase(it);
      }
    }
    check_against_model();
  }

  // Drain everything; the tree must return to its empty state.
  while (!model.empty()) {
    auto it = model.begin();
    auto removed = tree->Remove(Rect::FromPoint(it->second), it->first);
    ASSERT_TRUE(removed.ok());
    ASSERT_TRUE(*removed);
    model.erase(it);
  }
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_EQ(tree->height(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSplits, RTreeFuzzTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(SplitAlgorithm::kRStar,
                                         SplitAlgorithm::kGuttmanQuadratic,
                                         SplitAlgorithm::kGuttmanLinear)));

// ---------------------------------------------------------------------------
// Crash-consistency-flavored checks: reopen mid-life, keep mutating.
// ---------------------------------------------------------------------------

TEST(RTreeFuzzReopenTest, MutateReopenMutate) {
  TempDir dir;
  const std::string path = dir.file("reopen.pages");
  Rng rng(77);
  std::map<uint64_t, Point> model;
  PageId meta = kInvalidPageId;

  {
    auto file = PageFile::Create(path).value();
    BufferPool pool(file.get(), 64);
    RTreeOptions options;
    options.max_entries_override = 8;
    auto tree = RStarTree::Create(&pool, 2, options).value();
    for (uint64_t i = 0; i < 300; ++i) {
      Point p = tsq::testing::RandomPoint(&rng, 2, 0.0, 40.0);
      ASSERT_TRUE(tree->InsertPoint(p, i).ok());
      model.emplace(i, std::move(p));
    }
    meta = tree->meta_page();
    ASSERT_TRUE(tree->SaveMeta().ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  auto file = PageFile::Open(path).value();
  BufferPool pool(file.get(), 64);
  RTreeOptions options;
  options.max_entries_override = 8;
  auto tree = RStarTree::Open(&pool, meta, options).value();
  ASSERT_EQ(tree->size(), model.size());

  // Remove half, insert some more, verify against the model.
  for (uint64_t i = 0; i < 300; i += 2) {
    auto removed = tree->Remove(Rect::FromPoint(model.at(i)), i);
    ASSERT_TRUE(removed.ok());
    ASSERT_TRUE(*removed);
    model.erase(i);
  }
  for (uint64_t i = 300; i < 400; ++i) {
    Point p = tsq::testing::RandomPoint(&rng, 2, 0.0, 40.0);
    ASSERT_TRUE(tree->InsertPoint(p, i).ok());
    model.emplace(i, std::move(p));
  }
  auto report = tree->CheckInvariants();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->message;

  Rect everything({-1e9, -1e9}, {1e9, 1e9});
  std::set<uint64_t> actual;
  ASSERT_TRUE(tree->Search(everything,
                           [&actual](uint64_t id, const Rect&) {
                             actual.insert(id);
                             return true;
                           })
                  .ok());
  std::set<uint64_t> expected;
  for (const auto& [id, p] : model) expected.insert(id);
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace rtree
}  // namespace tsq
