// Copyright (c) 2026 The tsq Authors.
//
// End-to-end tests of the query engine through the Database facade:
// index-vs-scan parity (the no-false-dismissal guarantee of Lemma 1, as an
// executable property), transformed queries (moving average, reverse,
// shift/scale), both transform modes, kNN, mean/std windows, and the four
// self-join methods of Table 1.

#include <algorithm>
#include <cmath>
#include <set>

#include "core/database.h"
#include "gtest/gtest.h"
#include "series/moving_average.h"
#include "series/normal_form.h"
#include "test_util.h"
#include "transform/builtin.h"
#include "workload/random_walk.h"
#include "workload/stock_sim.h"

namespace tsq {
namespace {

using testing::TempDir;

std::set<SeriesId> Ids(const std::vector<Match>& ms) {
  std::set<SeriesId> out;
  for (const Match& m : ms) out.insert(m.id);
  return out;
}

std::set<std::pair<SeriesId, SeriesId>> UnorderedPairs(
    const std::vector<JoinPair>& ps) {
  std::set<std::pair<SeriesId, SeriesId>> out;
  for (const JoinPair& p : ps) {
    out.insert({std::min(p.first, p.second), std::max(p.first, p.second)});
  }
  return out;
}

class DatabaseQueryTest : public ::testing::Test {
 protected:
  std::unique_ptr<Database> MakeDb(size_t count, size_t length,
                                   FeatureLayout layout = FeatureLayout::Paper(),
                                   uint64_t seed = 42) {
    DatabaseOptions options;
    options.directory = dir_.path();
    options.name = "db" + std::to_string(db_counter_++);
    options.layout = layout;
    auto db = Database::Create(options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto data = workload::MakeRandomWalkDataset(seed, count, length);
    for (const TimeSeries& s : data) {
      auto id = (*db)->Insert(s.name(), s.values());
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    EXPECT_TRUE((*db)->BuildIndex().ok());
    return std::move(*db);
  }

  TempDir dir_;
  int db_counter_ = 0;
};

// ---------------------------------------------------------------------------
// Facade basics
// ---------------------------------------------------------------------------

TEST_F(DatabaseQueryTest, InsertValidatesLengths) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "basic";
  auto db = Database::Create(options);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Insert("empty", {}).status().IsInvalidArgument());
  ASSERT_TRUE((*db)->Insert("a", RealVec(16, 1.0)).ok());
  EXPECT_TRUE((*db)->Insert("b", RealVec(8, 1.0)).status().IsInvalidArgument());
  EXPECT_EQ((*db)->size(), 1u);
  EXPECT_EQ((*db)->series_length(), 16u);
}

TEST_F(DatabaseQueryTest, QueriesRequireIndex) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "noidx";
  auto db = Database::Create(options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->Insert("a", RealVec(16, 1.0)).ok());
  EXPECT_TRUE(
      (*db)->RangeQuery(RealVec(16, 1.0), 1.0).status().IsFailedPrecondition());
  EXPECT_TRUE((*db)->Knn(RealVec(16, 1.0), 3).status().IsFailedPrecondition());
  // Scans work without an index.
  EXPECT_TRUE((*db)->ScanRangeQuery(RealVec(16, 1.0), 1.0).ok());
}

TEST_F(DatabaseQueryTest, BuildIndexTwiceFails) {
  auto db = MakeDb(20, 32);
  EXPECT_TRUE(db->BuildIndex().IsFailedPrecondition());
}

TEST_F(DatabaseQueryTest, InsertAfterBuildIndexIsIndexed) {
  auto db = MakeDb(50, 32);
  workload::RandomWalkOptions rw;
  Rng rng(777);
  const RealVec probe = workload::RandomWalkSeries(&rng, 32, rw);
  ASSERT_TRUE(db->Insert("late", probe).ok());
  // The new series must be findable: query for itself with tiny epsilon.
  auto matches = db->RangeQuery(probe, 1e-6);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  EXPECT_EQ((*matches)[0].name, "late");
}

// ---------------------------------------------------------------------------
// Range queries: index == scan (Lemma 1 end to end)
// ---------------------------------------------------------------------------

class RangeParityTest : public DatabaseQueryTest,
                        public ::testing::WithParamInterface<double> {};

TEST_P(RangeParityTest, IdentityQueryParity) {
  const double eps = GetParam();
  auto db = MakeDb(200, 64);
  Rng rng(7);
  for (int q = 0; q < 5; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    auto via_scan = db->ScanRangeQuery(query, eps);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan)) << "eps=" << eps;
    // Distances agree too.
    for (size_t i = 0; i < via_index->size(); ++i) {
      EXPECT_NEAR((*via_index)[i].distance, (*via_scan)[i].distance, 1e-9);
    }
  }
}

TEST_P(RangeParityTest, MovingAverageQueryParity) {
  const double eps = GetParam();
  auto db = MakeDb(200, 64);
  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(64, 8));
  Rng rng(8);
  for (int q = 0; q < 5; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps, spec);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    auto via_scan = db->ScanRangeQuery(query, eps, spec);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan)) << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, RangeParityTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0));

TEST_F(DatabaseQueryTest, DataOnlyModeParity) {
  auto db = MakeDb(150, 64);
  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::MovingAverage(64, 4));
  spec.mode = TransformMode::kDataOnly;
  Rng rng(9);
  for (double eps : {0.5, 2.0, 8.0}) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps, spec);
    ASSERT_TRUE(via_index.ok());
    auto via_scan = db->ScanRangeQuery(query, eps, spec);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan));
  }
}

TEST_F(DatabaseQueryTest, ReverseFindsOppositeMovers) {
  // Ex. 2.2 as a query: joining a series against the Trev-transformed
  // database must surface its planted opposite partner.
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "opposite";
  auto db = Database::Create(options);
  ASSERT_TRUE(db.ok());
  workload::StockMarketOptions market;
  market.num_series = 120;
  market.similar_pairs = 0;
  market.opposite_pairs = 5;
  market.opposite_noise = 0.001;
  auto series = workload::MakeStockMarket(99, market);
  for (const TimeSeries& s : series) {
    ASSERT_TRUE((*db)->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE((*db)->BuildIndex().ok());

  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Reverse(128));
  spec.mode = TransformMode::kDataOnly;  // reverse the data, not the query
  // Query with OPPa0000 (index 0); its partner OPPb0000 (id 1) reversed
  // should be very close to it in normal form.
  auto matches = (*db)->RangeQuery(series[0].values(), 3.0, spec);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_TRUE(Ids(*matches).contains(1)) << "partner not found";
  // Parity with the scan under the same spec.
  auto scan = (*db)->ScanRangeQuery(series[0].values(), 3.0, spec);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(Ids(*matches), Ids(*scan));
}

TEST_F(DatabaseQueryTest, MeanStdWindowFiltersAnswers) {
  auto db = MakeDb(300, 64);
  Rng rng(10);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  QuerySpec all;
  auto unfiltered = db->RangeQuery(query, 6.0, all);
  ASSERT_TRUE(unfiltered.ok());

  QuerySpec windowed;
  windowed.window = MeanStdWindow{40.0, 70.0, 0.0, 1e9};
  auto filtered = db->RangeQuery(query, 6.0, windowed);
  ASSERT_TRUE(filtered.ok());
  EXPECT_LE(filtered->size(), unfiltered->size());
  // Every filtered answer's mean is inside the window; every unfiltered
  // answer with an in-window mean survived.
  for (const Match& m : *filtered) {
    auto rec = db->Get(m.id);
    ASSERT_TRUE(rec.ok());
    NormalForm nf = ToNormalForm(rec->values);
    EXPECT_GE(nf.mean, 40.0);
    EXPECT_LE(nf.mean, 70.0);
  }
  std::set<SeriesId> expected;
  for (const Match& m : *unfiltered) {
    auto rec = db->Get(m.id);
    ASSERT_TRUE(rec.ok());
    NormalForm nf = ToNormalForm(rec->values);
    if (nf.mean >= 40.0 && nf.mean <= 70.0) expected.insert(m.id);
  }
  EXPECT_EQ(Ids(*filtered), expected);
}

TEST_F(DatabaseQueryTest, GoldinKanellakisShiftScaleQuery) {
  // [GK95]-style: find series that, after v -> 2v + 10, land near the
  // query in raw terms. Normal forms are unchanged; the mean/std index
  // dims move through the transformed index.
  auto db = MakeDb(100, 32);
  auto rec = db->Get(17);
  ASSERT_TRUE(rec.ok());
  RealVec shifted(32);
  for (size_t i = 0; i < 32; ++i) shifted[i] = 2.0 * rec->values[i] + 10.0;
  NormalForm nfq = ToNormalForm(shifted);

  QuerySpec spec;
  spec.transform = FeatureTransform::ShiftScale(32, 10.0, 2.0);
  spec.mode = TransformMode::kDataOnly;
  // Window around the transformed mean/std of the target.
  spec.window = MeanStdWindow{nfq.mean - 0.5, nfq.mean + 0.5, nfq.std - 0.5,
                              nfq.std + 0.5};
  auto matches = db->RangeQuery(shifted, 0.01, spec);
  ASSERT_TRUE(matches.ok()) << matches.status().ToString();
  EXPECT_TRUE(Ids(*matches).contains(17));
}

// ---------------------------------------------------------------------------
// Rectangular-space database
// ---------------------------------------------------------------------------

TEST_F(DatabaseQueryTest, RectangularLayoutParity) {
  FeatureLayout layout = FeatureLayout::Agrawal(4);
  auto db = MakeDb(150, 64, layout);
  Rng rng(11);
  for (double eps : {1.0, 5.0, 20.0}) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps);
    ASSERT_TRUE(via_index.ok());
    auto via_scan = db->ScanRangeQuery(query, eps);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan));
  }
}

TEST_F(DatabaseQueryTest, RectangularShiftTransformParity) {
  // Shift is Srect-safe; querying through the shifted index must match the
  // shifted scan.
  FeatureLayout layout = FeatureLayout::Agrawal(4);
  auto db = MakeDb(150, 64, layout);
  QuerySpec spec;
  spec.transform = FeatureTransform::Spectral(transforms::Shift(64, 3.0));
  Rng rng(12);
  for (double eps : {1.0, 10.0}) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto via_index = db->RangeQuery(query, eps, spec);
    ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
    auto via_scan = db->ScanRangeQuery(query, eps, spec);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_EQ(Ids(*via_index), Ids(*via_scan));
  }
}

// ---------------------------------------------------------------------------
// kNN
// ---------------------------------------------------------------------------

class KnnTest : public DatabaseQueryTest,
                public ::testing::WithParamInterface<size_t> {};

TEST_P(KnnTest, MatchesScanTopK) {
  const size_t k = GetParam();
  auto db = MakeDb(250, 64);
  Rng rng(13);
  for (int q = 0; q < 4; ++q) {
    const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
    auto knn = db->Knn(query, k);
    ASSERT_TRUE(knn.ok()) << knn.status().ToString();
    ASSERT_EQ(knn->size(), std::min<size_t>(k, 250));

    // Brute force through the scan with a huge threshold.
    auto scan = db->ScanRangeQuery(query, 1e9);
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan->size(), 250u);
    for (size_t i = 0; i < knn->size(); ++i) {
      EXPECT_NEAR((*knn)[i].distance, (*scan)[i].distance, 1e-9)
          << "rank " << i << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnTest, ::testing::Values(1, 3, 10, 50));

TEST_F(DatabaseQueryTest, KnnWithTransformMatchesScan) {
  auto db = MakeDb(200, 64);
  QuerySpec spec;
  spec.transform =
      FeatureTransform::Spectral(transforms::MovingAverage(64, 8));
  Rng rng(14);
  const RealVec query = workload::RandomWalkSeries(&rng, 64, {});
  auto knn = db->Knn(query, 10, spec);
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  ASSERT_EQ(knn->size(), 10u);
  auto scan = db->ScanRangeQuery(query, 1e9, spec);
  ASSERT_TRUE(scan.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR((*knn)[i].distance, (*scan)[i].distance, 1e-9) << "rank " << i;
  }
}

TEST_F(DatabaseQueryTest, KnnSelfQueryFindsSelfFirst) {
  auto db = MakeDb(100, 32);
  auto rec = db->Get(42);
  ASSERT_TRUE(rec.ok());
  auto knn = db->Knn(rec->values, 1);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 1u);
  EXPECT_EQ((*knn)[0].id, 42u);
  EXPECT_NEAR((*knn)[0].distance, 0.0, 1e-9);
}

TEST_F(DatabaseQueryTest, KnnZeroAndOversizedK) {
  auto db = MakeDb(20, 32);
  Rng rng(15);
  const RealVec query = workload::RandomWalkSeries(&rng, 32, {});
  auto zero = db->Knn(query, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
  auto all = db->Knn(query, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
}

// ---------------------------------------------------------------------------
// Self-join (Table 1 methods)
// ---------------------------------------------------------------------------

TEST_F(DatabaseQueryTest, JoinMethodsAgree) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "join";
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  workload::StockMarketOptions market;
  market.num_series = 150;
  market.similar_pairs = 6;
  market.opposite_pairs = 0;
  auto series = workload::MakeStockMarket(1234, market);
  for (const TimeSeries& s : series) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  const double eps = 2.0;
  auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));

  auto a = db->SelfJoin(eps, JoinMethod::kScanFull, transform);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = db->SelfJoin(eps, JoinMethod::kScanEarlyAbandon, transform);
  ASSERT_TRUE(b.ok());
  auto d = db->SelfJoin(eps, JoinMethod::kIndexTransformed, transform);
  ASSERT_TRUE(d.ok());

  // a == b exactly (same unordered pairs).
  EXPECT_EQ(UnorderedPairs(*a), UnorderedPairs(*b));
  // d finds the same unordered pairs, each counted twice (Table 1:
  // "the answer set of d contains every pair twice").
  EXPECT_EQ(UnorderedPairs(*d), UnorderedPairs(*a));
  EXPECT_EQ(d->size(), 2 * a->size());
  // Planted similar pairs are found.
  EXPECT_GE(a->size(), market.similar_pairs);

  // Method c (no transformation) answers a different question: pairs close
  // without smoothing — a subset in practice on this workload.
  auto c = db->SelfJoin(eps, JoinMethod::kIndexPlain, transform);
  ASSERT_TRUE(c.ok());
  auto c_pairs = UnorderedPairs(*c);
  auto a_pairs = UnorderedPairs(*a);
  EXPECT_LE(c_pairs.size(), a_pairs.size());
}

TEST_F(DatabaseQueryTest, JoinStatsArePopulated) {
  auto db = MakeDb(80, 32);
  auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(32, 4));
  auto d = db->SelfJoin(1.0, JoinMethod::kIndexTransformed, transform);
  ASSERT_TRUE(d.ok());
  const QueryStats& stats = db->last_stats();
  EXPECT_EQ(stats.records_scanned, 80u);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.rect_transforms, 0u);
  EXPECT_GE(stats.elapsed_ms, 0.0);
}

TEST_F(DatabaseQueryTest, RangeQueryStatsArePopulated) {
  auto db = MakeDb(100, 32);
  Rng rng(16);
  const RealVec query = workload::RandomWalkSeries(&rng, 32, {});
  auto matches = db->RangeQuery(query, 5.0);
  ASSERT_TRUE(matches.ok());
  const QueryStats& stats = db->last_stats();
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GE(stats.candidates, matches->size());
  EXPECT_EQ(stats.answers, matches->size());
}

TEST_F(DatabaseQueryTest, InvalidQueryArguments) {
  auto db = MakeDb(20, 32);
  EXPECT_TRUE(db->RangeQuery(RealVec(16, 0.0), 1.0).status()
                  .IsInvalidArgument());  // wrong length
  EXPECT_TRUE(db->RangeQuery(RealVec(32, 0.0), -1.0).status()
                  .IsInvalidArgument());  // negative eps
}

}  // namespace
}  // namespace tsq

namespace tsq {
namespace {

// ---------------------------------------------------------------------------
// Tree-match self-join (tsq extension)
// ---------------------------------------------------------------------------

class TreeMatchJoinTest : public ::testing::Test {
 protected:
  testing::TempDir dir_;
};

TEST_F(TreeMatchJoinTest, MatchesIndexNestedLoopJoin) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "tmj";
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  workload::StockMarketOptions market;
  market.num_series = 200;
  auto series = workload::MakeStockMarket(555, market);
  for (const TimeSeries& s : series) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
  for (double eps : {0.3, 0.6, 1.5}) {
    auto nested = db->SelfJoin(eps, JoinMethod::kIndexTransformed, transform);
    ASSERT_TRUE(nested.ok()) << nested.status().ToString();
    auto matched = db->SelfJoin(eps, JoinMethod::kTreeMatch, transform);
    ASSERT_TRUE(matched.ok()) << matched.status().ToString();
    EXPECT_EQ(UnorderedPairs(*nested), UnorderedPairs(*matched))
        << "eps=" << eps;
    EXPECT_EQ(nested->size(), matched->size()) << "eps=" << eps;
  }
}

TEST_F(TreeMatchJoinTest, PlainTreeMatchAgainstScan) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "tmj2";
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  auto data = workload::MakeRandomWalkDataset(77, 150, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  for (double eps : {1.0, 4.0}) {
    auto matched = db->SelfJoin(eps, JoinMethod::kTreeMatch, std::nullopt);
    ASSERT_TRUE(matched.ok());
    auto scan = db->SelfJoin(eps, JoinMethod::kScanEarlyAbandon, std::nullopt);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(UnorderedPairs(*matched), UnorderedPairs(*scan)) << "eps=" << eps;
  }
}

TEST_F(TreeMatchJoinTest, RectangularSpaceTreeMatch) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "tmj3";
  options.layout = FeatureLayout::Agrawal(3);
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  auto data = workload::MakeRandomWalkDataset(78, 120, 64);
  for (const TimeSeries& s : data) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  auto matched = db->SelfJoin(5.0, JoinMethod::kTreeMatch, std::nullopt);
  ASSERT_TRUE(matched.ok());
  auto scan = db->SelfJoin(5.0, JoinMethod::kScanEarlyAbandon, std::nullopt);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(UnorderedPairs(*matched), UnorderedPairs(*scan));
}

TEST_F(TreeMatchJoinTest, FewerNodeAccessesThanNestedLoop) {
  DatabaseOptions options;
  options.directory = dir_.path();
  options.name = "tmj4";
  auto dbr = Database::Create(options);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(*dbr);
  workload::StockMarketOptions market;
  market.num_series = 400;
  auto series = workload::MakeStockMarket(556, market);
  for (const TimeSeries& s : series) {
    ASSERT_TRUE(db->Insert(s.name(), s.values()).ok());
  }
  ASSERT_TRUE(db->BuildIndex().ok());

  const auto transform =
      FeatureTransform::Spectral(transforms::MovingAverage(128, 20));
  ASSERT_TRUE(db->SelfJoin(0.5, JoinMethod::kIndexTransformed, transform).ok());
  const uint64_t nested_nodes = db->last_stats().nodes_visited;
  ASSERT_TRUE(db->SelfJoin(0.5, JoinMethod::kTreeMatch, transform).ok());
  const uint64_t matched_nodes = db->last_stats().nodes_visited;
  // One synchronized traversal touches far fewer nodes than N range queries.
  EXPECT_LT(matched_nodes, nested_nodes);
}

}  // namespace
}  // namespace tsq
